//! Property tests for the workload generators.

use proptest::prelude::*;

use pagesim_workloads::graph::PowerLawGraph;
use pagesim_workloads::tpch::{TpchConfig, TpchWorkload};
use pagesim_workloads::ycsb::{YcsbConfig, YcsbMix, YcsbWorkload};
use pagesim_workloads::zipf::{ScrambledZipfian, Zipfian};
use pagesim_workloads::{Op, Workload};

proptest! {
    /// Zipfian draws stay in range and heavily favour low ranks for any
    /// domain size and seed.
    #[test]
    fn zipf_in_range_and_skewed(n in 10u64..50_000, seed in any::<u64>()) {
        let mut z = Zipfian::new(n, 0.99, seed);
        let mut low = 0u32;
        for _ in 0..2_000 {
            let r = z.next_rank();
            prop_assert!(r < n);
            if r < n / 10 {
                low += 1;
            }
        }
        // The bottom 10% of ranks must take far more than 10% of draws.
        prop_assert!(low > 600, "only {low}/2000 draws in the hot decile");
    }

    /// Scrambled zipfian stays in range for any seed.
    #[test]
    fn scrambled_zipf_in_range(n in 1u64..100_000, seed in any::<u64>()) {
        let mut s = ScrambledZipfian::new(n, seed);
        for _ in 0..200 {
            prop_assert!(s.next_item() < n);
        }
    }

    /// Graph construction invariants hold across the parameter space.
    #[test]
    fn graph_structure_is_sound(
        vertices in 2u32..5_000,
        edges in 10u64..100_000,
        skew in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let g = PowerLawGraph::new(vertices, edges, skew, seed);
        prop_assert!(g.edges() >= vertices as u64, "every vertex has >= 1 edge");
        // offsets are a prefix sum of degrees
        let mut acc = 0u64;
        for v in 0..vertices {
            prop_assert_eq!(g.edge_offset(v), acc);
            acc += g.degree(v) as u64;
        }
        prop_assert_eq!(acc, g.edges());
        // sampled neighbors are valid vertices
        for v in (0..vertices).step_by((vertices as usize / 17).max(1)) {
            for i in (0..g.degree(v)).step_by(7).take(8) {
                prop_assert!(g.neighbor(v, i) < vertices);
            }
        }
    }

    /// TPC-H streams terminate and never touch outside the declared
    /// footprint, for any seed.
    #[test]
    fn tpch_streams_bounded(seed in any::<u64>()) {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let total = w.footprint_pages();
        for mut s in w.streams(seed) {
            let mut n = 0u64;
            loop {
                match s.next_op() {
                    Op::Done => break,
                    Op::Access { vpn, .. } | Op::FdAccess { vpn, .. } => {
                        prop_assert!(vpn < total, "vpn {vpn} out of bounds");
                    }
                    _ => {}
                }
                n += 1;
                prop_assert!(n < 3_000_000, "stream does not terminate");
            }
        }
    }

    /// YCSB request volume is exact for any seed and mix.
    #[test]
    fn ycsb_request_counts_exact(seed in any::<u64>(), mix in 0u8..3) {
        let mix = [YcsbMix::A, YcsbMix::B, YcsbMix::C][mix as usize];
        let cfg = YcsbConfig::tiny(mix);
        let w = YcsbWorkload::new(cfg, 9);
        let mut total = 0u64;
        for mut s in w.streams(seed) {
            loop {
                match s.next_op() {
                    Op::Done => break,
                    Op::RequestStart { .. } => total += 1,
                    _ => {}
                }
            }
        }
        prop_assert_eq!(total, cfg.requests / cfg.threads as u64 * cfg.threads as u64);
    }
}
