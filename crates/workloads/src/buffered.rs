//! A buffered-I/O workload exercising MG-LRU's tiers and PID controller.
//!
//! The paper's workloads do little file-descriptor I/O, so it leaves the
//! tier/PID machinery untested (§III-D: "leaving it instead for future
//! work with workloads affected by it"). This workload fills that gap for
//! our ablation benches: threads stream a large "file" once (cold, read
//! via fds — no PTE accessed bits) while repeatedly re-reading a hot
//! subset of it, interleaved with an anonymous working set. Without tier
//! protection, the streaming reads keep flushing the hot file pages; with
//! the PID controller, refaults on the hot subset push its tier above the
//! base tier's refault rate and eviction starts protecting it.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use pagesim_engine::rng::derive_seed;
use pagesim_mem::{AsId, EntropyClass, Vpn};

use crate::{AccessStream, Annotation, Op, SpaceSpec, Workload};

/// Configuration of the buffered-I/O workload.
#[derive(Clone, Copy, Debug)]
pub struct BufferedIoConfig {
    /// Reader threads.
    pub threads: usize,
    /// Pages of file data streamed via fds.
    pub file_pages: u32,
    /// Leading pages of the file that form the hot, re-read subset.
    pub hot_pages: u32,
    /// Pages of anonymous working memory.
    pub anon_pages: u32,
    /// Streaming passes over the file.
    pub passes: u32,
    /// Hot re-reads interleaved per streamed page.
    pub hot_rereads_per_page: u32,
    /// Compute per access, nanoseconds.
    pub cpu_per_touch_ns: u32,
}

impl Default for BufferedIoConfig {
    fn default() -> Self {
        BufferedIoConfig {
            threads: 4,
            file_pages: 6_000,
            hot_pages: 600,
            anon_pages: 2_000,
            passes: 4,
            hot_rereads_per_page: 2,
            cpu_per_touch_ns: 8_000,
        }
    }
}

impl BufferedIoConfig {
    /// A reduced configuration for fast tests.
    pub fn tiny() -> Self {
        BufferedIoConfig {
            threads: 2,
            file_pages: 300,
            hot_pages: 30,
            anon_pages: 100,
            passes: 2,
            hot_rereads_per_page: 1,
            cpu_per_touch_ns: 8_000,
        }
    }
}

/// The buffered-I/O workload (see module docs).
#[derive(Clone, Debug)]
pub struct BufferedIoWorkload {
    cfg: BufferedIoConfig,
}

impl BufferedIoWorkload {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if the hot subset is larger than the file.
    pub fn new(cfg: BufferedIoConfig) -> Self {
        assert!(cfg.hot_pages <= cfg.file_pages, "hot subset exceeds file");
        assert!(cfg.threads > 0);
        BufferedIoWorkload { cfg }
    }
}

impl Workload for BufferedIoWorkload {
    fn name(&self) -> String {
        "buffered-io".to_owned()
    }

    fn spaces(&self) -> Vec<SpaceSpec> {
        vec![SpaceSpec {
            pages: self.cfg.file_pages + self.cfg.anon_pages,
            annotations: vec![
                Annotation {
                    start: 0,
                    count: self.cfg.file_pages,
                    entropy: EntropyClass::Text,
                    file_backed: true,
                },
                Annotation {
                    start: self.cfg.file_pages,
                    count: self.cfg.anon_pages,
                    entropy: EntropyClass::Structured,
                    file_backed: false,
                },
            ],
        }]
    }

    fn barriers(&self) -> Vec<usize> {
        Vec::new()
    }

    fn streams(&self, seed: u64) -> Vec<Box<dyn AccessStream>> {
        (0..self.cfg.threads)
            .map(|t| {
                Box::new(BufferedIoStream {
                    cfg: self.cfg,
                    thread: t,
                    rng: SmallRng::seed_from_u64(derive_seed(seed, &format!("bufio-{t}"))),
                    pass: 0,
                    cursor: 0,
                    buf: VecDeque::new(),
                }) as Box<dyn AccessStream>
            })
            .collect()
    }
}

struct BufferedIoStream {
    cfg: BufferedIoConfig,
    thread: usize,
    rng: SmallRng,
    pass: u32,
    cursor: u32,
    buf: VecDeque<Op>,
}

impl BufferedIoStream {
    fn my_slice(&self) -> (Vpn, Vpn) {
        let per = self.cfg.file_pages / self.cfg.threads as u32;
        let lo = self.thread as u32 * per;
        let hi = if self.thread == self.cfg.threads - 1 {
            self.cfg.file_pages
        } else {
            lo + per
        };
        (lo, hi)
    }
}

impl AccessStream for BufferedIoStream {
    fn next_op(&mut self) -> Op {
        loop {
            if let Some(op) = self.buf.pop_front() {
                return op;
            }
            let (lo, hi) = self.my_slice();
            if self.pass >= self.cfg.passes {
                return Op::Done;
            }
            // Each pass streams a *different* segment of this thread's
            // slice (read-once data, like a log scan): the cold stream
            // never refaults, so tier 0's refault rate stays near zero and
            // the controller's signal is the hot subset's refaults.
            let seg_len = ((hi - lo) / self.cfg.passes).max(1);
            let seg_lo = lo + self.pass * seg_len;
            let vpn = seg_lo + self.cursor;
            if vpn >= (seg_lo + seg_len).min(hi) {
                self.pass += 1;
                self.cursor = 0;
                continue;
            }
            self.cursor += 1;
            // Stream one cold file page...
            self.buf.push_back(Op::FdAccess {
                space: AsId(0),
                vpn,
                write: false,
                cpu_ns: self.cfg.cpu_per_touch_ns,
            });
            // ...re-read hot file pages...
            for _ in 0..self.cfg.hot_rereads_per_page {
                let hot = self.rng.random_range(0..self.cfg.hot_pages);
                self.buf.push_back(Op::FdAccess {
                    space: AsId(0),
                    vpn: hot,
                    write: false,
                    cpu_ns: self.cfg.cpu_per_touch_ns,
                });
            }
            // ...and touch the anonymous working set.
            let anon = self.cfg.file_pages + self.rng.random_range(0..self.cfg.anon_pages);
            self.buf.push_back(Op::Access {
                space: AsId(0),
                vpn: anon,
                write: self.rng.random_bool(0.3),
                cpu_ns: self.cfg.cpu_per_touch_ns,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(stream: &mut dyn AccessStream) -> Vec<Op> {
        let mut ops = Vec::new();
        loop {
            match stream.next_op() {
                Op::Done => break,
                op => ops.push(op),
            }
        }
        ops
    }

    #[test]
    fn file_region_uses_fd_accesses_only() {
        let cfg = BufferedIoConfig::tiny();
        let w = BufferedIoWorkload::new(cfg);
        for op in drain(w.streams(1)[0].as_mut()) {
            match op {
                Op::FdAccess { vpn, .. } => assert!(vpn < cfg.file_pages),
                Op::Access { vpn, .. } => assert!(vpn >= cfg.file_pages),
                _ => {}
            }
        }
    }

    #[test]
    fn hot_pages_rereads_dominate_their_range() {
        let cfg = BufferedIoConfig::tiny();
        let w = BufferedIoWorkload::new(cfg);
        let mut hot = 0u32;
        let mut cold = 0u32;
        for op in drain(w.streams(2)[0].as_mut()) {
            if let Op::FdAccess { vpn, .. } = op {
                if vpn < cfg.hot_pages {
                    hot += 1;
                } else {
                    cold += 1;
                }
            }
        }
        // Each streamed page brings one hot re-read; hot range is 10% of
        // the file, so hot touches outnumber per-page cold coverage.
        assert!(hot > cold / 2, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn passes_cover_whole_slice() {
        let cfg = BufferedIoConfig::tiny();
        let w = BufferedIoWorkload::new(cfg);
        let ops = drain(w.streams(3)[0].as_mut());
        let streamed: std::collections::HashSet<Vpn> = ops
            .iter()
            .filter_map(|o| match o {
                Op::FdAccess { vpn, .. } if *vpn >= cfg.hot_pages => Some(*vpn),
                _ => None,
            })
            .collect();
        // Thread 0's slice is 0..150; its cold part (>= hot_pages) must be
        // fully covered.
        assert!(streamed.len() as u32 >= 150 - cfg.hot_pages);
    }

    #[test]
    fn annotations_mark_file_region() {
        let w = BufferedIoWorkload::new(BufferedIoConfig::tiny());
        let spec = &w.spaces()[0];
        assert!(spec.annotations[0].file_backed);
        assert!(!spec.annotations[1].file_backed);
    }
}
