//! Synthetic power-law graphs for PageRank.
//!
//! GAP's PageRank inputs (Kronecker/RMAT graphs, twitter/web crawls) share
//! two properties that matter for paging: a heavy-tailed degree
//! distribution (a few huge hubs) and skewed neighbor popularity (edges
//! point disproportionately at hubs). We reproduce both without storing an
//! edge list: degrees are materialized per vertex, while each edge's
//! endpoint is derived from a hash of `(vertex, edge index)` mapped through
//! a power-law warp. This keeps multi-million-edge graphs free while
//! preserving the page-access distribution over the rank array.

use pagesim_engine::rng::splitmix64;

/// A synthetic scale-free graph with hash-generated adjacency.
///
/// Vertex 0 is the biggest hub (degrees descend with vertex id); neighbor
/// draws are warped toward low ids with the same exponent, so hub rank
/// pages are the hottest.
///
/// ```rust
/// use pagesim_workloads::graph::PowerLawGraph;
/// let g = PowerLawGraph::new(1000, 10_000, 0.6, 42);
/// assert_eq!(g.vertices(), 1000);
/// assert!(g.degree(0) > g.degree(999)); // hub head
/// let n = g.neighbor(5, 3);
/// assert!(n < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct PowerLawGraph {
    degrees: Vec<u32>,
    offsets: Vec<u64>,
    seed: u64,
    skew: f64,
    edges: u64,
}

impl PowerLawGraph {
    /// Builds a graph with `vertices` vertices and approximately
    /// `target_edges` edges; `skew` in `(0, 1)` sets the power-law
    /// exponent (higher = heavier tail).
    ///
    /// # Panics
    ///
    /// Panics if `vertices == 0` or `skew` is outside `(0, 1)`.
    pub fn new(vertices: u32, target_edges: u64, skew: f64, seed: u64) -> Self {
        assert!(vertices > 0, "empty graph");
        assert!(skew > 0.0 && skew < 1.0, "skew must be in (0,1)");
        // Zipf-like degree sequence: deg(v) ∝ 1/(v+1)^skew, scaled to hit
        // the edge target.
        let weights: Vec<f64> = (0..vertices)
            .map(|v| 1.0 / ((v + 1) as f64).powf(skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let scale = target_edges as f64 / total;
        let mut degrees = Vec::with_capacity(vertices as usize);
        let mut offsets = Vec::with_capacity(vertices as usize + 1);
        let mut acc = 0u64;
        for w in &weights {
            let d = (w * scale).round().max(1.0) as u32;
            offsets.push(acc);
            degrees.push(d);
            acc += d as u64;
        }
        offsets.push(acc);
        PowerLawGraph {
            degrees,
            offsets,
            seed,
            skew,
            edges: acc,
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> u32 {
        self.degrees.len() as u32
    }

    /// Total edges (sum of out-degrees).
    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> u32 {
        self.degrees[v as usize]
    }

    /// CSR offset of `v`'s first edge (drives the edges-array page walk).
    pub fn edge_offset(&self, v: u32) -> u64 {
        self.offsets[v as usize]
    }

    /// The `i`-th out-neighbor of `v`, derived deterministically.
    ///
    /// Neighbor ids follow a power-law toward low ids (hubs), matching the
    /// in-degree skew of RMAT-style graphs.
    pub fn neighbor(&self, v: u32, i: u32) -> u32 {
        debug_assert!(i < self.degree(v));
        let h = splitmix64(self.seed ^ ((v as u64) << 32) ^ i as u64);
        // u in [0,1): warp by u^(1/(1-skew)) to concentrate near 0.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let warped = u.powf(1.0 / (1.0 - self.skew));
        let n = (warped * self.vertices() as f64) as u32;
        n.min(self.vertices() - 1)
    }

    /// Maximum degree (the straggler hub).
    pub fn max_degree(&self) -> u32 {
        // Degrees descend by construction.
        self.degrees[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> PowerLawGraph {
        PowerLawGraph::new(10_000, 100_000, 0.6, 7)
    }

    #[test]
    fn edge_count_near_target() {
        let g = g();
        let e = g.edges() as f64;
        assert!((0.8..1.5).contains(&(e / 100_000.0)), "edges = {e}");
        assert_eq!(g.edge_offset(0), 0);
        assert_eq!(
            g.edge_offset(9_999) + g.degree(9_999) as u64,
            g.edges()
        );
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = g();
        let mean = g.edges() as f64 / g.vertices() as f64;
        assert!(
            g.max_degree() as f64 > 20.0 * mean,
            "hub degree {} vs mean {mean}",
            g.max_degree()
        );
        assert!(g.degree(9_999) >= 1, "every vertex has an edge");
    }

    #[test]
    fn offsets_are_prefix_sums() {
        let g = g();
        for v in 1..100u32 {
            assert_eq!(
                g.edge_offset(v),
                g.edge_offset(v - 1) + g.degree(v - 1) as u64
            );
        }
    }

    #[test]
    fn neighbors_skew_to_hubs() {
        let g = g();
        let mut low = 0;
        let mut total = 0;
        for v in (0..10_000).step_by(97) {
            for i in 0..g.degree(v).min(20) {
                total += 1;
                if g.neighbor(v, i) < 1000 {
                    low += 1;
                }
            }
        }
        // 10% of the id space should attract far more than 10% of edges.
        let share = low as f64 / total as f64;
        assert!(share > 0.3, "hub share = {share}");
    }

    #[test]
    fn adjacency_is_deterministic() {
        let a = PowerLawGraph::new(1000, 5000, 0.6, 3);
        let b = PowerLawGraph::new(1000, 5000, 0.6, 3);
        for v in 0..100 {
            for i in 0..a.degree(v) {
                assert_eq!(a.neighbor(v, i), b.neighbor(v, i));
            }
        }
        let c = PowerLawGraph::new(1000, 5000, 0.6, 4);
        let diff = (0..100u32)
            .flat_map(|v| (0..a.degree(v).min(c.degree(v))).map(move |i| (v, i)))
            .filter(|&(v, i)| a.neighbor(v, i) != c.neighbor(v, i))
            .count();
        assert!(diff > 0, "seeds must matter");
    }

    #[test]
    fn neighbors_in_range() {
        let g = PowerLawGraph::new(17, 100, 0.5, 9);
        for v in 0..17 {
            for i in 0..g.degree(v) {
                assert!(g.neighbor(v, i) < 17);
            }
        }
    }
}
