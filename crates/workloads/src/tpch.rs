//! Spark-SQL-style TPC-H.
//!
//! The paper runs TPC-H through Spark-SQL with 12 threads and observes the
//! traits this model reproduces:
//!
//! * execution is a sequence of *stages*, each split into balanced tasks
//!   (one per thread) with a barrier at the stage end and little work-time
//!   variation between tasks;
//! * access patterns are regular — sequential scans over large tables plus
//!   probes into a hash region — so under memory pressure the runtime is
//!   essentially `work + faults × fault_cost`, producing the near-perfect
//!   linear faults↔runtime relationship of Fig. 2a/5a;
//! * each stage re-scans table data whose footprint exceeds capacity at a
//!   50 % capacity ratio, so the workload cycles through memory and keeps
//!   steady eviction pressure.
//!
//! Stages rotate through three flavours mirroring a query plan:
//! `build` (scan + hash-table writes), `probe` (scan + hash reads +
//! shuffle writes), `aggregate` (hash reads + shuffle read/write).

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use pagesim_engine::rng::derive_seed;
use pagesim_mem::{AsId, EntropyClass, Vpn};

use crate::{AccessStream, Annotation, Op, SpaceSpec, Workload};

/// Configuration of the TPC-H model.
#[derive(Clone, Copy, Debug)]
pub struct TpchConfig {
    /// Worker threads (the paper uses 12).
    pub threads: usize,
    /// Pages of base-table data (scanned sequentially each stage).
    pub table_pages: u32,
    /// Pages of hash-join / aggregation state (probed randomly, hot).
    pub hash_pages: u32,
    /// Pages of shuffle buffers (written per stage).
    pub shuffle_pages: u32,
    /// Queries executed back to back.
    pub queries: u32,
    /// Stages per query (build/probe/aggregate rotation).
    pub stages_per_query: u32,
    /// Touches per scanned table page.
    pub touches_per_page: u32,
    /// Compute per touch, nanoseconds.
    pub cpu_per_touch_ns: u32,
    /// Fraction of the table each query's window covers. Queries scan
    /// different (overlapping) windows — TPC-H queries hit different
    /// tables/columns — so data reuse spans a query's stages but only
    /// partially carries across queries.
    pub window_frac: f64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            threads: 12,
            table_pages: 5_200,
            hash_pages: 8_000,
            shuffle_pages: 2_800,
            queries: 8,
            stages_per_query: 3,
            touches_per_page: 8,
            cpu_per_touch_ns: 120_000,
            window_frac: 0.4,
        }
    }
}

impl TpchConfig {
    /// A reduced configuration for fast tests.
    pub fn tiny() -> Self {
        TpchConfig {
            threads: 4,
            table_pages: 240,
            hash_pages: 100,
            shuffle_pages: 60,
            queries: 2,
            stages_per_query: 3,
            touches_per_page: 2,
            cpu_per_touch_ns: 60,
            window_frac: 0.5,
        }
    }

    /// Scales all region sizes by `factor` (footprint knob).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.table_pages = ((self.table_pages as f64 * factor) as u32).max(64);
        self.hash_pages = ((self.hash_pages as f64 * factor) as u32).max(32);
        self.shuffle_pages = ((self.shuffle_pages as f64 * factor) as u32).max(16);
        self
    }
}

/// The TPC-H workload (see module docs).
#[derive(Clone, Debug)]
pub struct TpchWorkload {
    cfg: TpchConfig,
}

impl TpchWorkload {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or any region is empty.
    pub fn new(cfg: TpchConfig) -> Self {
        assert!(cfg.threads > 0, "need at least one thread");
        assert!(cfg.table_pages > 0 && cfg.hash_pages > 0 && cfg.shuffle_pages > 0);
        TpchWorkload { cfg }
    }

    fn hash_base(&self) -> Vpn {
        self.cfg.table_pages
    }

    fn shuffle_base(&self) -> Vpn {
        self.cfg.table_pages + self.cfg.hash_pages
    }
}

impl Workload for TpchWorkload {
    fn name(&self) -> String {
        "tpch".to_owned()
    }

    fn spaces(&self) -> Vec<SpaceSpec> {
        let total = self.cfg.table_pages + self.cfg.hash_pages + self.cfg.shuffle_pages;
        vec![SpaceSpec {
            pages: total,
            annotations: vec![
                Annotation {
                    start: 0,
                    count: self.cfg.table_pages,
                    entropy: EntropyClass::Structured,
                    file_backed: false,
                },
                Annotation {
                    start: self.hash_base(),
                    count: self.cfg.hash_pages,
                    entropy: EntropyClass::Text,
                    file_backed: false,
                },
                Annotation {
                    start: self.shuffle_base(),
                    count: self.cfg.shuffle_pages,
                    entropy: EntropyClass::Text,
                    file_backed: false,
                },
            ],
        }]
    }

    fn barriers(&self) -> Vec<usize> {
        vec![self.cfg.threads]
    }

    fn streams(&self, seed: u64) -> Vec<Box<dyn AccessStream>> {
        // Live execution-memory fraction for this run: Spark's per-task
        // execution/aggregation memory varies between otherwise identical
        // runs (GC timing, task placement, spill thresholds), which is the
        // run-to-run footprint variation behind the paper's wide TPC-H
        // runtime distributions (Fig. 2a). One draw per run, shared by all
        // threads.
        let mut live_rng = SmallRng::seed_from_u64(derive_seed(seed, "tpch-live"));
        // Calibrated so the per-query live set straddles a 50% capacity
        // ratio: runs land on a spectrum from fits-with-room to
        // steady thrash, like the paper's 700–2000s TPC-H spread.
        let live_frac = 0.30 + 0.30 * live_rng.random::<f64>();
        // The query plan (which table window each query scans) is shared
        // by all threads of the run.
        let plan_seed = derive_seed(seed, "tpch-plan");
        (0..self.cfg.threads)
            .map(|t| {
                Box::new(TpchStream::new(
                    self.cfg,
                    t,
                    live_frac,
                    plan_seed,
                    derive_seed(seed, &format!("tpch-thread-{t}")),
                )) as Box<dyn AccessStream>
            })
            .collect()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StageKind {
    Build,
    Probe,
    Aggregate,
}

/// Per-thread access stream: walks the stage schedule, buffering the ops of
/// one scanned page at a time.
struct TpchStream {
    cfg: TpchConfig,
    thread: usize,
    /// Fraction of this thread's execution-memory partition live this run.
    live_frac: f64,
    /// Shared plan seed: all threads of a run agree on query windows.
    plan_seed: u64,
    rng: SmallRng,
    buf: VecDeque<Op>,
    stage: u32,
    total_stages: u32,
    done: bool,
}

impl TpchStream {
    fn new(cfg: TpchConfig, thread: usize, live_frac: f64, plan_seed: u64, seed: u64) -> Self {
        TpchStream {
            cfg,
            thread,
            live_frac,
            plan_seed,
            rng: SmallRng::seed_from_u64(seed),
            buf: VecDeque::new(),
            stage: 0,
            total_stages: cfg.queries * cfg.stages_per_query,
            done: false,
        }
    }

    /// The table window query `q` scans: `window_frac` of the table at a
    /// plan-determined offset. Stages of one query reuse the same window;
    /// successive queries move to (partially overlapping) windows.
    fn query_window(&self, q: u32) -> (Vpn, u32) {
        let t = self.cfg.table_pages;
        let window = ((t as f64 * self.cfg.window_frac) as u32).clamp(1, t);
        let span = t - window + 1;
        let start = (pagesim_engine::rng::splitmix64(self.plan_seed ^ (q as u64) << 8) % span as u64)
            as u32;
        (start, window)
    }

    /// This thread's slice of the execution-memory (hash) region. Spark
    /// execution memory is per-task, so each thread owns a contiguous
    /// partition — the "thread-specific pages" whose en-bloc eviction the
    /// paper identifies as the Scan-All straggler mechanism (§V-B).
    fn hash_partition(&self) -> (Vpn, u32) {
        let part = self.cfg.hash_pages / self.cfg.threads as u32;
        let base = self.cfg.table_pages + self.thread as u32 * part;
        let live = ((part as f64 * self.live_frac) as u32).max(8).min(part);
        (base, live)
    }

    /// Skewed index into the live partition: hash buckets and aggregation
    /// state have zipf-like popularity (a few keys dominate), giving the
    /// replacement policies a hot/warm/cold spectrum to rank rather than a
    /// uniform blob.
    fn skewed(&mut self, live: u32) -> u32 {
        let u: f64 = self.rng.random();
        ((u * u * live as f64) as u32).min(live - 1)
    }

    fn stage_kind(&self, stage: u32) -> StageKind {
        match stage % 3 {
            0 => StageKind::Build,
            1 => StageKind::Probe,
            _ => StageKind::Aggregate,
        }
    }

    fn push_access(&mut self, vpn: Vpn, write: bool) {
        self.buf.push_back(Op::Access {
            space: AsId(0),
            vpn,
            write,
            cpu_ns: self.cfg.cpu_per_touch_ns,
        });
    }

    /// Emits one stage's worth of ops for this thread, ending in a barrier.
    fn fill_stage(&mut self) {
        let kind = self.stage_kind(self.stage);
        let t = self.cfg.table_pages;
        let s = self.cfg.shuffle_pages;
        let threads = self.cfg.threads as u32;
        let shuffle_base = t + self.cfg.hash_pages;
        let (hash_base, hash_live) = self.hash_partition();

        // This query's table window, split into balanced tasks with ±4%
        // task-size jitter (the "mostly balanced work per thread" the
        // paper describes).
        let query = self.stage / self.cfg.stages_per_query;
        let (win_start, win_pages) = self.query_window(query);
        let slice = (win_pages / threads).max(1);
        let jitter = 1.0 + (self.rng.random::<f64>() - 0.5) * 0.08;
        let my_pages = ((slice as f64) * jitter) as u32;
        // Rotate slice ownership per stage so every thread touches
        // different table pages across stages (Spark task placement).
        let rotation = (self.stage * 7) % threads;
        let owner = (self.thread as u32 + rotation) % threads;
        let start = win_start + owner * slice;

        match kind {
            StageKind::Build => {
                // Scan my table slice; build my execution-memory hash.
                for p in 0..my_pages {
                    let vpn = (start + p) % t;
                    for _ in 0..self.cfg.touches_per_page {
                        self.push_access(vpn, false);
                    }
                    for _ in 0..self.cfg.touches_per_page / 2 {
                        let hp = hash_base + self.skewed(hash_live);
                        self.push_access(hp, true);
                    }
                }
            }
            StageKind::Probe => {
                for p in 0..my_pages {
                    let vpn = (start + p) % t;
                    for _ in 0..self.cfg.touches_per_page {
                        self.push_access(vpn, false);
                    }
                    for _ in 0..self.cfg.touches_per_page / 2 {
                        let hp = hash_base + self.skewed(hash_live);
                        self.push_access(hp, false);
                    }
                    // matched rows spill to my shuffle partition
                    let sp = shuffle_base + (self.thread as u32 * (s / threads))
                        + self.rng.random_range(0..(s / threads).max(1));
                    self.push_access(sp, true);
                }
            }
            StageKind::Aggregate => {
                // Read shuffle output (all partitions, interleaved) and
                // update my aggregation state.
                let my_share = (s / threads).max(1);
                let mut order: Vec<u32> = (0..my_share).collect();
                order.shuffle(&mut self.rng);
                for i in order {
                    let sp = shuffle_base + (i * threads + self.thread as u32) % s;
                    for _ in 0..self.cfg.touches_per_page {
                        self.push_access(sp, false);
                    }
                    for _ in 0..self.cfg.touches_per_page {
                        let hp = hash_base + self.skewed(hash_live);
                        self.push_access(hp, true);
                    }
                }
            }
        }
        self.buf.push_back(Op::Barrier { id: 0 });
    }
}

impl AccessStream for TpchStream {
    fn next_op(&mut self) -> Op {
        loop {
            if let Some(op) = self.buf.pop_front() {
                return op;
            }
            if self.done || self.stage >= self.total_stages {
                self.done = true;
                return Op::Done;
            }
            self.fill_stage();
            self.stage += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(stream: &mut dyn AccessStream) -> Vec<Op> {
        let mut ops = Vec::new();
        loop {
            let op = stream.next_op();
            if op == Op::Done {
                break;
            }
            ops.push(op);
        }
        ops
    }

    #[test]
    fn stages_end_with_barriers() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let mut streams = w.streams(1);
        let ops = drain(streams[0].as_mut());
        let barriers = ops.iter().filter(|o| matches!(o, Op::Barrier { .. })).count();
        assert_eq!(barriers as u32, 2 * 3, "one barrier per stage");
        assert!(matches!(ops.last(), Some(Op::Barrier { id: 0 })));
    }

    #[test]
    fn all_threads_have_similar_volume() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let mut streams = w.streams(2);
        let counts: Vec<usize> = streams.iter_mut().map(|s| drain(s.as_mut()).len()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.25, "imbalanced tasks: {counts:?}");
    }

    #[test]
    fn touches_stay_in_bounds() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let total = w.footprint_pages();
        let mut streams = w.streams(3);
        for s in &mut streams {
            for op in drain(s.as_mut()) {
                if let Op::Access { vpn, .. } = op {
                    assert!(vpn < total, "vpn {vpn} out of bounds");
                }
            }
        }
    }

    #[test]
    fn writes_target_hash_and_shuffle_regions() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let table = TpchConfig::tiny().table_pages;
        let mut streams = w.streams(4);
        let ops = drain(streams[0].as_mut());
        for op in ops {
            if let Op::Access { vpn, write: true, .. } = op {
                assert!(vpn >= table, "table pages are read-only, wrote {vpn}");
            }
        }
    }

    #[test]
    fn seeds_change_the_op_sequence() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let a = drain(w.streams(10)[0].as_mut());
        let b = drain(w.streams(10)[0].as_mut());
        let c = drain(w.streams(11)[0].as_mut());
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seed must differ");
    }

    #[test]
    fn footprint_matches_spec() {
        let cfg = TpchConfig::default();
        let w = TpchWorkload::new(cfg);
        assert_eq!(
            w.footprint_pages(),
            cfg.table_pages + cfg.hash_pages + cfg.shuffle_pages
        );
        assert_eq!(w.spaces().len(), 1);
        assert_eq!(w.barriers(), vec![12]);
    }

    #[test]
    fn done_is_sticky() {
        let w = TpchWorkload::new(TpchConfig::tiny());
        let mut s = w.streams(5);
        drain(s[0].as_mut());
        assert_eq!(s[0].next_op(), Op::Done);
        assert_eq!(s[0].next_op(), Op::Done);
    }
}
