//! # pagesim-workloads
//!
//! The memory-intensive workloads of the paper's methodology (§IV),
//! rebuilt as deterministic page-access generators:
//!
//! * [`tpch::TpchWorkload`] — Spark-SQL-style TPC-H: highly parallel
//!   stages of balanced tasks (scan → hash-join probe → shuffle write)
//!   separated by barriers. Regular access patterns; runtime is
//!   fault-dominated under pressure, giving the paper's linear
//!   faults↔runtime relationship.
//! * [`pagerank::PageRankWorkload`] — GAP-style PageRank over a synthetic
//!   power-law graph: per-vertex work proportional to degree, dynamic
//!   chunk scheduling, a barrier per iteration. A few high-degree
//!   stragglers decide iteration time, decoupling runtime from the total
//!   fault count.
//! * [`ycsb::YcsbWorkload`] — YCSB A/B/C over the
//!   [`pagesim-kv`](pagesim_kv) store: scrambled-zipfian item popularity,
//!   50/5/0 % update mixes, per-request latency markers for tail CDFs.
//! * [`buffered::BufferedIoWorkload`] — a buffered-I/O reader that
//!   exercises MG-LRU's file tiers and PID controller (the machinery the
//!   paper describes in §III-D but leaves unstressed).
//!
//! A workload describes its address spaces ([`SpaceSpec`]) and yields one
//! [`AccessStream`] per simulated thread; the kernel executes the streams'
//! [`Op`]s. All randomness derives from the trial seed.


pub mod buffered;
pub mod graph;
pub mod pagerank;
pub mod tpch;
pub mod ycsb;
pub mod zipf;

use pagesim_mem::{AsId, EntropyClass, Vpn};

/// Latency class of a request (YCSB reports read and write tails
/// separately).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReqClass {
    /// GET-style request.
    Read,
    /// UPDATE-style request.
    Write,
}

/// One instruction from a workload thread to the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Spend `cpu_ns` of compute, then touch a page through the MMU
    /// (sets the PTE accessed bit; faults if not resident).
    Access {
        /// Address space.
        space: AsId,
        /// Page touched.
        vpn: Vpn,
        /// Store (sets the dirty bit) vs. load.
        write: bool,
        /// Compute preceding the touch.
        cpu_ns: u32,
    },
    /// Touch a file-backed page through a file descriptor: the kernel
    /// routes it to the page cache, so the PTE accessed bit is *not* set;
    /// MG-LRU sees it only as a tier bump.
    FdAccess {
        /// Address space.
        space: AsId,
        /// Page touched.
        vpn: Vpn,
        /// Whether the access dirties the page.
        write: bool,
        /// Compute preceding the touch.
        cpu_ns: u32,
    },
    /// Pure compute.
    Compute {
        /// Nanoseconds of CPU work.
        cpu_ns: u64,
    },
    /// Arrive at workload barrier `id` (block until all parties arrive).
    Barrier {
        /// Barrier index into [`Workload::barriers`].
        id: usize,
    },
    /// Begin a latency-tracked request.
    RequestStart {
        /// Read or write tail bucket.
        class: ReqClass,
        /// Requests issued during warmup are excluded from tail stats.
        warmup: bool,
    },
    /// Complete the current request (latency = now − start).
    RequestEnd,
    /// The thread is finished.
    Done,
}

/// A contiguous attribute annotation within a space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Annotation {
    /// First page of the range.
    pub start: Vpn,
    /// Pages in the range.
    pub count: u32,
    /// Content class (drives ZRAM compression).
    pub entropy: EntropyClass,
    /// Whether accesses to this range are file-backed.
    pub file_backed: bool,
}

/// Description of one address space a workload needs.
#[derive(Clone, Debug)]
pub struct SpaceSpec {
    /// Total pages.
    pub pages: u32,
    /// Attribute annotations (non-overlapping).
    pub annotations: Vec<Annotation>,
}

/// A deterministic generator of [`Op`]s for one simulated thread.
pub trait AccessStream {
    /// The next operation. After returning [`Op::Done`] it must keep
    /// returning `Done`.
    fn next_op(&mut self) -> Op;
}

/// A workload: address-space layout plus one stream per thread.
pub trait Workload {
    /// Short name for reports ("tpch", "pagerank", "ycsb-a", ...).
    fn name(&self) -> String;

    /// Address spaces to create (index = `AsId`).
    fn spaces(&self) -> Vec<SpaceSpec>;

    /// Barrier party counts; stream `Op::Barrier { id }` indexes this.
    fn barriers(&self) -> Vec<usize>;

    /// One access stream per simulated thread, randomized by `seed`.
    fn streams(&self, seed: u64) -> Vec<Box<dyn AccessStream>>;

    /// Total footprint in pages (for capacity-ratio configuration).
    fn footprint_pages(&self) -> u32 {
        self.spaces().iter().map(|s| s.pages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_small() {
        // The simulator moves millions of these; keep them register-sized.
        assert!(std::mem::size_of::<Op>() <= 24);
    }
}
