//! GAP-style PageRank.
//!
//! PageRank over a scale-free graph is the paper's irregular workload: the
//! work a thread does per vertex is proportional to the vertex's degree,
//! vertices are handed out in dynamically scheduled chunks (GAP uses
//! OpenMP `dynamic`), and every iteration ends in a barrier. A handful of
//! hub vertices dominate iteration time, so overall runtime is governed by
//! *which* pages fault on the hub's critical path rather than by the total
//! fault count — the paper's explanation for why PageRank's runtime is
//! uncorrelated with faults (Fig. 2b/5b) and highly sensitive to
//! replacement-decision quality.
//!
//! Memory layout (one address space, CSR-like):
//!
//! ```text
//! [ offsets | edges | rank_a | rank_b ]
//! ```
//!
//! The edges array is streamed sequentially once per iteration (large,
//! evict-friendly); the rank arrays are accessed randomly with hub skew
//! (small, hot) — the tension a replacement policy must resolve.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use pagesim_engine::rng::derive_seed;
use pagesim_mem::{AsId, EntropyClass, Vpn, PAGE_SIZE};

use crate::graph::PowerLawGraph;
use crate::{AccessStream, Annotation, Op, SpaceSpec, Workload};

/// Configuration of the PageRank model.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Worker threads (the paper uses 12).
    pub threads: usize,
    /// Graph vertices.
    pub vertices: u32,
    /// Target edge count (drives the edges-region footprint).
    pub edges: u64,
    /// Degree/neighbor skew in `(0, 1)`.
    pub skew: f64,
    /// PageRank iterations.
    pub iterations: u32,
    /// Vertices per dynamically scheduled chunk (GAP uses 64).
    pub chunk: u32,
    /// Edges summarized per rank-array touch (simulation batching; the
    /// touched-page distribution is unchanged).
    pub edge_group: u32,
    /// Compute per edge, nanoseconds.
    pub cpu_per_edge_ns: u32,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            threads: 12,
            vertices: 1 << 19,
            edges: 5_200_000,
            skew: 0.6,
            iterations: 6,
            chunk: 64,
            edge_group: 16,
            cpu_per_edge_ns: 14_500,
        }
    }
}

impl PageRankConfig {
    /// A reduced configuration for fast tests.
    pub fn tiny() -> Self {
        PageRankConfig {
            threads: 4,
            vertices: 2_000,
            edges: 40_000,
            skew: 0.6,
            iterations: 2,
            chunk: 16,
            edge_group: 8,
            cpu_per_edge_ns: 4,
        }
    }

    /// Scales the graph by `factor` (footprint knob).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.vertices = ((self.vertices as f64 * factor) as u32).max(256);
        self.edges = ((self.edges as f64 * factor) as u64).max(1_000);
        self
    }
}

/// The PageRank workload (see module docs).
#[derive(Clone, Debug)]
pub struct PageRankWorkload {
    cfg: PageRankConfig,
    graph: Arc<PowerLawGraph>,
    offsets_pages: u32,
    edges_pages: u32,
    rank_pages: u32,
}

impl PageRankWorkload {
    /// Builds the graph (deterministic in `graph_seed`) and the workload.
    ///
    /// The paper regenerates nothing between trials — the same input graph
    /// is used for all 25 executions — so the graph seed is separate from
    /// the per-trial stream seed.
    pub fn new(cfg: PageRankConfig, graph_seed: u64) -> Self {
        assert!(cfg.threads > 0 && cfg.iterations > 0);
        assert!(cfg.chunk > 0 && cfg.edge_group > 0);
        let graph = PowerLawGraph::new(cfg.vertices, cfg.edges, cfg.skew, graph_seed);
        let offsets_pages = ((cfg.vertices as u64 + 1) * 8).div_ceil(PAGE_SIZE as u64) as u32;
        let edges_pages = (graph.edges() * 4).div_ceil(PAGE_SIZE as u64) as u32;
        let rank_pages = (cfg.vertices as u64 * 8).div_ceil(PAGE_SIZE as u64) as u32;
        PageRankWorkload {
            cfg,
            graph: Arc::new(graph),
            offsets_pages,
            edges_pages,
            rank_pages,
        }
    }

    /// The generated graph.
    pub fn graph(&self) -> &PowerLawGraph {
        &self.graph
    }

    fn layout(&self) -> Layout {
        Layout {
            offsets_base: 0,
            edges_base: self.offsets_pages,
            rank_a_base: self.offsets_pages + self.edges_pages,
            rank_b_base: self.offsets_pages + self.edges_pages + self.rank_pages,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Layout {
    offsets_base: Vpn,
    edges_base: Vpn,
    rank_a_base: Vpn,
    rank_b_base: Vpn,
}

impl Workload for PageRankWorkload {
    fn name(&self) -> String {
        "pagerank".to_owned()
    }

    fn spaces(&self) -> Vec<SpaceSpec> {
        let l = self.layout();
        let total = self.offsets_pages + self.edges_pages + 2 * self.rank_pages;
        vec![SpaceSpec {
            pages: total,
            annotations: vec![
                Annotation {
                    start: l.offsets_base,
                    count: self.offsets_pages,
                    entropy: EntropyClass::Structured,
                    file_backed: false,
                },
                Annotation {
                    start: l.edges_base,
                    count: self.edges_pages,
                    entropy: EntropyClass::Structured,
                    file_backed: false,
                },
                Annotation {
                    start: l.rank_a_base,
                    count: 2 * self.rank_pages,
                    entropy: EntropyClass::Random,
                    file_backed: false,
                },
            ],
        }]
    }

    fn barriers(&self) -> Vec<usize> {
        vec![self.cfg.threads]
    }

    fn streams(&self, seed: u64) -> Vec<Box<dyn AccessStream>> {
        let nchunks = self.cfg.vertices.div_ceil(self.cfg.chunk);
        let counters: Arc<Vec<AtomicU32>> = Arc::new(
            (0..self.cfg.iterations)
                .map(|_| AtomicU32::new(0))
                .collect(),
        );
        (0..self.cfg.threads)
            .map(|t| {
                Box::new(PageRankStream {
                    cfg: self.cfg,
                    layout: self.layout(),
                    graph: Arc::clone(&self.graph),
                    counters: Arc::clone(&counters),
                    nchunks,
                    nbr_salt: derive_seed(seed, &format!("pr-nbr-{t}")),
                    iteration: 0,
                    buf: VecDeque::new(),
                    done: false,
                }) as Box<dyn AccessStream>
            })
            .collect()
    }
}

/// One worker thread: grabs vertex chunks from the shared per-iteration
/// counter (dynamic scheduling), emits the page touches of each vertex.
struct PageRankStream {
    cfg: PageRankConfig,
    layout: Layout,
    graph: Arc<PowerLawGraph>,
    counters: Arc<Vec<AtomicU32>>,
    nchunks: u32,
    /// Per-trial salt: decides which neighbor represents each edge group,
    /// modeling run-to-run variation in the sampled access interleaving.
    nbr_salt: u64,
    iteration: u32,
    buf: VecDeque<Op>,
    done: bool,
}

impl PageRankStream {
    fn rank_bases(&self) -> (Vpn, Vpn) {
        // Even iterations read A and write B; odd iterations swap.
        if self.iteration.is_multiple_of(2) {
            (self.layout.rank_a_base, self.layout.rank_b_base)
        } else {
            (self.layout.rank_b_base, self.layout.rank_a_base)
        }
    }

    fn push(&mut self, vpn: Vpn, write: bool, cpu_ns: u32) {
        self.buf.push_back(Op::Access {
            space: AsId(0),
            vpn,
            write,
            cpu_ns,
        });
    }

    /// Emits the ops of one vertex chunk.
    fn fill_chunk(&mut self, chunk: u32) {
        let (src_base, dst_base) = self.rank_bases();
        let v_lo = chunk * self.cfg.chunk;
        let v_hi = (v_lo + self.cfg.chunk).min(self.cfg.vertices);
        let group = self.cfg.edge_group;
        let cpu_group = self.cfg.cpu_per_edge_ns * group;
        let mut last_edge_page = u32::MAX;
        for v in v_lo..v_hi {
            // offsets[v]: one touch per offsets page actually crossed.
            let off_vpn = self.layout.offsets_base + (v as u64 * 8 / PAGE_SIZE as u64) as u32;
            if v == v_lo || (v as u64 * 8).is_multiple_of(PAGE_SIZE as u64) {
                self.push(off_vpn, false, 8);
            }
            let deg = self.graph.degree(v);
            let first = self.graph.edge_offset(v);
            // Stream the CSR edge pages for this vertex.
            let e_pg_lo = (first * 4 / PAGE_SIZE as u64) as u32;
            let e_pg_hi = ((first + deg as u64) * 4 / PAGE_SIZE as u64) as u32;
            for pg in e_pg_lo..=e_pg_hi {
                if pg != last_edge_page {
                    self.push(self.layout.edges_base + pg, false, 16);
                    last_edge_page = pg;
                }
            }
            // Gather neighbor ranks: one representative touch per edge
            // group, destination skewed toward hubs.
            let groups = deg.div_ceil(group);
            for gidx in 0..groups {
                let rep_edge = (gidx * group
                    + (pagesim_engine::rng::splitmix64(
                        self.nbr_salt ^ ((v as u64) << 24) ^ gidx as u64,
                    ) % group as u64) as u32)
                    .min(deg - 1);
                let nbr = self.graph.neighbor(v, rep_edge);
                let vpn = src_base + (nbr as u64 * 8 / PAGE_SIZE as u64) as u32;
                self.push(vpn, false, cpu_group);
            }
            // Write the new rank.
            let dst = dst_base + (v as u64 * 8 / PAGE_SIZE as u64) as u32;
            self.push(dst, true, 8);
        }
    }
}

impl AccessStream for PageRankStream {
    fn next_op(&mut self) -> Op {
        loop {
            if let Some(op) = self.buf.pop_front() {
                return op;
            }
            if self.done {
                return Op::Done;
            }
            if self.iteration >= self.cfg.iterations {
                self.done = true;
                return Op::Done;
            }
            // Grab the next chunk of this iteration (dynamic scheduling).
            let chunk = self.counters[self.iteration as usize].fetch_add(1, Ordering::Relaxed);
            if chunk >= self.nchunks {
                // Iteration exhausted: converge at the barrier.
                self.iteration += 1;
                self.buf.push_back(Op::Barrier { id: 0 });
            } else {
                self.fill_chunk(chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &PageRankWorkload, seed: u64) -> Vec<Vec<Op>> {
        // Streams share chunk counters: interleave round-robin like the
        // simulator would.
        let mut streams = w.streams(seed);
        let mut out = vec![Vec::new(); streams.len()];
        let mut live: Vec<usize> = (0..streams.len()).collect();
        while !live.is_empty() {
            live.retain(|&i| {
                let op = streams[i].next_op();
                if op == Op::Done {
                    false
                } else {
                    out[i].push(op);
                    true
                }
            });
        }
        out
    }

    /// Drains with round-robin interleaving, preserving global time order.
    fn drain_merged(w: &PageRankWorkload, seed: u64) -> Vec<Op> {
        let mut streams = w.streams(seed);
        let mut merged = Vec::new();
        let mut live: Vec<usize> = (0..streams.len()).collect();
        while !live.is_empty() {
            live.retain(|&i| {
                let op = streams[i].next_op();
                if op == Op::Done {
                    false
                } else {
                    merged.push(op);
                    true
                }
            });
        }
        merged
    }

    #[test]
    fn barriers_once_per_iteration_per_thread() {
        let w = PageRankWorkload::new(PageRankConfig::tiny(), 1);
        let ops = drain_all(&w, 2);
        for thread_ops in &ops {
            let barriers = thread_ops
                .iter()
                .filter(|o| matches!(o, Op::Barrier { .. }))
                .count();
            assert_eq!(barriers, 2, "one barrier per iteration");
        }
    }

    #[test]
    fn every_chunk_processed_exactly_once() {
        let cfg = PageRankConfig::tiny();
        let w = PageRankWorkload::new(cfg, 1);
        let ops = drain_all(&w, 3);
        // Count rank writes across all threads: one per vertex per iter.
        let writes: usize = ops
            .iter()
            .flatten()
            .filter(|o| matches!(o, Op::Access { write: true, .. }))
            .count();
        assert_eq!(
            writes as u32,
            cfg.vertices * cfg.iterations,
            "each vertex written once per iteration"
        );
    }

    #[test]
    fn touches_stay_in_bounds() {
        let w = PageRankWorkload::new(PageRankConfig::tiny(), 1);
        let total = w.footprint_pages();
        for thread_ops in drain_all(&w, 4) {
            for op in thread_ops {
                if let Op::Access { vpn, .. } = op {
                    assert!(vpn < total);
                }
            }
        }
    }

    #[test]
    fn rank_reads_skew_to_hub_pages() {
        let w = PageRankWorkload::new(PageRankConfig::tiny(), 1);
        let l = w.layout();
        let rank_pages = w.rank_pages;
        let mut touches = vec![0u32; rank_pages as usize];
        for thread_ops in drain_all(&w, 5) {
            for op in thread_ops {
                if let Op::Access { vpn, write: false, .. } = op {
                    if vpn >= l.rank_a_base && vpn < l.rank_a_base + rank_pages {
                        touches[(vpn - l.rank_a_base) as usize] += 1;
                    }
                }
            }
        }
        let first = touches[0];
        let last = touches[rank_pages as usize - 1];
        assert!(
            first > 3 * last.max(1),
            "hub page {first} vs cold page {last}"
        );
    }

    #[test]
    fn chunk_work_is_heavy_tailed() {
        // Degree skew means the hub's chunk carries far more work than a
        // typical chunk — the straggler mechanism. (Dynamic scheduling
        // equalizes per-thread op volume, so measure per-chunk work.)
        let w = PageRankWorkload::new(PageRankConfig::tiny(), 1);
        let g = w.graph();
        let cfg = PageRankConfig::tiny();
        let nchunks = cfg.vertices.div_ceil(cfg.chunk);
        let chunk_edges = |c: u32| -> u64 {
            let lo = c * cfg.chunk;
            let hi = (lo + cfg.chunk).min(cfg.vertices);
            (lo..hi).map(|v| g.degree(v) as u64).sum()
        };
        let hub = chunk_edges(0);
        let mut all: Vec<u64> = (0..nchunks).map(chunk_edges).collect();
        all.sort_unstable();
        let median = all[all.len() / 2];
        assert!(hub > 5 * median, "hub chunk {hub} vs median chunk {median}");
    }

    #[test]
    fn iteration_parity_alternates_rank_arrays() {
        let cfg = PageRankConfig::tiny();
        let w = PageRankWorkload::new(cfg, 1);
        let l = w.layout();
        // Use the time-ordered merge so iteration 0 precedes iteration 1.
        let merged = drain_merged(&w, 7);
        let writes: Vec<Vpn> = merged
            .iter()
            .filter_map(|o| match o {
                Op::Access { vpn, write: true, .. } => Some(*vpn),
                _ => None,
            })
            .collect();
        let half = writes.len() / 2;
        let first_half_b = writes[..half].iter().filter(|&&v| v >= l.rank_b_base).count();
        let second_half_b = writes[half..].iter().filter(|&&v| v >= l.rank_b_base).count();
        assert!(first_half_b > second_half_b, "iteration 0 writes B, 1 writes A");
    }

    #[test]
    fn graph_is_shared_across_trials_but_salt_differs() {
        let w = PageRankWorkload::new(PageRankConfig::tiny(), 9);
        let a: usize = drain_all(&w, 1).iter().map(Vec::len).sum();
        let b: usize = drain_all(&w, 2).iter().map(Vec::len).sum();
        // Same graph => same op volume; different salt => different
        // neighbor sampling (checked via sequence inequality elsewhere).
        assert_eq!(a, b);
    }
}
