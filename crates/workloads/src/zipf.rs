//! Zipfian item popularity, YCSB-style.
//!
//! Implements the Gray et al. zipfian generator used by YCSB (constant
//! θ = 0.99) plus the *scrambled* variant YCSB applies so popular items
//! are spread across the keyspace instead of clustered at low ids.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use pagesim_engine::rng::splitmix64;

/// YCSB's default skew constant.
pub const YCSB_THETA: f64 = 0.99;

/// A zipfian distribution over `0..n` with parameter θ.
///
/// ```rust
/// use pagesim_workloads::zipf::Zipfian;
/// let mut z = Zipfian::new(1000, 0.99, 42);
/// let x = z.next_rank();
/// assert!(x < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    rng: SmallRng,
}

impl Zipfian {
    /// Creates a generator over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or θ is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "empty domain");
        assert!((0.0..1.0).contains(&theta) && theta > 0.0, "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; domains in this simulator are ≤ a few million.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws a rank: 0 is the most popular.
    pub fn next_rank(&mut self) -> u64 {
        let u: f64 = self.rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }
}

/// Scrambled zipfian: zipfian ranks hashed over the keyspace (YCSB's
/// `ScrambledZipfianGenerator`), so popularity is spread uniformly across
/// item ids — and therefore across the KV store's slab pages.
#[derive(Clone, Debug)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Creates a scrambled generator over `0..n` with YCSB's θ.
    pub fn new(n: u64, seed: u64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(n, YCSB_THETA, seed),
        }
    }

    /// Draws an item id in `0..n`.
    pub fn next_item(&mut self) -> u64 {
        let rank = self.inner.next_rank();
        splitmix64(rank) % self.inner.n()
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.inner.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_range() {
        let mut z = Zipfian::new(100, 0.99, 1);
        for _ in 0..10_000 {
            assert!(z.next_rank() < 100);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let mut z = Zipfian::new(10_000, 0.99, 2);
        let mut zero = 0;
        let draws = 100_000;
        for _ in 0..draws {
            if z.next_rank() == 0 {
                zero += 1;
            }
        }
        // P(rank 0) = 1/zeta(n) ≈ 10% for n = 10^4 at theta 0.99
        let p = zero as f64 / draws as f64;
        assert!((0.07..0.14).contains(&p), "p(0) = {p}");
    }

    #[test]
    fn skew_matches_zipf_law_shape() {
        let mut z = Zipfian::new(1000, 0.99, 3);
        let mut counts = vec![0u32; 1000];
        for _ in 0..200_000 {
            counts[z.next_rank() as usize] += 1;
        }
        // Top-10 ranks should hold a large share; tail should be thin.
        let top10: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[500..].iter().sum();
        assert!(top10 > tail, "top10={top10} tail={tail}");
        // Monotone on average: first rank beats the 100th.
        assert!(counts[0] > counts[99]);
    }

    #[test]
    fn scrambled_spreads_popularity() {
        let mut s = ScrambledZipfian::new(10_000, 4);
        let mut counts = vec![0u32; 10_000];
        for _ in 0..100_000 {
            counts[s.next_item() as usize] += 1;
        }
        // The most popular item should NOT be item 0 in general: the hot
        // set is scattered by the hash.
        let hot: Vec<usize> = {
            let mut idx: Vec<usize> = (0..10_000).collect();
            idx.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
            idx[..10].to_vec()
        };
        let clustered_low = hot.iter().filter(|&&i| i < 100).count();
        assert!(clustered_low <= 2, "hot set clustered at low ids: {hot:?}");
        // Still heavily skewed overall.
        let top: u32 = hot.iter().map(|&i| counts[i]).sum();
        assert!(top as f64 > 0.2 * 100_000.0, "top-10 share too small");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = ScrambledZipfian::new(1000, 7);
        let mut b = ScrambledZipfian::new(1000, 7);
        for _ in 0..100 {
            assert_eq!(a.next_item(), b.next_item());
        }
        let mut c = ScrambledZipfian::new(1000, 8);
        let same = (0..100).filter(|_| a.next_item() == c.next_item()).count();
        assert!(same < 90, "different seeds should diverge");
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_domain_rejected() {
        Zipfian::new(0, 0.5, 1);
    }
}
