//! YCSB A/B/C over the memcached-like KV store.
//!
//! The paper serves YCSB core workloads from Memcached (4 server threads)
//! and reports read/write tail latencies. We model the measurement loop
//! the same way YCSB's default closed-loop clients drive it: each server
//! thread continuously serves requests — zipfian-popular items, an
//! update share of 50 % (A), 5 % (B) or 0 % (C) — and the simulator
//! timestamps [`Op::RequestStart`]/[`Op::RequestEnd`] pairs to build the
//! latency CDFs. Under memory pressure a request's latency is dominated by
//! the page faults its bucket/item touches incur, which is precisely the
//! tail mechanism §V-A/§V-D analyses.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use pagesim_engine::rng::derive_seed;
use pagesim_kv::{KvConfig, KvStore};
use pagesim_mem::{AsId, EntropyClass};

use crate::zipf::ScrambledZipfian;
use crate::{AccessStream, Annotation, Op, ReqClass, SpaceSpec, Workload};

/// Which YCSB core workload to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum YcsbMix {
    /// 50 % reads / 50 % updates.
    A,
    /// 95 % reads / 5 % updates.
    B,
    /// 100 % reads.
    C,
}

impl YcsbMix {
    /// Update fraction of the mix.
    pub fn update_fraction(self) -> f64 {
        match self {
            YcsbMix::A => 0.5,
            YcsbMix::B => 0.05,
            YcsbMix::C => 0.0,
        }
    }

    /// Workload letter.
    pub fn letter(self) -> char {
        match self {
            YcsbMix::A => 'a',
            YcsbMix::B => 'b',
            YcsbMix::C => 'c',
        }
    }
}

/// Configuration of the YCSB workload.
#[derive(Clone, Copy, Debug)]
pub struct YcsbConfig {
    /// Which mix (A/B/C).
    pub mix: YcsbMix,
    /// Server threads (memcached default: 4).
    pub threads: usize,
    /// Items loaded into the store.
    pub items: u32,
    /// Value size in bytes.
    pub value_size: u32,
    /// Requests to serve across all threads.
    pub requests: u64,
    /// Leading fraction of requests marked as warmup (excluded from tail
    /// statistics; plays the role of the paper's load phase).
    pub warmup_fraction: f64,
}

impl YcsbConfig {
    /// Paper-proportioned defaults for a given mix: ~10 requests per item.
    pub fn with_mix(mix: YcsbMix) -> Self {
        YcsbConfig {
            mix,
            threads: 4,
            items: 40_000,
            value_size: 1_200,
            requests: 400_000,
            warmup_fraction: 0.05,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny(mix: YcsbMix) -> Self {
        YcsbConfig {
            mix,
            threads: 2,
            items: 2_000,
            value_size: 1_200,
            requests: 4_000,
            warmup_fraction: 0.1,
        }
    }
}

/// The YCSB workload (see module docs).
#[derive(Clone, Debug)]
pub struct YcsbWorkload {
    cfg: YcsbConfig,
    store: Arc<KvStore>,
}

impl YcsbWorkload {
    /// Builds the store (deterministic in `store_seed`) and the workload.
    pub fn new(cfg: YcsbConfig, store_seed: u64) -> Self {
        assert!(cfg.threads > 0 && cfg.requests > 0);
        assert!((0.0..1.0).contains(&cfg.warmup_fraction));
        let store = KvStore::build(KvConfig {
            items: cfg.items,
            value_size: cfg.value_size,
            load_factor: 1.0,
            seed: store_seed,
        });
        YcsbWorkload {
            cfg,
            store: Arc::new(store),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }
}

impl Workload for YcsbWorkload {
    fn name(&self) -> String {
        format!("ycsb-{}", self.cfg.mix.letter())
    }

    fn spaces(&self) -> Vec<SpaceSpec> {
        vec![SpaceSpec {
            pages: self.store.total_pages(),
            annotations: vec![
                Annotation {
                    start: 0,
                    count: self.store.bucket_pages(),
                    entropy: EntropyClass::Structured,
                    file_backed: false,
                },
                Annotation {
                    start: self.store.bucket_pages(),
                    count: self.store.total_pages() - self.store.bucket_pages(),
                    entropy: EntropyClass::Text,
                    file_backed: false,
                },
            ],
        }]
    }

    fn barriers(&self) -> Vec<usize> {
        Vec::new()
    }

    fn streams(&self, seed: u64) -> Vec<Box<dyn AccessStream>> {
        let per_thread = self.cfg.requests / self.cfg.threads as u64;
        (0..self.cfg.threads)
            .map(|t| {
                let s = derive_seed(seed, &format!("ycsb-{t}"));
                Box::new(YcsbStream {
                    cfg: self.cfg,
                    store: Arc::clone(&self.store),
                    zipf: ScrambledZipfian::new(self.cfg.items as u64, s),
                    rng: SmallRng::seed_from_u64(s ^ 0xFACE),
                    remaining: per_thread,
                    total: per_thread,
                    buf: VecDeque::new(),
                }) as Box<dyn AccessStream>
            })
            .collect()
    }
}

/// One server thread: a closed loop of zipfian requests.
struct YcsbStream {
    cfg: YcsbConfig,
    store: Arc<KvStore>,
    zipf: ScrambledZipfian,
    rng: SmallRng,
    remaining: u64,
    total: u64,
    buf: VecDeque<Op>,
}

impl AccessStream for YcsbStream {
    fn next_op(&mut self) -> Op {
        loop {
            if let Some(op) = self.buf.pop_front() {
                return op;
            }
            if self.remaining == 0 {
                return Op::Done;
            }
            let served = self.total - self.remaining;
            let warmup =
                (served as f64) < self.cfg.warmup_fraction * self.total as f64;
            self.remaining -= 1;

            let item = self.zipf.next_item() as u32;
            let is_update = self.rng.random_bool(self.cfg.mix.update_fraction());
            let plan = if is_update {
                self.store.update_plan(item)
            } else {
                self.store.get_plan(item)
            };
            let class = if is_update {
                ReqClass::Write
            } else {
                ReqClass::Read
            };
            self.buf.push_back(Op::RequestStart { class, warmup });
            let n = plan.touches.len() as u64;
            for t in plan.touches {
                self.buf.push_back(Op::Access {
                    space: AsId(0),
                    vpn: t.vpn,
                    write: t.write,
                    cpu_ns: (plan.cpu_ns / n) as u32,
                });
            }
            self.buf.push_back(Op::RequestEnd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(stream: &mut dyn AccessStream) -> Vec<Op> {
        let mut ops = Vec::new();
        loop {
            match stream.next_op() {
                Op::Done => break,
                op => ops.push(op),
            }
        }
        ops
    }

    #[test]
    fn request_markers_are_paired() {
        let w = YcsbWorkload::new(YcsbConfig::tiny(YcsbMix::B), 1);
        let ops = drain(w.streams(2)[0].as_mut());
        let mut depth = 0i32;
        let mut count = 0;
        for op in &ops {
            match op {
                Op::RequestStart { .. } => {
                    depth += 1;
                    count += 1;
                    assert_eq!(depth, 1, "requests must not nest");
                }
                Op::RequestEnd => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert_eq!(count, 2_000, "requests / threads");
    }

    #[test]
    fn mix_c_has_no_writes() {
        let w = YcsbWorkload::new(YcsbConfig::tiny(YcsbMix::C), 1);
        for op in drain(w.streams(3)[0].as_mut()) {
            match op {
                Op::Access { write, .. } => assert!(!write),
                Op::RequestStart { class, .. } => assert_eq!(class, ReqClass::Read),
                _ => {}
            }
        }
    }

    #[test]
    fn mix_a_is_half_writes() {
        let w = YcsbWorkload::new(YcsbConfig::tiny(YcsbMix::A), 1);
        let ops = drain(w.streams(4)[0].as_mut());
        let (mut reads, mut writes) = (0u32, 0u32);
        for op in &ops {
            if let Op::RequestStart { class, .. } = op {
                match class {
                    ReqClass::Read => reads += 1,
                    ReqClass::Write => writes += 1,
                }
            }
        }
        let frac = writes as f64 / (reads + writes) as f64;
        assert!((0.45..0.55).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn warmup_marks_leading_requests_only() {
        let w = YcsbWorkload::new(YcsbConfig::tiny(YcsbMix::B), 1);
        let ops = drain(w.streams(5)[0].as_mut());
        let warmups: Vec<bool> = ops
            .iter()
            .filter_map(|o| match o {
                Op::RequestStart { warmup, .. } => Some(*warmup),
                _ => None,
            })
            .collect();
        let boundary = warmups.iter().position(|w| !w).unwrap();
        assert_eq!(boundary, 200, "10% of 2000 requests warm up");
        assert!(warmups[boundary..].iter().all(|w| !w));
    }

    #[test]
    fn popularity_is_skewed_across_item_pages() {
        let w = YcsbWorkload::new(YcsbConfig::tiny(YcsbMix::C), 1);
        let bucket_pages = w.store().bucket_pages();
        let mut counts = std::collections::HashMap::new();
        for op in drain(w.streams(6)[0].as_mut()) {
            if let Op::Access { vpn, .. } = op {
                if vpn >= bucket_pages {
                    *counts.entry(vpn).or_insert(0u32) += 1;
                }
            }
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by_key(|&c| std::cmp::Reverse(c));
        let top: u32 = freqs.iter().take(10).sum();
        let total: u32 = freqs.iter().sum();
        assert!(
            top as f64 > 0.2 * total as f64,
            "zipfian hot pages missing: top10 {top}/{total}"
        );
    }

    #[test]
    fn name_includes_mix() {
        assert_eq!(
            YcsbWorkload::new(YcsbConfig::tiny(YcsbMix::A), 1).name(),
            "ycsb-a"
        );
    }

    #[test]
    fn footprint_matches_store() {
        let w = YcsbWorkload::new(YcsbConfig::tiny(YcsbMix::B), 1);
        assert_eq!(w.footprint_pages(), w.store().total_pages());
    }
}
