//! Property tests for the DES engine primitives.

use proptest::prelude::*;

use pagesim_engine::{
    DispatchDecision, EventQueue, FaultInjector, FaultPlan, QueuedDevice, Scheduler, SimTime,
    StallPlan, ThreadClass,
};

proptest! {
    /// The event queue delivers in (time, insertion) order for any input.
    #[test]
    fn event_queue_matches_stable_sort(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ns(t), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        expect.sort_by_key(|&(t, i)| (t, i));
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, p)| (t.as_ns(), p))).collect();
        prop_assert_eq!(got, expect);
    }

    /// A single-server device is strictly FIFO; with any server count a
    /// request never finishes before its own submit + service time, and
    /// service *starts* are FIFO (monotone non-decreasing).
    #[test]
    fn device_completions_respect_fifo_service(
        servers in 1usize..4,
        reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100),
    ) {
        let mut d = QueuedDevice::new(servers);
        let mut now = 0u64;
        let mut last_done = 0u64;
        let mut last_start = 0u64;
        for (gap, service) in reqs {
            now += gap;
            let done = d
                .submit(SimTime::from_ns(now), service)
                .expect("fault-free device never errors")
                .as_ns();
            // A request can never finish before its own service time.
            prop_assert!(done >= now + service);
            let start = done - service;
            // FIFO admission: a later submission never starts service
            // before an earlier one.
            prop_assert!(start >= last_start, "start reordered: {start} < {last_start}");
            last_start = start;
            if servers == 1 {
                // One server: completions are strictly ordered too.
                prop_assert!(done >= last_done, "reordered: {done} < {last_done}");
            }
            last_done = last_done.max(done);
        }
    }

    /// Under injected device stalls a FIFO device still loses nothing and
    /// never reorders service: every submitted request completes, no
    /// earlier than its own submit + service time, with monotone service
    /// starts and monotone completions.
    #[test]
    fn stalled_device_loses_and_reorders_nothing(
        seed in any::<u64>(),
        period in 1_000u64..50_000,
        duration_pct in 5u64..40,
        reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100),
    ) {
        let plan = FaultPlan {
            stall: Some(StallPlan {
                first_onset: 500,
                period,
                onset_jitter: period / 10,
                duration: period * duration_pct / 100,
                duration_jitter: period / 10,
            }),
            ..FaultPlan::none()
        };
        let mut d = QueuedDevice::new(1);
        d.set_faults(FaultInjector::new(plan, seed));
        let mut now = 0u64;
        let mut last_start = 0u64;
        let mut completions = Vec::new();
        for &(gap, service) in &reqs {
            now += gap;
            let done = d
                .submit(SimTime::from_ns(now), service)
                .expect("stall-only plans never inject errors")
                .as_ns();
            prop_assert!(done >= now + service);
            let start = done - service;
            prop_assert!(
                start >= last_start,
                "service start reordered: {start} < {last_start}"
            );
            last_start = start;
            completions.push(done);
        }
        // No request was lost, and the stall windows only delayed — never
        // reordered — the completion stream.
        prop_assert_eq!(completions.len(), reqs.len());
        prop_assert!(
            completions.windows(2).all(|w| w[0] <= w[1]),
            "completions reordered"
        );
    }

    /// Random dispatch/wake/block sequences keep the scheduler coherent:
    /// no thread occupies two cores, counts stay consistent.
    #[test]
    fn scheduler_is_coherent_under_random_ops(
        ops in prop::collection::vec(0u8..4, 1..300),
        cores in 1usize..5,
        nthreads in 1u32..8,
    ) {
        let mut s = Scheduler::new(cores, 1000);
        let tids: Vec<_> = (0..nthreads).map(|_| s.spawn(ThreadClass::App)).collect();
        for &t in &tids {
            s.make_runnable(t);
        }
        let mut running: Vec<(usize, pagesim_engine::ThreadId)> = Vec::new();
        for op in ops {
            match op {
                0 => {
                    if let Some((core, tid)) = s.try_dispatch() {
                        prop_assert!(!running.iter().any(|&(c, _)| c == core));
                        prop_assert!(!running.iter().any(|&(_, t)| t == tid));
                        running.push((core, tid));
                        prop_assert!(running.len() <= cores);
                    }
                }
                1 => {
                    if let Some((core, tid)) = running.pop() {
                        s.slice_done(core, tid, DispatchDecision::Preempted, 10);
                    }
                }
                2 => {
                    if let Some((core, tid)) = running.pop() {
                        s.slice_done(core, tid, DispatchDecision::Blocked, 10);
                    }
                }
                _ => {
                    //

                    // wake everything not running (no-op for runnable)
                    for &t in &tids {
                        if !running.iter().any(|&(_, r)| r == t) && !s.is_finished(t) {
                            s.make_runnable(t);
                        }
                    }
                }
            }
        }
        // Drain: finish what is running, wake everything blocked, then
        // dispatch-and-finish until no live threads remain.
        while let Some((core, tid)) = running.pop() {
            s.slice_done(core, tid, DispatchDecision::Finished, 1);
        }
        loop {
            for &t in &tids {
                if !s.is_finished(t) {
                    s.make_runnable(t); // no-op if already runnable
                }
            }
            match s.try_dispatch() {
                Some((core, tid)) => s.slice_done(core, tid, DispatchDecision::Finished, 1),
                None => break,
            }
        }
        prop_assert_eq!(s.live_threads(), 0);
    }
}
