//! Deterministic fault injection for simulated devices and memory.
//!
//! A [`FaultPlan`] describes *what* can go wrong — transient and permanent
//! I/O errors, periodic device stalls, and memory-pressure steps — and a
//! [`FaultInjector`] turns the plan into concrete per-operation decisions.
//! Every decision is a pure function of `(plan, seed, operation index)`, so
//! two runs with the same plan and seed inject byte-identical fault
//! sequences, keeping the simulator's determinism invariant intact.
//!
//! The injector is purely analytic, like [`QueuedDevice`](crate::QueuedDevice):
//! stall windows are computed from window-index arithmetic at submit time,
//! so no extra events are needed and an empty plan adds zero behavior
//! drift (the arithmetic reduces to the fault-free path exactly).

use crate::rng::splitmix64;
use crate::time::{Nanos, SimTime};

/// Why a device operation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoError {
    /// Transient media error: retrying later may succeed.
    Transient,
    /// The device failed permanently; no retry will ever succeed.
    Permanent,
    /// Compressed-pool capacity exhausted (ZRAM write rejection).
    PoolFull,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Transient => write!(f, "transient I/O error"),
            IoError::Permanent => write!(f, "permanent device failure"),
            IoError::PoolFull => write!(f, "compressed pool full"),
        }
    }
}

/// Result of a fallible device operation.
pub type IoResult<T> = Result<T, IoError>;

/// Periodic device stalls: the device stops serving new requests for a
/// window of time, then recovers (firmware garbage collection, internal
/// flush, a hiccuping hypervisor — the mechanisms behind the long SSD
/// tails the paper's §VI-A leans on).
///
/// Window `k` opens at `first_onset + k·period + jitter` and lasts
/// `duration + jitter`; both jitters are deterministic per `(seed, k)`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StallPlan {
    /// Earliest possible onset of the first stall window.
    pub first_onset: Nanos,
    /// Nominal spacing between window onsets.
    pub period: Nanos,
    /// Max extra delay added to each window's onset (uniform in
    /// `0..=onset_jitter`).
    pub onset_jitter: Nanos,
    /// Base stall duration.
    pub duration: Nanos,
    /// Max extra duration (uniform in `0..=duration_jitter`).
    pub duration_jitter: Nanos,
}

impl StallPlan {
    fn validate(&self) {
        assert!(self.period > 0, "stall period must be positive");
        assert!(
            self.onset_jitter + self.duration + self.duration_jitter <= self.period,
            "stall windows must not overlap: jitter + duration must fit in the period"
        );
    }
}

/// One step of external memory pressure: a balloon grabs a fraction of
/// physical frames at `at` and returns them `duration` later.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PressureStep {
    /// Instant the balloon inflates.
    pub at: Nanos,
    /// Fraction of total frames taken (clamped to what is free).
    pub frac: f64,
    /// How long the frames stay taken.
    pub duration: Nanos,
}

/// A deterministic description of everything that can go wrong in a run.
///
/// The default plan ([`FaultPlan::none`]) injects nothing and is guaranteed
/// zero-drift: simulations with it are bit-identical to a build without the
/// fault layer.
#[derive(Clone, PartialEq, Debug)]
pub struct FaultPlan {
    /// Probability that any single device operation fails transiently.
    pub error_rate: f64,
    /// Instant after which every device operation fails permanently.
    pub fail_permanently_at: Option<Nanos>,
    /// Periodic device stalls.
    pub stall: Option<StallPlan>,
    /// Memory-pressure steps (consumed by the kernel, not by devices).
    pub pressure: Vec<PressureStep>,
}

impl FaultPlan {
    /// The empty plan: no faults, zero behavior drift.
    pub fn none() -> FaultPlan {
        FaultPlan {
            error_rate: 0.0,
            fail_permanently_at: None,
            stall: None,
            pressure: Vec::new(),
        }
    }

    /// Whether the plan can affect device operations (errors or stalls).
    /// Pressure steps are kernel-side and do not count.
    pub fn has_device_faults(&self) -> bool {
        self.error_rate > 0.0 || self.fail_permanently_at.is_some() || self.stall.is_some()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        !self.has_device_faults() && self.pressure.is_empty()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Counters describing what an injector actually did.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations failed with an injected error.
    pub injected_errors: u64,
    /// Operations delayed by a stall window.
    pub stalled_ops: u64,
    /// Total delay added by stall windows.
    pub stall_delay_ns: Nanos,
}

/// Applies a [`FaultPlan`] to a stream of device operations.
///
/// Construct one per device with a seed derived from the trial seed (see
/// [`rng::derive_seed`](crate::rng::derive_seed)); the injector keeps a
/// per-operation counter so error rolls replay exactly.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    ops: u64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for `plan`, rolling errors from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the plan's stall windows could overlap
    /// (`onset_jitter + duration + duration_jitter > period`).
    pub fn new(plan: FaultPlan, seed: u64) -> FaultInjector {
        if let Some(s) = &plan.stall {
            s.validate();
        }
        FaultInjector {
            plan,
            seed,
            ops: 0,
            stats: FaultStats::default(),
        }
    }

    /// Decides whether the operation submitted at `now` fails. Each call
    /// consumes one slot of the deterministic error stream.
    pub fn check(&mut self, now: SimTime) -> IoResult<()> {
        if let Some(at) = self.plan.fail_permanently_at {
            if now.as_ns() >= at {
                self.stats.injected_errors += 1;
                return Err(IoError::Permanent);
            }
        }
        if self.plan.error_rate > 0.0 {
            let r = splitmix64(self.seed ^ self.ops.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            self.ops += 1;
            // 53 uniform mantissa bits -> [0, 1).
            let u = (r >> 11) as f64 / (1u64 << 53) as f64;
            if u < self.plan.error_rate {
                self.stats.injected_errors += 1;
                return Err(IoError::Transient);
            }
        }
        Ok(())
    }

    /// Effective submission time for an operation arriving at `now`: if a
    /// stall window is open, service is pushed to the window's end.
    pub fn delay(&mut self, now: SimTime) -> SimTime {
        match self.stall_end(now) {
            Some(end) if end > now => {
                self.stats.stalled_ops += 1;
                self.stats.stall_delay_ns += end - now;
                end
            }
            _ => now,
        }
    }

    /// If `now` falls inside a stall window, the instant the window closes.
    pub fn stall_end(&self, now: SimTime) -> Option<SimTime> {
        let s = self.plan.stall.as_ref()?;
        let t = now.as_ns();
        if t < s.first_onset {
            return None;
        }
        // Windows cannot overlap (validated), so only the window whose
        // period contains `t` can be open.
        let k = (t - s.first_onset) / s.period;
        let base = s.first_onset + k * s.period;
        let onset = base + Self::jitter(self.seed, k, 0, s.onset_jitter);
        let end = onset + s.duration + Self::jitter(self.seed, k, 1, s.duration_jitter);
        (onset <= t && t < end).then(|| SimTime::from_ns(end))
    }

    /// Deterministic uniform draw in `0..=max` for window `k`.
    fn jitter(seed: u64, k: u64, lane: u64, max: Nanos) -> Nanos {
        if max == 0 {
            return 0;
        }
        splitmix64(seed ^ (k << 1 | lane).wrapping_mul(0xD134_2543_DE82_EF95)) % (max + 1)
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stalling_plan() -> FaultPlan {
        FaultPlan {
            stall: Some(StallPlan {
                first_onset: 1_000,
                period: 10_000,
                onset_jitter: 500,
                duration: 2_000,
                duration_jitter: 500,
            }),
            ..FaultPlan::none()
        }
    }

    #[test]
    fn empty_plan_is_noop() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 42);
        for t in [0u64, 1, 1_000_000, u64::MAX / 2] {
            let now = SimTime::from_ns(t);
            assert_eq!(inj.check(now), Ok(()));
            assert_eq!(inj.delay(now), now);
        }
        assert_eq!(inj.stats(), FaultStats::default());
        assert!(FaultPlan::none().is_noop());
        assert!(!FaultPlan::none().has_device_faults());
    }

    #[test]
    fn permanent_failure_is_a_cliff() {
        let plan = FaultPlan {
            fail_permanently_at: Some(5_000),
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.check(SimTime::from_ns(4_999)), Ok(()));
        assert_eq!(inj.check(SimTime::from_ns(5_000)), Err(IoError::Permanent));
        assert_eq!(inj.check(SimTime::from_ns(9_999_999)), Err(IoError::Permanent));
        assert_eq!(inj.stats().injected_errors, 2);
    }

    #[test]
    fn error_rate_one_always_fails_zero_never() {
        let always = FaultPlan {
            error_rate: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(always, 9);
        for _ in 0..100 {
            assert_eq!(inj.check(SimTime::ZERO), Err(IoError::Transient));
        }
        let never = FaultPlan::none();
        let mut inj = FaultInjector::new(never, 9);
        for _ in 0..100 {
            assert_eq!(inj.check(SimTime::ZERO), Ok(()));
        }
    }

    #[test]
    fn error_stream_replays_per_seed() {
        let plan = FaultPlan {
            error_rate: 0.3,
            ..FaultPlan::none()
        };
        let mut a = FaultInjector::new(plan.clone(), 77);
        let mut b = FaultInjector::new(plan.clone(), 77);
        let mut c = FaultInjector::new(plan, 78);
        let seq = |inj: &mut FaultInjector| -> Vec<bool> {
            (0..200).map(|_| inj.check(SimTime::ZERO).is_err()).collect()
        };
        let sa = seq(&mut a);
        assert_eq!(sa, seq(&mut b), "same seed must replay");
        assert_ne!(sa, seq(&mut c), "different seed must differ");
        let errs = sa.iter().filter(|&&e| e).count();
        assert!((20..=120).contains(&errs), "rate way off: {errs}/200");
    }

    #[test]
    fn stall_windows_are_periodic_and_deterministic() {
        let inj = FaultInjector::new(stalling_plan(), 5);
        // Before the first onset: never stalled.
        assert_eq!(inj.stall_end(SimTime::from_ns(0)), None);
        assert_eq!(inj.stall_end(SimTime::from_ns(999)), None);
        // Find the first window by scanning.
        let mut opens = Vec::new();
        let mut prev_open = false;
        for t in 0..60_000u64 {
            let open = inj.stall_end(SimTime::from_ns(t)).is_some();
            if open && !prev_open {
                opens.push(t);
            }
            prev_open = open;
        }
        assert!(opens.len() >= 5, "expected ~6 windows, got {opens:?}");
        for pair in opens.windows(2) {
            let gap = pair[1] - pair[0];
            assert!(
                (9_500..=10_500).contains(&gap),
                "window spacing {gap} outside period±jitter"
            );
        }
        // Deterministic replay.
        let inj2 = FaultInjector::new(stalling_plan(), 5);
        for t in (0..60_000u64).step_by(97) {
            assert_eq!(
                inj.stall_end(SimTime::from_ns(t)),
                inj2.stall_end(SimTime::from_ns(t))
            );
        }
    }

    #[test]
    fn delay_pushes_to_window_end_and_counts() {
        let mut inj = FaultInjector::new(stalling_plan(), 5);
        // Find a stalled instant.
        let t = (1_000..20_000u64)
            .find(|&t| inj.stall_end(SimTime::from_ns(t)).is_some())
            .expect("a window must open");
        let now = SimTime::from_ns(t);
        let end = inj.stall_end(now).unwrap();
        assert_eq!(inj.delay(now), end);
        assert!(end > now);
        let st = inj.stats();
        assert_eq!(st.stalled_ops, 1);
        assert_eq!(st.stall_delay_ns, end - now);
        // Outside a window: no delay, no counting.
        let quiet = SimTime::from_ns(500);
        assert_eq!(inj.delay(quiet), quiet);
        assert_eq!(inj.stats().stalled_ops, 1);
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_stall_plans_are_rejected() {
        let plan = FaultPlan {
            stall: Some(StallPlan {
                first_onset: 0,
                period: 1_000,
                onset_jitter: 0,
                duration: 2_000,
                duration_jitter: 0,
            }),
            ..FaultPlan::none()
        };
        FaultInjector::new(plan, 0);
    }
}
