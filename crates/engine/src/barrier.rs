//! Simulation barriers for bulk-synchronous workloads.

use crate::sched::ThreadId;

/// Identifies a barrier within a [`BarrierSet`].
pub type BarrierId = usize;

#[derive(Debug)]
struct Barrier {
    parties: usize,
    waiting: Vec<ThreadId>,
    /// Completed arrival rounds, for tests and phase accounting.
    generation: u64,
}

/// A collection of reusable (cyclic) barriers.
///
/// A thread "arrives" at a barrier; the final arrival releases everyone and
/// resets the barrier for the next round, mirroring the per-iteration
/// barriers in PageRank-style workloads.
///
/// ```rust
/// use pagesim_engine::{BarrierSet, ThreadId};
/// let mut bs = BarrierSet::new();
/// let b = bs.create(2);
/// assert_eq!(bs.arrive(b, ThreadId(0)), None); // first waits
/// let released = bs.arrive(b, ThreadId(1)).unwrap();
/// assert_eq!(released, vec![ThreadId(0)]); // waiters to wake (arriver continues)
/// ```
#[derive(Debug, Default)]
pub struct BarrierSet {
    barriers: Vec<Barrier>,
}

impl BarrierSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn create(&mut self, parties: usize) -> BarrierId {
        assert!(parties > 0, "barrier needs at least one party");
        self.barriers.push(Barrier {
            parties,
            waiting: Vec::with_capacity(parties - 1),
            generation: 0,
        });
        self.barriers.len() - 1
    }

    /// Thread `tid` arrives at barrier `id`.
    ///
    /// Returns `None` if the thread must block, or `Some(waiters)` if this
    /// arrival completed the round: `waiters` are the previously blocked
    /// threads that should now be woken (the arriving thread itself simply
    /// continues running and is not included).
    pub fn arrive(&mut self, id: BarrierId, tid: ThreadId) -> Option<Vec<ThreadId>> {
        let b = &mut self.barriers[id];
        debug_assert!(
            !b.waiting.contains(&tid),
            "thread {tid:?} arrived twice at barrier {id}"
        );
        if b.waiting.len() + 1 == b.parties {
            b.generation += 1;
            Some(std::mem::take(&mut b.waiting))
        } else {
            b.waiting.push(tid);
            None
        }
    }

    /// Removes a party from barrier `id` permanently (a thread exited before
    /// its peers). If that completes the current round, the released waiters
    /// are returned.
    pub fn reduce_parties(&mut self, id: BarrierId) -> Option<Vec<ThreadId>> {
        let b = &mut self.barriers[id];
        assert!(b.parties > 1, "cannot reduce a 1-party barrier");
        b.parties -= 1;
        if b.waiting.len() == b.parties {
            b.generation += 1;
            Some(std::mem::take(&mut b.waiting))
        } else {
            None
        }
    }

    /// Removes `tid` from every barrier permanently (the thread was
    /// killed). It is withdrawn from any waiting list and stops counting
    /// as a party; rounds completed by its departure release their
    /// waiters, which are returned for waking.
    pub fn depart(&mut self, tid: ThreadId) -> Vec<ThreadId> {
        let mut released = Vec::new();
        for b in &mut self.barriers {
            if let Some(pos) = b.waiting.iter().position(|&w| w == tid) {
                b.waiting.remove(pos);
            }
            if b.parties > 1 {
                b.parties -= 1;
                if b.waiting.len() == b.parties {
                    b.generation += 1;
                    released.extend(std::mem::take(&mut b.waiting));
                }
            }
        }
        released
    }

    /// Completed rounds of barrier `id`.
    pub fn generation(&self, id: BarrierId) -> u64 {
        self.barriers[id].generation
    }

    /// Threads currently blocked on barrier `id`.
    pub fn waiting(&self, id: BarrierId) -> usize {
        self.barriers[id].waiting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_arrival_releases_all() {
        let mut bs = BarrierSet::new();
        let b = bs.create(3);
        assert!(bs.arrive(b, ThreadId(0)).is_none());
        assert!(bs.arrive(b, ThreadId(1)).is_none());
        assert_eq!(bs.waiting(b), 2);
        let released = bs.arrive(b, ThreadId(2)).unwrap();
        assert_eq!(released, vec![ThreadId(0), ThreadId(1)]);
        assert_eq!(bs.generation(b), 1);
        assert_eq!(bs.waiting(b), 0);
    }

    #[test]
    fn barrier_is_cyclic() {
        let mut bs = BarrierSet::new();
        let b = bs.create(2);
        for round in 1..=5 {
            assert!(bs.arrive(b, ThreadId(0)).is_none());
            assert!(bs.arrive(b, ThreadId(1)).is_some());
            assert_eq!(bs.generation(b), round);
        }
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let mut bs = BarrierSet::new();
        let b = bs.create(1);
        assert_eq!(bs.arrive(b, ThreadId(7)), Some(vec![]));
    }

    #[test]
    fn reduce_parties_can_release() {
        let mut bs = BarrierSet::new();
        let b = bs.create(3);
        bs.arrive(b, ThreadId(0));
        bs.arrive(b, ThreadId(1));
        // Third party exits instead of arriving.
        let released = bs.reduce_parties(b).unwrap();
        assert_eq!(released, vec![ThreadId(0), ThreadId(1)]);
        assert_eq!(bs.generation(b), 1);
    }

    #[test]
    fn depart_releases_stranded_waiters() {
        let mut bs = BarrierSet::new();
        let b = bs.create(3);
        bs.arrive(b, ThreadId(0));
        bs.arrive(b, ThreadId(1));
        // ThreadId(2) is killed before arriving: its departure completes
        // the round.
        assert_eq!(bs.depart(ThreadId(2)), vec![ThreadId(0), ThreadId(1)]);
        assert_eq!(bs.generation(b), 1);
        // The barrier now has 2 parties.
        assert!(bs.arrive(b, ThreadId(0)).is_none());
        assert!(bs.arrive(b, ThreadId(1)).is_some());
    }

    #[test]
    fn depart_while_waiting_removes_the_thread() {
        let mut bs = BarrierSet::new();
        let b = bs.create(3);
        bs.arrive(b, ThreadId(0));
        // ThreadId(0) dies while blocked at the barrier; nobody else is
        // waiting, so no round completes (2 parties remain, 0 waiting).
        assert_eq!(bs.depart(ThreadId(0)), vec![]);
        assert_eq!(bs.waiting(b), 0);
        assert!(bs.arrive(b, ThreadId(1)).is_none());
        assert!(bs.arrive(b, ThreadId(2)).is_some());
    }

    #[test]
    fn multiple_barriers_are_independent() {
        let mut bs = BarrierSet::new();
        let b1 = bs.create(2);
        let b2 = bs.create(2);
        assert!(bs.arrive(b1, ThreadId(0)).is_none());
        assert!(bs.arrive(b2, ThreadId(1)).is_none());
        assert!(bs.arrive(b1, ThreadId(2)).is_some());
        assert_eq!(bs.waiting(b2), 1);
    }
}
