//! The pending-event set.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event wins.
        // Ties break by insertion sequence (earlier insertion first) which
        // makes the simulation deterministic.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of future events.
///
/// Events scheduled for the same instant are delivered in insertion order,
/// which keeps simulations deterministic without requiring globally unique
/// timestamps.
///
/// ```rust
/// use pagesim_engine::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(5), 'x');
/// assert_eq!(q.peek_time(), Some(SimTime::from_ns(5)));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), 'x')));
/// assert!(q.is_empty());
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` for delivery at `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        q.push(SimTime::from_ns(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(SimTime::from_ns(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(42)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
