//! # pagesim-engine
//!
//! A small, deterministic discrete-event simulation (DES) engine used as the
//! substrate for the `pagesim` memory-management simulator.
//!
//! The engine deliberately knows nothing about paging: it provides the
//! reusable building blocks a system simulator needs and leaves the domain
//! logic (MMU, fault handling, replacement policies) to higher layers.
//!
//! ## Components
//!
//! * [`SimTime`] / [`Nanos`] — virtual time in nanoseconds.
//! * [`EventQueue`] — a stable-order pending-event set. Ties at equal
//!   timestamps are broken by insertion sequence so simulations are
//!   bit-for-bit reproducible.
//! * [`Scheduler`] — a preemptive round-robin CPU scheduler over a fixed
//!   number of hardware threads ("cores"), with priority for bound kernel
//!   threads.
//! * [`QueuedDevice`] — an analytic FIFO queue with `k` servers used to model
//!   I/O devices; computes completion times at submit time, so no internal
//!   events are needed.
//! * [`faults`] — deterministic fault injection: per-seed I/O error rolls,
//!   analytic device-stall windows, and memory-pressure step descriptions.
//! * [`BarrierSet`] — simulation barriers for modeling bulk-synchronous
//!   workloads.
//! * [`rng`] — deterministic seed-derivation helpers so every trial is a pure
//!   function of a master seed.
//!
//! ## Example
//!
//! ```rust
//! use pagesim_engine::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::from_ns(30), "c");
//! q.push(SimTime::from_ns(10), "a");
//! q.push(SimTime::from_ns(10), "b"); // same time: FIFO order preserved
//! let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
//! assert_eq!(order, vec!["a", "b", "c"]);
//! ```


mod barrier;
mod device;
mod event;
pub mod faults;
pub mod rng;
mod sched;
mod time;

pub use barrier::{BarrierId, BarrierSet};
pub use device::{DeviceStats, QueuedDevice};
pub use faults::{FaultInjector, FaultPlan, FaultStats, IoError, IoResult, PressureStep, StallPlan};
pub use event::EventQueue;
pub use sched::{CoreId, DispatchDecision, SchedStats, Scheduler, ThreadClass, ThreadId};
pub use time::{Nanos, SimTime, MICROSECOND, MILLISECOND, SECOND};
