//! Analytic queued-device model.
//!
//! I/O devices (the SSD swap path in particular) are modeled as a FIFO queue
//! in front of `k` identical servers. Because service times are known at
//! submit time, the completion time of every request can be computed
//! immediately — the caller schedules a single completion event and the
//! device needs no internal event handling.
//!
//! This is exactly an M/G/k queue evaluated deterministically, and it
//! reproduces the behaviour the paper leans on in §VI-A: under thrashing the
//! queue backs up, so demand faults wait behind write-backs and fault
//! latency explodes even though device service time is constant.

use std::collections::BinaryHeap;

use crate::time::{Nanos, SimTime};

/// Counters describing device load.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct DeviceStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Total time requests spent queued before service started.
    pub queue_wait: Nanos,
    /// Total time spent in service.
    pub service: Nanos,
    /// Maximum observed queue delay for a single request.
    pub max_queue_wait: Nanos,
}

/// A FIFO queue in front of `k` identical servers.
///
/// ```rust
/// use pagesim_engine::{QueuedDevice, SimTime};
/// // one server, 100ns service time
/// let mut d = QueuedDevice::new(1);
/// let t0 = SimTime::ZERO;
/// assert_eq!(d.submit(t0, 100).as_ns(), 100);
/// // second request queues behind the first
/// assert_eq!(d.submit(t0, 100).as_ns(), 200);
/// // after the backlog drains, requests start immediately
/// assert_eq!(d.submit(SimTime::from_ns(500), 100).as_ns(), 600);
/// ```
#[derive(Debug)]
pub struct QueuedDevice {
    // Min-heap (via Reverse ordering trick below) of times at which each
    // server becomes free. Length is always exactly `k`.
    free_at: BinaryHeap<std::cmp::Reverse<u64>>,
    stats: DeviceStats,
}

impl QueuedDevice {
    /// Creates a device with `servers` units of internal parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "device needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(std::cmp::Reverse(0));
        }
        QueuedDevice {
            free_at,
            stats: DeviceStats::default(),
        }
    }

    /// Submits a request at `now` with the given `service` time and returns
    /// its completion instant. FIFO: requests are served in submit order.
    pub fn submit(&mut self, now: SimTime, service: Nanos) -> SimTime {
        let std::cmp::Reverse(free) = self.free_at.pop().expect("k >= 1 servers");
        let start = free.max(now.as_ns());
        let done = start + service;
        self.free_at.push(std::cmp::Reverse(done));

        let wait = start - now.as_ns();
        self.stats.submitted += 1;
        self.stats.queue_wait += wait;
        self.stats.service += service;
        self.stats.max_queue_wait = self.stats.max_queue_wait.max(wait);
        SimTime::from_ns(done)
    }

    /// The instant at which the device fully drains, assuming no further
    /// submissions.
    pub fn drained_at(&self) -> SimTime {
        let latest = self
            .free_at
            .iter()
            .map(|std::cmp::Reverse(t)| *t)
            .max()
            .unwrap_or(0);
        SimTime::from_ns(latest)
    }

    /// Load counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_servers_overlap() {
        let mut d = QueuedDevice::new(2);
        let t0 = SimTime::ZERO;
        assert_eq!(d.submit(t0, 100).as_ns(), 100);
        assert_eq!(d.submit(t0, 100).as_ns(), 100); // second server
        assert_eq!(d.submit(t0, 100).as_ns(), 200); // queues
    }

    #[test]
    fn idle_device_serves_immediately() {
        let mut d = QueuedDevice::new(1);
        assert_eq!(d.submit(SimTime::from_ns(1000), 50).as_ns(), 1050);
        assert_eq!(d.stats().queue_wait, 0);
    }

    #[test]
    fn queue_wait_accumulates_under_burst() {
        let mut d = QueuedDevice::new(1);
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            d.submit(t0, 100);
        }
        // waits: 0, 100, 200, 300
        let st = d.stats();
        assert_eq!(st.queue_wait, 600);
        assert_eq!(st.max_queue_wait, 300);
        assert_eq!(st.submitted, 4);
        assert_eq!(st.service, 400);
        assert_eq!(d.drained_at().as_ns(), 400);
    }

    #[test]
    fn mixed_service_times_stay_fifo() {
        let mut d = QueuedDevice::new(1);
        let t0 = SimTime::ZERO;
        let a = d.submit(t0, 300);
        let b = d.submit(t0, 10);
        assert_eq!(a.as_ns(), 300);
        assert_eq!(b.as_ns(), 310); // short request stuck behind long one
    }

    #[test]
    fn drained_device_resets_wait() {
        let mut d = QueuedDevice::new(1);
        d.submit(SimTime::ZERO, 100);
        let done = d.submit(SimTime::from_ns(10_000), 100);
        assert_eq!(done.as_ns(), 10_100);
    }
}
