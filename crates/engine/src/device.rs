//! Analytic queued-device model.
//!
//! I/O devices (the SSD swap path in particular) are modeled as a FIFO queue
//! in front of `k` identical servers. Because service times are known at
//! submit time, the completion time of every request can be computed
//! immediately — the caller schedules a single completion event and the
//! device needs no internal event handling.
//!
//! This is exactly an M/G/k queue evaluated deterministically, and it
//! reproduces the behaviour the paper leans on in §VI-A: under thrashing the
//! queue backs up, so demand faults wait behind write-backs and fault
//! latency explodes even though device service time is constant.
//!
//! A device may carry a [`FaultInjector`]: submissions then roll for
//! injected errors and are pushed past stall windows before queueing. A
//! device without an injector is byte-identical to the fault-free model.

use crate::faults::{FaultInjector, FaultStats, IoResult};
use crate::time::{Nanos, SimTime};

/// Counters describing device load.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct DeviceStats {
    /// Requests submitted (including ones that failed injection).
    pub submitted: u64,
    /// Total time requests spent queued before service started (includes
    /// time spent waiting out stall windows).
    pub queue_wait: Nanos,
    /// Total time spent in service.
    pub service: Nanos,
    /// Maximum observed queue delay for a single request.
    pub max_queue_wait: Nanos,
    /// Requests rejected with an injected I/O error.
    pub errors: u64,
}

/// A FIFO queue in front of `k` identical servers.
///
/// ```rust
/// use pagesim_engine::{QueuedDevice, SimTime};
/// // one server, 100ns service time
/// let mut d = QueuedDevice::new(1);
/// let t0 = SimTime::ZERO;
/// assert_eq!(d.submit(t0, 100).unwrap().as_ns(), 100);
/// // second request queues behind the first
/// assert_eq!(d.submit(t0, 100).unwrap().as_ns(), 200);
/// // after the backlog drains, requests start immediately
/// assert_eq!(d.submit(SimTime::from_ns(500), 100).unwrap().as_ns(), 600);
/// ```
#[derive(Debug)]
pub struct QueuedDevice {
    // Times at which each server becomes free, sorted ascending. Length is
    // always exactly `k` (small: device parallelism), so a shift-insert
    // into a fixed ring beats a heap — no allocation after construction
    // and the common submit touches a handful of contiguous words.
    free_at: Vec<u64>,
    faults: Option<FaultInjector>,
    stats: DeviceStats,
}

impl QueuedDevice {
    /// Creates a device with `servers` units of internal parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "device needs at least one server");
        QueuedDevice {
            free_at: vec![0; servers],
            faults: None,
            stats: DeviceStats::default(),
        }
    }

    /// Attaches a fault injector: subsequent submissions roll for errors
    /// and respect stall windows.
    pub fn set_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Submits a request at `now` with the given `service` time and returns
    /// its completion instant, or the injected error that rejected it.
    /// FIFO: requests are served in submit order; a stall window pushes the
    /// effective submission (and thus service start) to the window's end.
    pub fn submit(&mut self, now: SimTime, service: Nanos) -> IoResult<SimTime> {
        let eff = match self.faults.as_mut() {
            Some(f) => {
                self.stats.submitted += 1;
                if let Err(e) = f.check(now) {
                    self.stats.errors += 1;
                    return Err(e);
                }
                f.delay(now)
            }
            None => {
                self.stats.submitted += 1;
                now
            }
        };
        // The earliest-free server takes the request; re-insert its new
        // free time keeping the array sorted (shift left, place).
        let start = self.free_at[0].max(eff.as_ns());
        let done = start + service;
        let pos = self.free_at[1..].partition_point(|&t| t <= done);
        self.free_at.copy_within(1..1 + pos, 0);
        self.free_at[pos] = done;

        let wait = start - now.as_ns();
        self.stats.queue_wait += wait;
        self.stats.service += service;
        self.stats.max_queue_wait = self.stats.max_queue_wait.max(wait);
        Ok(SimTime::from_ns(done))
    }

    /// The instant at which the device fully drains, assuming no further
    /// submissions.
    pub fn drained_at(&self) -> SimTime {
        SimTime::from_ns(*self.free_at.last().expect("k >= 1 servers"))
    }

    /// Load counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Fault-injection counters (zero if no injector is attached).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(FaultInjector::stats).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, IoError, StallPlan};

    #[test]
    fn parallel_servers_overlap() {
        let mut d = QueuedDevice::new(2);
        let t0 = SimTime::ZERO;
        assert_eq!(d.submit(t0, 100).unwrap().as_ns(), 100);
        assert_eq!(d.submit(t0, 100).unwrap().as_ns(), 100); // second server
        assert_eq!(d.submit(t0, 100).unwrap().as_ns(), 200); // queues
    }

    #[test]
    fn idle_device_serves_immediately() {
        let mut d = QueuedDevice::new(1);
        assert_eq!(d.submit(SimTime::from_ns(1000), 50).unwrap().as_ns(), 1050);
        assert_eq!(d.stats().queue_wait, 0);
    }

    #[test]
    fn queue_wait_accumulates_under_burst() {
        let mut d = QueuedDevice::new(1);
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            d.submit(t0, 100).unwrap();
        }
        // waits: 0, 100, 200, 300
        let st = d.stats();
        assert_eq!(st.queue_wait, 600);
        assert_eq!(st.max_queue_wait, 300);
        assert_eq!(st.submitted, 4);
        assert_eq!(st.service, 400);
        assert_eq!(d.drained_at().as_ns(), 400);
    }

    #[test]
    fn mixed_service_times_stay_fifo() {
        let mut d = QueuedDevice::new(1);
        let t0 = SimTime::ZERO;
        let a = d.submit(t0, 300).unwrap();
        let b = d.submit(t0, 10).unwrap();
        assert_eq!(a.as_ns(), 300);
        assert_eq!(b.as_ns(), 310); // short request stuck behind long one
    }

    #[test]
    fn ring_insert_keeps_servers_sorted() {
        // Mixed service times across 3 servers: the earliest-free server
        // must take each request, so completions interleave exactly as the
        // heap-based model produced them.
        let mut d = QueuedDevice::new(3);
        let t0 = SimTime::ZERO;
        assert_eq!(d.submit(t0, 300).unwrap().as_ns(), 300);
        assert_eq!(d.submit(t0, 100).unwrap().as_ns(), 100);
        assert_eq!(d.submit(t0, 200).unwrap().as_ns(), 200);
        // All busy: next goes to the server free at 100.
        assert_eq!(d.submit(t0, 50).unwrap().as_ns(), 150);
        // Then the one free at 150.
        assert_eq!(d.submit(t0, 10).unwrap().as_ns(), 160);
        assert_eq!(d.drained_at().as_ns(), 300);
    }

    #[test]
    fn drained_device_resets_wait() {
        let mut d = QueuedDevice::new(1);
        d.submit(SimTime::ZERO, 100).unwrap();
        let done = d.submit(SimTime::from_ns(10_000), 100).unwrap();
        assert_eq!(done.as_ns(), 10_100);
    }

    #[test]
    fn permanent_failure_rejects_everything_after_cliff() {
        let mut d = QueuedDevice::new(1);
        d.set_faults(FaultInjector::new(
            FaultPlan {
                fail_permanently_at: Some(1_000),
                ..FaultPlan::none()
            },
            3,
        ));
        assert!(d.submit(SimTime::from_ns(999), 100).is_ok());
        assert_eq!(
            d.submit(SimTime::from_ns(1_000), 100),
            Err(IoError::Permanent)
        );
        assert_eq!(d.stats().errors, 1);
        assert_eq!(d.stats().submitted, 2);
    }

    #[test]
    fn stalled_submission_starts_at_window_end() {
        // Deterministic window exactly [5_000, 7_000).
        let mut d = QueuedDevice::new(1);
        d.set_faults(FaultInjector::new(
            FaultPlan {
                stall: Some(StallPlan {
                    first_onset: 5_000,
                    period: 1_000_000,
                    onset_jitter: 0,
                    duration: 2_000,
                    duration_jitter: 0,
                }),
                ..FaultPlan::none()
            },
            0,
        ));
        // Before the window: unaffected.
        assert_eq!(d.submit(SimTime::from_ns(100), 50).unwrap().as_ns(), 150);
        // Inside the window: pushed to the end, wait charged from submit.
        let done = d.submit(SimTime::from_ns(5_500), 50).unwrap();
        assert_eq!(done.as_ns(), 7_050);
        assert_eq!(d.stats().max_queue_wait, 1_500);
        assert_eq!(d.fault_stats().stalled_ops, 1);
        assert_eq!(d.fault_stats().stall_delay_ns, 1_500);
        // After the window: unaffected again.
        assert_eq!(d.submit(SimTime::from_ns(8_000), 50).unwrap().as_ns(), 8_050);
    }

    #[test]
    fn faultless_injector_matches_plain_device() {
        let mut plain = QueuedDevice::new(2);
        let mut inj = QueuedDevice::new(2);
        inj.set_faults(FaultInjector::new(FaultPlan::none(), 1234));
        for i in 0..50u64 {
            let now = SimTime::from_ns(i * 37);
            let a = plain.submit(now, 100 + i).unwrap();
            let b = inj.submit(now, 100 + i).unwrap();
            assert_eq!(a, b, "noop injector drifted at op {i}");
        }
        assert_eq!(plain.stats(), inj.stats());
    }
}
