//! A preemptive round-robin CPU scheduler.
//!
//! The scheduler tracks which simulated thread occupies which hardware
//! thread ("core") and in what order runnable threads should be dispatched.
//! It does not advance time itself: the simulation driver asks it for
//! dispatch decisions, simulates the slice, and reports back how the slice
//! ended.

use std::collections::VecDeque;

use crate::time::{Nanos, SimTime};

/// Identifies a simulated hardware thread.
pub type CoreId = usize;

/// Identifies a simulated software thread.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ThreadId(pub u32);

/// Whether a thread belongs to the application or to the simulated kernel.
///
/// Kernel threads (the MG-LRU aging thread, the kswapd-analog reclaim
/// thread) are dispatched ahead of application threads when both are
/// runnable, approximating the wakeup-preemption boost such threads get in
/// practice. This is one of the modeled sources of CPU contention the paper
/// attributes runtime variance to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadClass {
    /// Ordinary application thread.
    App,
    /// Kernel housekeeping thread.
    Kernel,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    Running(CoreId),
    Blocked,
    Finished,
}

#[derive(Debug)]
struct Thread {
    class: ThreadClass,
    state: ThreadState,
    cpu_consumed: Nanos,
    switches: u64,
    /// A wakeup arrived while the thread was still running (its blocking
    /// slice-end had not been processed yet). Real kernels handle this
    /// race the same way: the sleep is cancelled at the blocking point.
    wake_pending: bool,
}

/// How a dispatched slice ended, reported back by the driver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DispatchDecision {
    /// The thread used its full budget and is still runnable.
    Preempted,
    /// The thread blocked (I/O, barrier, sleep) and will be woken later.
    Blocked,
    /// The thread exited.
    Finished,
}

/// Aggregate scheduler counters, used for reports and tests.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SchedStats {
    /// Total CPU time consumed by application threads.
    pub app_cpu: Nanos,
    /// Total CPU time consumed by kernel threads.
    pub kernel_cpu: Nanos,
    /// Number of dispatches.
    pub dispatches: u64,
}

/// Round-robin scheduler over a fixed set of cores.
///
/// ```rust
/// use pagesim_engine::{Scheduler, ThreadClass, DispatchDecision, SimTime};
/// let mut s = Scheduler::new(1, 1_000_000);
/// let a = s.spawn(ThreadClass::App);
/// let b = s.spawn(ThreadClass::App);
/// s.make_runnable(a);
/// s.make_runnable(b);
/// let (core, tid) = s.try_dispatch().unwrap();
/// assert_eq!(tid, a);
/// assert!(s.try_dispatch().is_none()); // single core busy
/// s.slice_done(core, tid, DispatchDecision::Preempted, 1_000_000);
/// assert_eq!(s.try_dispatch().unwrap().1, b); // round robin
/// ```
#[derive(Debug)]
pub struct Scheduler {
    threads: Vec<Thread>,
    idle_cores: Vec<CoreId>,
    app_queue: VecDeque<ThreadId>,
    kernel_queue: VecDeque<ThreadId>,
    quantum: Nanos,
    stats: SchedStats,
    live_threads: usize,
}

impl Scheduler {
    /// Creates a scheduler with `cores` hardware threads and the given
    /// time-slice `quantum` in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `quantum == 0`.
    pub fn new(cores: usize, quantum: Nanos) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(quantum > 0, "quantum must be positive");
        Scheduler {
            threads: Vec::new(),
            // Reverse so core 0 is handed out first: cosmetic but stable.
            idle_cores: (0..cores).rev().collect(),
            app_queue: VecDeque::new(),
            kernel_queue: VecDeque::new(),
            quantum,
            stats: SchedStats::default(),
            live_threads: 0,
        }
    }

    /// Registers a new thread in the `Blocked` state; call
    /// [`make_runnable`](Self::make_runnable) to start it.
    pub fn spawn(&mut self, class: ThreadClass) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(Thread {
            class,
            state: ThreadState::Blocked,
            cpu_consumed: 0,
            switches: 0,
            wake_pending: false,
        });
        self.live_threads += 1;
        id
    }

    /// The scheduling time slice.
    pub fn quantum(&self) -> Nanos {
        self.quantum
    }

    /// Number of threads that have not yet finished.
    pub fn live_threads(&self) -> usize {
        self.live_threads
    }

    /// Marks a blocked thread runnable and queues it for dispatch. Waking
    /// a runnable thread is a no-op; waking a *running* thread records a
    /// pending wake that cancels the thread's next block (the standard
    /// wake-vs-sleep race resolution).
    ///
    /// # Panics
    ///
    /// Panics if the thread has finished.
    pub fn make_runnable(&mut self, tid: ThreadId) {
        let t = &mut self.threads[tid.0 as usize];
        match t.state {
            ThreadState::Runnable => {}
            ThreadState::Blocked => {
                t.state = ThreadState::Runnable;
                t.wake_pending = false;
                match t.class {
                    ThreadClass::App => self.app_queue.push_back(tid),
                    ThreadClass::Kernel => self.kernel_queue.push_back(tid),
                }
            }
            ThreadState::Running(_) => t.wake_pending = true,
            ThreadState::Finished => panic!("cannot wake finished thread {tid:?}"),
        }
    }

    /// If an idle core and a runnable thread exist, assigns the thread to
    /// the core and returns both. Kernel threads are preferred.
    pub fn try_dispatch(&mut self) -> Option<(CoreId, ThreadId)> {
        if self.idle_cores.is_empty() {
            return None;
        }
        let tid = self
            .kernel_queue
            .pop_front()
            .or_else(|| self.app_queue.pop_front())?;
        let core = self.idle_cores.pop().expect("checked non-empty");
        let t = &mut self.threads[tid.0 as usize];
        debug_assert_eq!(t.state, ThreadState::Runnable);
        t.state = ThreadState::Running(core);
        t.switches += 1;
        self.stats.dispatches += 1;
        Some((core, tid))
    }

    /// Reports the end of a slice: frees the core, accounts `used`
    /// nanoseconds of CPU, and re-queues or retires the thread.
    pub fn slice_done(
        &mut self,
        core: CoreId,
        tid: ThreadId,
        decision: DispatchDecision,
        used: Nanos,
    ) {
        let t = &mut self.threads[tid.0 as usize];
        assert_eq!(
            t.state,
            ThreadState::Running(core),
            "slice_done for thread not running on core {core}"
        );
        t.cpu_consumed += used;
        match t.class {
            ThreadClass::App => self.stats.app_cpu += used,
            ThreadClass::Kernel => self.stats.kernel_cpu += used,
        }
        self.idle_cores.push(core);
        match decision {
            DispatchDecision::Preempted => {
                t.state = ThreadState::Runnable;
                t.wake_pending = false;
                match t.class {
                    ThreadClass::App => self.app_queue.push_back(tid),
                    ThreadClass::Kernel => self.kernel_queue.push_back(tid),
                }
            }
            DispatchDecision::Blocked => {
                if std::mem::take(&mut t.wake_pending) {
                    // A wake raced with this block: stay runnable.
                    t.state = ThreadState::Runnable;
                    match t.class {
                        ThreadClass::App => self.app_queue.push_back(tid),
                        ThreadClass::Kernel => self.kernel_queue.push_back(tid),
                    }
                } else {
                    t.state = ThreadState::Blocked;
                }
            }
            DispatchDecision::Finished => {
                t.state = ThreadState::Finished;
                self.live_threads -= 1;
            }
        }
    }

    /// CPU time consumed so far by `tid`.
    pub fn cpu_consumed(&self, tid: ThreadId) -> Nanos {
        self.threads[tid.0 as usize].cpu_consumed
    }

    /// Number of times `tid` was dispatched.
    pub fn switches(&self, tid: ThreadId) -> u64 {
        self.threads[tid.0 as usize].switches
    }

    /// Whether `tid` has finished.
    pub fn is_finished(&self, tid: ThreadId) -> bool {
        self.threads[tid.0 as usize].state == ThreadState::Finished
    }

    /// Whether any thread is waiting for a core.
    pub fn has_runnable(&self) -> bool {
        !self.app_queue.is_empty() || !self.kernel_queue.is_empty()
    }

    /// The thread currently running on `core`, if any. Used by telemetry
    /// to snapshot per-core occupancy at sample boundaries.
    pub fn running_on(&self, core: CoreId) -> Option<ThreadId> {
        self.threads
            .iter()
            .position(|t| t.state == ThreadState::Running(core))
            .map(|idx| ThreadId(idx as u32))
    }

    /// The class `tid` was spawned with.
    pub fn class_of(&self, tid: ThreadId) -> ThreadClass {
        self.threads[tid.0 as usize].class
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Utilization helper: fraction of `elapsed` core-time spent running
    /// threads, across all cores.
    pub fn utilization(&self, elapsed_since: SimTime, now: SimTime, cores: usize) -> f64 {
        let span = now.saturating_since(elapsed_since) as f64 * cores as f64;
        if span == 0.0 {
            return 0.0;
        }
        (self.stats.app_cpu + self.stats.kernel_cpu) as f64 / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched2() -> Scheduler {
        Scheduler::new(2, 1000)
    }

    #[test]
    fn dispatch_prefers_kernel_threads() {
        let mut s = sched2();
        let app = s.spawn(ThreadClass::App);
        let kt = s.spawn(ThreadClass::Kernel);
        s.make_runnable(app);
        s.make_runnable(kt);
        let (_, first) = s.try_dispatch().unwrap();
        assert_eq!(first, kt);
        let (_, second) = s.try_dispatch().unwrap();
        assert_eq!(second, app);
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = Scheduler::new(1, 1000);
        let a = s.spawn(ThreadClass::App);
        let b = s.spawn(ThreadClass::App);
        let c = s.spawn(ThreadClass::App);
        for t in [a, b, c] {
            s.make_runnable(t);
        }
        let mut order = Vec::new();
        for _ in 0..6 {
            let (core, tid) = s.try_dispatch().unwrap();
            order.push(tid);
            s.slice_done(core, tid, DispatchDecision::Preempted, 1000);
        }
        assert_eq!(order, vec![a, b, c, a, b, c]);
    }

    #[test]
    fn blocked_threads_leave_the_queue() {
        let mut s = Scheduler::new(1, 1000);
        let a = s.spawn(ThreadClass::App);
        let b = s.spawn(ThreadClass::App);
        s.make_runnable(a);
        s.make_runnable(b);
        let (core, tid) = s.try_dispatch().unwrap();
        s.slice_done(core, tid, DispatchDecision::Blocked, 500);
        let (core, tid2) = s.try_dispatch().unwrap();
        assert_eq!(tid2, b);
        s.slice_done(core, tid2, DispatchDecision::Preempted, 1000);
        // `a` is blocked: only b cycles.
        assert_eq!(s.try_dispatch().unwrap().1, b);
    }

    #[test]
    fn finished_threads_decrement_live_count() {
        let mut s = Scheduler::new(1, 1000);
        let a = s.spawn(ThreadClass::App);
        s.make_runnable(a);
        assert_eq!(s.live_threads(), 1);
        let (core, tid) = s.try_dispatch().unwrap();
        s.slice_done(core, tid, DispatchDecision::Finished, 123);
        assert_eq!(s.live_threads(), 0);
        assert!(s.is_finished(a));
        assert_eq!(s.cpu_consumed(a), 123);
    }

    #[test]
    fn wake_is_idempotent_for_runnable() {
        let mut s = sched2();
        let a = s.spawn(ThreadClass::App);
        s.make_runnable(a);
        s.make_runnable(a); // no-op, must not double-queue
        assert_eq!(s.try_dispatch().unwrap().1, a);
        assert!(s.try_dispatch().is_none());
    }

    #[test]
    fn waking_running_thread_cancels_next_block() {
        let mut s = sched2();
        let a = s.spawn(ThreadClass::App);
        s.make_runnable(a);
        let (core, tid) = s.try_dispatch().unwrap();
        // Wake races with the running slice...
        s.make_runnable(a);
        // ...so the block at slice end is cancelled.
        s.slice_done(core, tid, DispatchDecision::Blocked, 10);
        assert_eq!(s.try_dispatch().unwrap().1, a);
        // Without a pending wake, blocking sticks.
        s.slice_done(0, a, DispatchDecision::Blocked, 10);
        assert!(s.try_dispatch().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot wake finished")]
    fn waking_finished_thread_panics() {
        let mut s = sched2();
        let a = s.spawn(ThreadClass::App);
        s.make_runnable(a);
        let (core, tid) = s.try_dispatch().unwrap();
        s.slice_done(core, tid, DispatchDecision::Finished, 1);
        s.make_runnable(a);
    }

    #[test]
    fn cores_are_limited() {
        let mut s = sched2();
        let ts: Vec<_> = (0..4).map(|_| s.spawn(ThreadClass::App)).collect();
        for &t in &ts {
            s.make_runnable(t);
        }
        assert!(s.try_dispatch().is_some());
        assert!(s.try_dispatch().is_some());
        assert!(s.try_dispatch().is_none());
        assert!(s.has_runnable());
    }

    #[test]
    fn running_on_tracks_core_occupancy() {
        let mut s = sched2();
        let a = s.spawn(ThreadClass::App);
        let k = s.spawn(ThreadClass::Kernel);
        assert_eq!(s.running_on(0), None);
        assert_eq!(s.running_on(1), None);
        s.make_runnable(a);
        s.make_runnable(k);
        let (c1, t1) = s.try_dispatch().unwrap();
        let (c2, t2) = s.try_dispatch().unwrap();
        assert_eq!(s.running_on(c1), Some(t1));
        assert_eq!(s.running_on(c2), Some(t2));
        s.slice_done(c1, t1, DispatchDecision::Blocked, 10);
        assert_eq!(s.running_on(c1), None);
        assert_eq!(s.running_on(c2), Some(t2));
        assert_eq!(s.class_of(a), ThreadClass::App);
        assert_eq!(s.class_of(k), ThreadClass::Kernel);
    }

    #[test]
    fn stats_accumulate_by_class() {
        let mut s = sched2();
        let a = s.spawn(ThreadClass::App);
        let k = s.spawn(ThreadClass::Kernel);
        s.make_runnable(a);
        s.make_runnable(k);
        let (c1, t1) = s.try_dispatch().unwrap();
        let (c2, t2) = s.try_dispatch().unwrap();
        s.slice_done(c1, t1, DispatchDecision::Blocked, 10);
        s.slice_done(c2, t2, DispatchDecision::Blocked, 20);
        let st = s.stats();
        assert_eq!(st.kernel_cpu, 10);
        assert_eq!(st.app_cpu, 20);
        assert_eq!(st.dispatches, 2);
    }
}
