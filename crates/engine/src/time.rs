//! Virtual time.
//!
//! All simulation time is expressed in integer nanoseconds. Durations are
//! plain [`Nanos`] (`u64`); instants are the [`SimTime`] newtype so the two
//! cannot be confused in APIs.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in virtual nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// An instant on the virtual clock, counted in nanoseconds from simulation
/// start.
///
/// `SimTime` is ordered, copyable and cheap; arithmetic with plain [`Nanos`]
/// durations is provided via `+`/`-`.
///
/// ```rust
/// use pagesim_engine::{SimTime, MILLISECOND};
/// let t = SimTime::ZERO + 3 * MILLISECOND;
/// assert_eq!(t.as_ns(), 3_000_000);
/// assert_eq!(t - SimTime::ZERO, 3_000_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any reachable simulation instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the epoch.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SECOND as f64
    }

    /// Duration from `earlier` to `self`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> Nanos {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<Nanos> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Nanos) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<Nanos> for SimTime {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Nanos;
    fn sub(self, rhs: SimTime) -> Nanos {
        self.0
            .checked_sub(rhs.0)
            .expect("SimTime subtraction underflow")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= SECOND {
            write!(f, "{:.3}s", ns as f64 / SECOND as f64)
        } else if ns >= MILLISECOND {
            write!(f, "{:.3}ms", ns as f64 / MILLISECOND as f64)
        } else if ns >= MICROSECOND {
            write!(f, "{:.3}us", ns as f64 / MICROSECOND as f64)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_ns(5);
        assert_eq!((t + 10).as_ns(), 15);
        assert_eq!((t + 10) - t, 10);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(9);
        assert_eq!(b.saturating_since(a), 4);
        assert_eq!(a.saturating_since(b), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn strict_sub_panics_on_underflow() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_ns(1_500).to_string(), "1.500us");
        assert_eq!(SimTime::from_ns(2_000_000).to_string(), "2.000ms");
        assert_eq!(SimTime::from_ns(3 * SECOND).to_string(), "3.000s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert_eq!(SimTime::ZERO, SimTime::default());
        assert!(SimTime::MAX > SimTime::from_ns(u64::MAX - 1));
    }
}
