//! Deterministic seed derivation.
//!
//! Every simulation trial must be a pure function of `(config, master_seed)`.
//! These helpers derive independent child seeds from a master seed using
//! SplitMix64, so adding a consumer never perturbs the streams of existing
//! consumers (unlike drawing seeds sequentially from one RNG).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One round of SplitMix64: a high-quality 64-bit mixing function.
///
/// ```rust
/// use pagesim_engine::rng::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a master seed and a stream label.
///
/// The label keeps unrelated consumers (e.g. "graph", "scheduler-noise",
/// "zipfian") statistically independent even for adjacent trial seeds.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(master ^ splitmix64(h))
}

/// Seed for trial `index` of a sweep rooted at `master`.
pub fn trial_seed(master: u64, index: u32) -> u64 {
    splitmix64(master.wrapping_add(0x5851_F42D_4C95_7F2Du64.wrapping_mul(index as u64 + 1)))
}

/// Builds a fast deterministic RNG from a derived seed.
pub fn small_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn derive_seed_depends_on_label() {
        let a = derive_seed(7, "graph");
        let b = derive_seed(7, "zipf");
        assert_ne!(a, b);
        assert_eq!(a, derive_seed(7, "graph"));
    }

    #[test]
    fn trial_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(trial_seed(99, i)), "collision at trial {i}");
        }
    }

    #[test]
    fn small_rng_is_reproducible() {
        let mut r1 = small_rng(123);
        let mut r2 = small_rng(123);
        for _ in 0..16 {
            let a: u64 = r1.random();
            let b: u64 = r2.random();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // flipping one input bit should flip roughly half the output bits
        let x = splitmix64(0x1234_5678);
        let y = splitmix64(0x1234_5679);
        let flipped = (x ^ y).count_ones();
        assert!((16..=48).contains(&flipped), "weak mixing: {flipped} bits");
    }
}
