// Fixture: L5-clean. Hot-path errors propagate as typed values.
enum SimError {
    Deadlock,
}

fn fault(slot: Option<u64>) -> Result<u64, SimError> {
    slot.ok_or(SimError::Deadlock)
}
