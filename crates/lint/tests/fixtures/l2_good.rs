// Fixture: L2-clean. Time is simulated, entropy is seeded.
struct SimTime(u64);

fn stamp(now: SimTime, seed: u64) -> u64 {
    // A seeded generator is fine; only ambient entropy is banned.
    now.0 ^ seed.wrapping_mul(0x9E3779B97F4A7C15)
}
