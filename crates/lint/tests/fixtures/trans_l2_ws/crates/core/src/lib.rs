//! Fixture kernel crate: the fault path calls into the util crate.

use fixture_util::helper_a;

pub struct Kernel {
    now: u64,
}

impl Kernel {
    pub fn fault(&mut self, vpn: u64) -> u64 {
        self.now += helper_a() + vpn;
        self.now
    }
}
