//! Fixture util crate. `util` is not a sim crate, so the per-file rule
//! set never applies L2 here — only the call-graph pass can see that
//! `Kernel::fault` reaches the `Instant::now()` two helpers down.

pub fn helper_a() -> u64 {
    helper_b()
}

fn helper_b() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}
