// Fixture: L5 hot-unwrap violations on a kernel hot path.
fn fault(slot: Option<u64>, frame: Result<u32, ()>) -> u64 {
    let s = slot.unwrap();
    let f = frame.expect("no frame");
    s + f as u64
}
