// Fixture: L3-clean. Work is expressed as data; the sweep executor owns
// all parallelism.
fn fan_out(specs: &[u64]) -> Vec<u64> {
    specs.iter().map(|s| s + 1).collect()
}
