// Fixture: L1-clean. Ordered containers may be iterated; hash containers
// may be used for membership only.
use std::collections::{BTreeMap, HashMap};

struct Kernel {
    slot_ready: BTreeMap<u64, u64>,
    lookup: HashMap<u64, u64>,
}

impl Kernel {
    fn drain_ready(&mut self) {
        for (slot, at) in self.slot_ready.iter() {
            let _ = (slot, at);
        }
    }

    fn probe(&mut self, k: u64) -> Option<u64> {
        self.lookup.insert(k, 1);
        self.lookup.get(&k).copied()
    }
}
