// Fixture: L1 violation waived by an allow annotation with a reason.
use std::collections::HashMap;

struct Stats {
    counts: HashMap<u64, u64>,
}

impl Stats {
    fn total(&self) -> u64 {
        // lint: allow(hash-iter) summation is order-independent
        self.counts.values().sum()
    }
}
