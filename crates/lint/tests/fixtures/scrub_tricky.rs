//! Fixture: scrubber stress file. Every banned token below is inside a
//! string or comment and must NOT fire; the single real violation at the
//! end must fire at its exact line, proving the scrubber stayed aligned.

pub fn strings() -> Vec<String> {
    let plain = "thread_rng and HashMap.values() in a plain string";
    let raw = r"SystemTime in a raw string";
    let fenced = r#"say "thread_rng" loud"#;
    let double_fenced = r##"outer r#"OsRng"# inner"##;
    let byte = b"RandomState as bytes";
    let byte_raw = br#"Instant::now() as raw bytes"#;
    let c_str = c"thread_rng as a C string";
    let c_raw = cr#"say "thread_rng" loud in C"#;
    let escaped = "a \"quoted\" thread_rng escape";
    vec![
        plain.into(),
        raw.into(),
        fenced.into(),
        double_fenced.into(),
        String::from_utf8_lossy(byte).into_owned(),
        String::from_utf8_lossy(byte_raw).into_owned(),
        format!("{c_str:?}{c_raw:?}"),
        escaped.into(),
    ]
}

/* Block comments nest in Rust: /* HashSet.iter() inside */ still inside,
   thread_rng still inside. */
pub fn comments() {
    // line comment: SystemTime::now()
    /* simple block: OsRng */
}

pub fn not_raw_strings() {
    let br_ident = 1u32; // identifiers starting with b/r/c are not prefixes
    let crx = br_ident + 1;
    let r = crx; // single letters too
    let _ = r;
}

pub fn real_violation() -> std::time::Instant {
    std::time::Instant::now()
}
