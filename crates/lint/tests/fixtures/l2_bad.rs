// Fixture: L2 wall-clock / ambient entropy violations.
use std::time::Instant;

fn stamp() -> u128 {
    let t0 = Instant::now();
    let wall = std::time::SystemTime::now();
    let _ = wall;
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    t0.elapsed().as_nanos()
}
