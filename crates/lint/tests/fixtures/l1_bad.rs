// Fixture: L1 hash-iter violations. Never compiled; scanned by the
// analyzer integration test.
use std::collections::{HashMap, HashSet};

struct Kernel {
    slot_ready: HashMap<u64, u64>,
    pinned: HashSet<u32>,
}

impl Kernel {
    fn drain_ready(&mut self) {
        for (slot, at) in self.slot_ready.iter() {
            let _ = (slot, at);
        }
    }

    fn sweep(&mut self) {
        for frame in &self.pinned {
            let _ = frame;
        }
    }
}
