//! L6 fixture: ad-hoc panic swallowing outside the sanctioned isolation
//! module — both the import and the qualified call must be flagged.

use std::panic::catch_unwind;

pub fn swallow(f: impl Fn() + std::panic::UnwindSafe + Copy) {
    let _ = catch_unwind(f);
    let _ = std::panic::catch_unwind(f);
}
