//! Fixture: unsafe blocks with and without SAFETY justifications.

pub fn documented(ptr: *const u64) -> u64 {
    // SAFETY: caller guarantees ptr is non-null and aligned; checked by
    // the allocator invariant one frame up.
    unsafe { *ptr }
}

pub fn same_line(ptr: *const u64) -> u64 {
    unsafe { *ptr } // SAFETY: ptr comes from a live Box we own
}

pub fn undocumented(ptr: *const u64) -> u64 {
    unsafe { *ptr }
}

pub fn wrong_comment(ptr: *const u64) -> u64 {
    // this dereference is probably fine
    unsafe { *ptr }
}
