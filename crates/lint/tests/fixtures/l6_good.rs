//! L6 fixture: panics propagate; recovery is delegated to the sweep
//! executor's isolation module instead of caught ad hoc. Mentioning
//! catch_unwind in comments or strings must not trip the rule.

pub fn run(f: impl Fn() -> u32) -> u32 {
    // A failed invariant here should unwind to the isolation layer, not
    // be swallowed locally ("catch_unwind" belongs there alone).
    let banner = "no catch_unwind here";
    let _ = banner;
    f()
}
