// Fixture: L3 thread-spawn violation outside the sweep executor.
fn fan_out() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}
