// Fixture member source; intentionally empty of violations.
