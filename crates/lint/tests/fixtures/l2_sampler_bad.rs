// Fixture: a trace sampler keyed off the wall clock instead of sim time.
use std::time::Instant;

fn sample_tick(series: &mut Vec<(u128, u64)>, faults: u64) {
    let now = Instant::now();
    series.push((now.elapsed().as_nanos(), faults));
}
