//! Fixture: the H-series rules fire only inside the hot-path cone.

pub struct Name(pub u64);

pub struct Kernel {
    log: Vec<u64>,
    name: Name,
}

impl Kernel {
    pub fn fault(&mut self, vpn: u64) {
        self.log.push(vpn);
        let label = self.name.clone();
        helper(&label);
        let r = ratio(vpn) + self.pick();
        drop(r);
    }

    fn pick(&self) -> u64 {
        let f: &dyn Fn() -> u64 = &|| 7;
        f()
    }

    pub fn cold_setup(&mut self) {
        self.log.push(0);
        let _ = self.name.clone();
        let v = vec![1u64, 2];
        drop(v);
    }
}

fn helper(n: &Name) {
    let v = vec![n.0];
    drop(v);
}

fn ratio(x: u64) -> u64 {
    let f = x as f64 / 2.0;
    f as u64
}
