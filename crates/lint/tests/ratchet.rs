//! Baseline ratchet behavior through the CLI: baselined findings warn
//! (exit 0), new findings fail, stale entries fail, counts only go down,
//! and `--write-baseline` round-trips.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pagesim-lint"))
        .args(args)
        .output()
        .expect("spawn pagesim-lint");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_file(tag: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "pagesim-lint-{tag}-{}.toml",
        std::process::id()
    ));
    std::fs::write(&path, contents).expect("write temp baseline");
    path
}

/// A baseline covering every finding in the hot_ws fixture.
const FULL_BASELINE: &str = r#"schema = 1

[[entry]]
rule = "H1"
file = "crates/core/src/lib.rs"
symbol = "Kernel::fault"
count = 1
reason = "event log push; bounded by config, replacement tracked"

[[entry]]
rule = "H2"
file = "crates/core/src/lib.rs"
symbol = "Kernel::fault"
reason = "label clone pending ownership restructure"

[[entry]]
rule = "H3"
file = "crates/core/src/lib.rs"
symbol = "Kernel::pick"
reason = "closure table lookup; devirtualization planned"

[[entry]]
rule = "H1"
file = "crates/core/src/lib.rs"
symbol = "helper"
reason = "scratch vec in helper; to be hoisted"

[[entry]]
rule = "H4"
file = "crates/core/src/lib.rs"
symbol = "ratio"
reason = "ratio uses f64 until fixed-point lands"
"#;

#[test]
fn no_baseline_fails_with_errors() {
    let root = fixture("hot_ws");
    let (code, stdout, stderr) =
        run_cli(&["--workspace", "--root", root.to_str().expect("utf8"), "--no-baseline"]);
    assert_eq!(code, 1, "stderr: {stderr}");
    assert!(stdout.contains("H1[hot-alloc]"), "stdout: {stdout}");
    assert!(!stdout.contains("warning:"), "stdout: {stdout}");
}

#[test]
fn full_baseline_demotes_everything_to_warnings_and_passes() {
    let root = fixture("hot_ws");
    let base = temp_file("full", FULL_BASELINE);
    let (code, stdout, stderr) = run_cli(&[
        "--workspace",
        "--root",
        root.to_str().expect("utf8"),
        "--baseline",
        base.to_str().expect("utf8"),
    ]);
    std::fs::remove_file(&base).ok();
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    // All five findings still visible, demoted to warnings with chains.
    assert_eq!(stdout.matches("warning: ").count(), 5, "stdout: {stdout}");
    assert!(stdout.contains("[chain: Kernel::fault]"), "stdout: {stdout}");
}

#[test]
fn partial_baseline_fails_on_the_uncovered_finding() {
    let root = fixture("hot_ws");
    // Drop the H4 entry: ratio's float becomes a hard error.
    let partial: String = FULL_BASELINE
        .split("\n[[entry]]")
        .filter(|block| !block.contains("H4"))
        .collect::<Vec<_>>()
        .join("\n[[entry]]");
    let base = temp_file("partial", &partial);
    let (code, stdout, _) = run_cli(&[
        "--workspace",
        "--root",
        root.to_str().expect("utf8"),
        "--baseline",
        base.to_str().expect("utf8"),
    ]);
    std::fs::remove_file(&base).ok();
    assert_eq!(code, 1);
    assert!(stdout.contains("H4[hot-float]"), "stdout: {stdout}");
    assert!(!stdout.contains("warning: H4"), "stdout: {stdout}");
    assert_eq!(stdout.matches("warning: ").count(), 4, "stdout: {stdout}");
}

#[test]
fn stale_entry_fails_until_removed() {
    let root = fixture("hot_ws");
    let stale = format!(
        "{FULL_BASELINE}\n[[entry]]\nrule = \"H1\"\nfile = \"crates/core/src/lib.rs\"\n\
         symbol = \"Kernel::gone\"\nreason = \"this function was deleted\"\n"
    );
    let base = temp_file("stale", &stale);
    let (code, stdout, _) = run_cli(&[
        "--workspace",
        "--root",
        root.to_str().expect("utf8"),
        "--baseline",
        base.to_str().expect("utf8"),
    ]);
    std::fs::remove_file(&base).ok();
    assert_eq!(code, 1);
    assert!(stdout.contains("no longer fires"), "stdout: {stdout}");
}

#[test]
fn count_ratchet_fails_in_both_directions() {
    let root = fixture("hot_ws");
    // Pin Kernel::fault's H1 at 2 when only 1 fires: stale (ratchet down).
    let over = FULL_BASELINE.replace("count = 1", "count = 2");
    let base = temp_file("over", &over);
    let (code, stdout, _) = run_cli(&[
        "--workspace",
        "--root",
        root.to_str().expect("utf8"),
        "--baseline",
        base.to_str().expect("utf8"),
    ]);
    std::fs::remove_file(&base).ok();
    assert_eq!(code, 1);
    assert!(stdout.contains("ratchet the count down"), "stdout: {stdout}");
}

#[test]
fn bad_baseline_is_a_usage_error() {
    let root = fixture("hot_ws");
    let base = temp_file("bad", "schema = 1\n[[entry]]\nrule = \"H1\"\nfile = \"x.rs\"\n");
    let (code, _, stderr) = run_cli(&[
        "--workspace",
        "--root",
        root.to_str().expect("utf8"),
        "--baseline",
        base.to_str().expect("utf8"),
    ]);
    std::fs::remove_file(&base).ok();
    assert_eq!(code, 2, "missing reason must be rejected, stderr: {stderr}");
    assert!(stderr.contains("reason"), "stderr: {stderr}");
}

#[test]
fn write_baseline_round_trips_to_a_passing_run() {
    let root = fixture("hot_ws");
    let base = std::env::temp_dir().join(format!(
        "pagesim-lint-generated-{}.toml",
        std::process::id()
    ));
    let (code, _, stderr) = run_cli(&[
        "--workspace",
        "--root",
        root.to_str().expect("utf8"),
        "--baseline",
        base.to_str().expect("utf8"),
        "--write-baseline",
    ]);
    assert_eq!(code, 0, "stderr: {stderr}");
    let text = std::fs::read_to_string(&base).expect("baseline written");
    assert!(text.contains("schema = 1"));
    assert!(text.contains("symbol = \"Kernel::fault\""));
    assert!(text.contains("TODO: justify or fix"), "placeholder reasons");
    // The generated baseline screens the same findings to warnings.
    let (code, stdout, stderr) = run_cli(&[
        "--workspace",
        "--root",
        root.to_str().expect("utf8"),
        "--baseline",
        base.to_str().expect("utf8"),
    ]);
    std::fs::remove_file(&base).ok();
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert_eq!(stdout.matches("warning: ").count(), 5, "stdout: {stdout}");
}
