//! SARIF export validation: the document must parse as JSON and satisfy
//! the checked-in structural snippet of the SARIF 2.1.0 schema (the
//! offline build cannot fetch the real schema, so the contract lives in
//! `tests/fixtures/sarif-2.1.0-snippet.json`).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser (no serde in the offline build).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at {}", p.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end".to_owned()),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || b"+-.eE".contains(c))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        Some(&c) => out.push(c as char),
                        None => return Err("unterminated escape".to_owned()),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through byte-by-byte; fine
                    // for structural validation.
                    out.push(c as char);
                    self.i += 1;
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("bad array at {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            out.insert(key, self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("bad object at {}", self.i)),
            }
        }
    }
}

impl Json {
    /// Navigates a dotted path: object keys and numeric array indexes.
    fn at(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = match cur {
                Json::Obj(m) => m.get(seg)?,
                Json::Arr(v) => v.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn strings_at(&self, path: &str) -> Vec<String> {
        self.at(path)
            .and_then(Json::as_arr)
            .map(|v| v.iter().filter_map(|s| s.as_str().map(str::to_owned)).collect())
            .unwrap_or_default()
    }
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn schema_snippet() -> Json {
    let text = std::fs::read_to_string(fixture("sarif-2.1.0-snippet.json"))
        .expect("schema snippet readable");
    Parser::parse(&text).expect("schema snippet is valid JSON")
}

fn export_sarif(root: &str) -> Json {
    let out = Command::new(env!("CARGO_BIN_EXE_pagesim-lint"))
        .args([
            "--workspace",
            "--root",
            fixture(root).to_str().expect("utf8"),
            "--no-baseline",
            "--format",
            "sarif",
        ])
        .output()
        .expect("spawn pagesim-lint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    Parser::parse(&stdout).unwrap_or_else(|e| panic!("SARIF must be valid JSON ({e}): {stdout}"))
}

#[test]
fn export_satisfies_the_checked_in_schema_snippet() {
    let schema = schema_snippet();
    let doc = export_sarif("hot_ws");

    let version = schema.at("requiredVersion").and_then(Json::as_str);
    assert_eq!(doc.at("version").and_then(Json::as_str), version);

    for path in schema.strings_at("requiredPaths") {
        assert!(doc.at(&path).is_some(), "missing required path `{path}`");
    }
    assert_eq!(
        doc.at("runs.0.tool.driver.name").and_then(Json::as_str),
        Some("pagesim-lint")
    );

    let results = doc
        .at("runs.0.results")
        .and_then(Json::as_arr)
        .expect("results array");
    assert_eq!(results.len(), 5, "one result per hot_ws finding");
    for r in results {
        for key in schema.strings_at("resultRequiredKeys") {
            assert!(r.at(&key).is_some(), "result missing `{key}`: {r:?}");
        }
        assert_eq!(r.at("level").and_then(Json::as_str), Some("error"));
        for path in schema.strings_at("locationRequiredPaths") {
            assert!(
                r.at(&format!("locations.0.{path}")).is_some(),
                "location missing `{path}`: {r:?}"
            );
        }
    }

    let rules = doc
        .at("runs.0.tool.driver.rules")
        .and_then(Json::as_arr)
        .expect("rules catalog");
    assert_eq!(rules.len(), 11, "full L1-L6/H1-H4/U1 catalog");
    for rule in rules {
        for key in schema.strings_at("ruleRequiredKeys") {
            assert!(rule.at(&key).is_some(), "rule missing `{key}`: {rule:?}");
        }
    }
}

#[test]
fn chained_findings_carry_code_flows() {
    let doc = export_sarif("trans_l2_ws");
    let results = doc
        .at("runs.0.results")
        .and_then(Json::as_arr)
        .expect("results array");
    assert_eq!(results.len(), 1);
    let r = &results[0];
    assert_eq!(r.at("ruleId").and_then(Json::as_str), Some("L2"));
    let steps = r
        .at("codeFlows.0.threadFlows.0.locations")
        .and_then(Json::as_arr)
        .expect("thread flow locations");
    let symbols: Vec<&str> = steps
        .iter()
        .filter_map(|s| s.at("location.message.text").and_then(Json::as_str))
        .collect();
    assert_eq!(symbols, vec!["Kernel::fault", "helper_a", "helper_b"]);
    // The human-readable message repeats the chain for grep-ability.
    let msg = r
        .at("message.text")
        .and_then(Json::as_str)
        .expect("message text");
    assert!(msg.contains("Kernel::fault -> helper_a -> helper_b"), "{msg}");
}

#[test]
fn baselined_findings_export_as_warnings() {
    let base = std::env::temp_dir().join(format!(
        "pagesim-lint-sarif-base-{}.toml",
        std::process::id()
    ));
    std::fs::write(
        &base,
        "schema = 1\n\n[[entry]]\nrule = \"L2\"\nfile = \"crates/util/src/lib.rs\"\n\
         symbol = \"helper_b\"\nreason = \"host timing shim pending SimTime port\"\n",
    )
    .expect("write temp baseline");
    let out = Command::new(env!("CARGO_BIN_EXE_pagesim-lint"))
        .args([
            "--workspace",
            "--root",
            fixture("trans_l2_ws").to_str().expect("utf8"),
            "--baseline",
            base.to_str().expect("utf8"),
            "--format",
            "sarif",
        ])
        .output()
        .expect("spawn pagesim-lint");
    std::fs::remove_file(&base).ok();
    assert_eq!(out.status.code(), Some(0), "baselined run passes");
    let doc = Parser::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("SARIF is valid JSON");
    assert_eq!(
        doc.at("runs.0.results.0.level").and_then(Json::as_str),
        Some("warning")
    );
}
