//! Call-graph pass coverage: transitive rule propagation with exact
//! chains, H-series cone scoping, and U1 — all against seeded fixture
//! workspaces.

use std::path::{Path, PathBuf};

use pagesim_lint::{lint_source, lint_workspace, rules_for, Finding, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn chain_symbols(f: &Finding) -> Vec<&str> {
    f.chain.iter().map(|h| h.symbol.as_str()).collect()
}

/// The acceptance demo: `Kernel::fault` (sim crate) calls `helper_a`
/// (util crate), which calls `helper_b`, which reads `Instant::now()`.
/// The per-file scanner never applies L2 to the util crate, so it
/// provably misses the violation; the graph pass reports it with the
/// full two-deep chain.
#[test]
fn transitive_l2_crosses_crates_the_per_file_scan_cannot() {
    // Old behavior: per-file rules for a non-sim crate are L2-blind.
    let util_src = std::fs::read_to_string(
        fixture("trans_l2_ws").join("crates/util/src/lib.rs"),
    )
    .expect("fixture readable");
    let rules = rules_for("util", "crates/util/src/lib.rs");
    assert!(!rules.wall_clock, "util is not a sim crate");
    assert_eq!(
        lint_source(rules, "crates/util/src/lib.rs", &util_src),
        vec![],
        "the per-file scanner misses the transitive violation"
    );

    // New behavior: the workspace graph pass reports it with the chain.
    let report = lint_workspace(&fixture("trans_l2_ws")).expect("fixture workspace");
    assert_eq!(report.findings.len(), 1, "findings: {:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::WallClock);
    assert_eq!(f.file, "crates/util/src/lib.rs");
    assert_eq!(f.line, 10);
    assert_eq!(f.symbol, "helper_b");
    assert_eq!(chain_symbols(f), vec!["Kernel::fault", "helper_a", "helper_b"]);
    // Chain hops carry file/line anchors for every hop.
    assert_eq!(f.chain[0].file, "crates/core/src/lib.rs");
    assert!(f.chain.iter().all(|h| h.line > 0));
    // And the rendering shows the chain for humans and CI greps.
    assert!(
        f.to_string()
            .ends_with("[chain: Kernel::fault -> helper_a -> helper_b]"),
        "display: {f}"
    );
}

#[test]
fn h_series_fires_inside_the_cone_only() {
    let report = lint_workspace(&fixture("hot_ws")).expect("fixture workspace");
    let got: Vec<(Rule, u32, &str)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.line, f.symbol.as_str()))
        .collect();
    assert_eq!(
        got,
        vec![
            (Rule::HotAlloc, 12, "Kernel::fault"),
            (Rule::HotClone, 13, "Kernel::fault"),
            (Rule::HotDyn, 20, "Kernel::pick"),
            (Rule::HotAlloc, 33, "helper"),
            (Rule::HotFloat, 38, "ratio"),
        ]
    );
    // `cold_setup` (lines 24-29) repeats the push/clone/vec! constructs
    // outside the cone: none may appear above.
    assert!(report.findings.iter().all(|f| !(24..=29).contains(&f.line)));
    // Chains are anchored at the root.
    assert!(report
        .findings
        .iter()
        .all(|f| f.chain.first().map(|h| h.symbol.as_str()) == Some("Kernel::fault")));
}

#[test]
fn u1_requires_safety_comments_on_unsafe_blocks() {
    let report = lint_workspace(&fixture("u1_ws")).expect("fixture workspace");
    let got: Vec<(Rule, u32)> = report.findings.iter().map(|f| (f.rule, f.line)).collect();
    // Lines 6 (comment-run above) and 10 (same-line) are justified;
    // 14 (no comment) and 19 (comment without SAFETY:) are not.
    assert_eq!(
        got,
        vec![(Rule::SafetyComment, 14), (Rule::SafetyComment, 19)]
    );
}

/// Scrubber regression fixture: banned tokens inside every string-literal
/// flavor (raw, fenced, byte, C-string, raw C-string) and nested block
/// comments must not fire, while the real violation after them still
/// fires at its exact line — proving the scrubber never lost alignment.
#[test]
fn scrubber_survives_raw_strings_c_strings_and_nested_comments() {
    let src = std::fs::read_to_string(fixture("scrub_tricky.rs")).expect("fixture readable");
    let rules = rules_for("core", "crates/core/src/tricky.rs");
    let got: Vec<(Rule, u32)> = lint_source(rules, "scrub_tricky.rs", &src)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect();
    assert_eq!(got, vec![(Rule::WallClock, 41), (Rule::WallClock, 42)]);
}

/// The graph pass adds no findings (and no noise) to a workspace with no
/// hot roots: the legacy L4 fixture keeps its exact legacy behavior.
#[test]
fn rootless_workspace_gets_no_graph_findings() {
    let report = lint_workspace(&fixture("l4_good_ws")).expect("fixture workspace");
    assert_eq!(report.findings, vec![]);
    assert_eq!(report.reachable, 0);
}
