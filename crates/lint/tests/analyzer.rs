//! Analyzer coverage: every rule L1–L6 demonstrated against known-bad and
//! known-good fixtures, asserting exact rule ids, file/line spans, and CLI
//! exit codes.

use std::path::{Path, PathBuf};
use std::process::Command;

use pagesim_lint::{lint_source, lint_workspace, rules_for, Rule, RuleSet};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str, rules: RuleSet) -> Vec<(Rule, u32)> {
    let source = std::fs::read_to_string(fixture(name)).expect("fixture readable");
    lint_source(rules, name, &source)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

const SIM: RuleSet = RuleSet {
    hash_iter: true,
    wall_clock: true,
    thread_spawn: true,
    hot_unwrap: false,
    catch_unwind: true,
};

const HOT: RuleSet = RuleSet {
    hash_iter: true,
    wall_clock: true,
    thread_spawn: true,
    hot_unwrap: true,
    catch_unwind: true,
};

#[test]
fn l1_flags_hash_iteration_with_spans() {
    assert_eq!(
        lint_fixture("l1_bad.rs", SIM),
        vec![(Rule::HashIter, 12), (Rule::HashIter, 18)]
    );
}

#[test]
fn l1_accepts_ordered_iteration_and_hash_membership() {
    assert_eq!(lint_fixture("l1_good.rs", SIM), vec![]);
}

#[test]
fn l1_allow_annotation_with_reason_suppresses() {
    assert_eq!(lint_fixture("l1_allowed.rs", SIM), vec![]);
}

#[test]
fn l2_flags_wall_clock_and_ambient_entropy() {
    assert_eq!(
        lint_fixture("l2_bad.rs", SIM),
        vec![
            (Rule::WallClock, 2),
            (Rule::WallClock, 5),
            (Rule::WallClock, 6),
            (Rule::WallClock, 8),
        ]
    );
}

#[test]
fn l2_would_catch_a_wall_clock_sampler() {
    // The interval sampler in crates/trace must advance on simulated time
    // only; this fixture shows the Instant-based variant is caught.
    assert_eq!(
        lint_fixture("l2_sampler_bad.rs", SIM),
        vec![(Rule::WallClock, 2), (Rule::WallClock, 5)]
    );
}

#[test]
fn trace_crate_carries_the_sim_rule_set() {
    let rules = rules_for("trace", "crates/trace/src/tracer.rs");
    assert!(rules.hash_iter && rules.wall_clock && rules.thread_spawn);
    assert!(!rules.hot_unwrap);
}

#[test]
fn l2_accepts_sim_time_and_seeded_mixing() {
    assert_eq!(lint_fixture("l2_good.rs", SIM), vec![]);
}

#[test]
fn l3_flags_thread_spawn() {
    assert_eq!(lint_fixture("l3_bad.rs", SIM), vec![(Rule::ThreadSpawn, 3)]);
}

#[test]
fn l3_accepts_data_parallel_expression() {
    assert_eq!(lint_fixture("l3_good.rs", SIM), vec![]);
}

#[test]
fn l3_exempts_the_sweep_executor_file() {
    let rules = rules_for("bench", "crates/bench/src/sweep/mod.rs");
    assert!(!rules.thread_spawn);
    let rules = rules_for("bench", "crates/bench/src/lib.rs");
    assert!(rules.thread_spawn);
}

#[test]
fn l4_flags_missing_lint_headers_in_both_manifests() {
    let report = lint_workspace(&fixture("l4_bad_ws")).expect("fixture workspace");
    let got: Vec<(Rule, &str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            (Rule::LintHeader, "Cargo.toml", 1),
            (Rule::LintHeader, "crates/foo/Cargo.toml", 1),
        ]
    );
}

#[test]
fn l4_accepts_workspace_with_headers() {
    let report = lint_workspace(&fixture("l4_good_ws")).expect("fixture workspace");
    assert_eq!(report.findings, vec![]);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn l5_flags_hot_path_unwraps_only_under_hot_rules() {
    assert_eq!(
        lint_fixture("l5_bad.rs", HOT),
        vec![(Rule::HotUnwrap, 3), (Rule::HotUnwrap, 4)]
    );
    // The same file judged as a non-hot-path source is clean: unwrap is
    // only banned where a SimError channel exists.
    assert_eq!(lint_fixture("l5_bad.rs", SIM), vec![]);
}

#[test]
fn l5_accepts_typed_error_propagation() {
    assert_eq!(lint_fixture("l5_good.rs", HOT), vec![]);
}

#[test]
fn hot_path_files_get_l5_automatically() {
    for file in pagesim_lint::HOT_PATH_FILES {
        let crate_dir = file.split('/').nth(1).expect("crates/<dir>/…");
        assert!(rules_for(crate_dir, file).hot_unwrap, "{file}");
    }
    assert!(!rules_for("core", "crates/core/src/lib.rs").hot_unwrap);
}

#[test]
fn l6_flags_catch_unwind_import_and_call() {
    assert_eq!(
        lint_fixture("l6_bad.rs", SIM),
        vec![
            (Rule::CatchUnwind, 4),
            (Rule::CatchUnwind, 7),
            (Rule::CatchUnwind, 8),
        ]
    );
}

#[test]
fn l6_accepts_propagating_panics() {
    assert_eq!(lint_fixture("l6_good.rs", SIM), vec![]);
}

#[test]
fn l6_exempts_only_the_isolation_module() {
    assert!(!rules_for("bench", "crates/bench/src/sweep/isolation.rs").catch_unwind);
    assert!(rules_for("bench", "crates/bench/src/sweep/mod.rs").catch_unwind);
    assert!(rules_for("core", "crates/core/src/kernel.rs").catch_unwind);
}

// ---------------------------------------------------------------------
// CLI exit codes
// ---------------------------------------------------------------------

fn run_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pagesim-lint"))
        .args(args)
        .output()
        .expect("spawn pagesim-lint");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn cli_exit_one_with_rule_ids_on_findings() {
    let path = fixture("l1_bad.rs");
    let (code, stdout) = run_cli(&["--check-file", path.to_str().expect("utf8 path")]);
    assert_eq!(code, 1);
    assert!(stdout.contains("L1[hash-iter]"), "stdout: {stdout}");
    assert!(stdout.contains(":12:"), "stdout: {stdout}");
    assert!(stdout.contains(":18:"), "stdout: {stdout}");
}

#[test]
fn cli_exit_zero_on_clean_file() {
    let path = fixture("l1_good.rs");
    let (code, stdout) = run_cli(&["--check-file", path.to_str().expect("utf8 path")]);
    assert_eq!(code, 0);
    assert_eq!(stdout, "");
}

#[test]
fn cli_hot_flag_enables_l5() {
    let path = fixture("l5_bad.rs");
    let path = path.to_str().expect("utf8 path");
    let (code, stdout) = run_cli(&["--check-file", path, "--hot"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("L5[hot-unwrap]"), "stdout: {stdout}");
    let (code, _) = run_cli(&["--check-file", path]);
    assert_eq!(code, 0);
}

#[test]
fn cli_workspace_mode_reports_l4() {
    let bad = fixture("l4_bad_ws");
    let (code, stdout) = run_cli(&["--workspace", "--root", bad.to_str().expect("utf8 path")]);
    assert_eq!(code, 1);
    assert!(stdout.contains("L4[lint-header]"), "stdout: {stdout}");
    let good = fixture("l4_good_ws");
    let (code, stdout) = run_cli(&["--workspace", "--root", good.to_str().expect("utf8 path")]);
    assert_eq!(code, 0);
    assert_eq!(stdout, "");
}

#[test]
fn cli_usage_error_is_exit_two() {
    let (code, _) = run_cli(&[]);
    assert_eq!(code, 2);
    let (code, _) = run_cli(&["--workspace", "--check-file", "x.rs"]);
    assert_eq!(code, 2);
}
