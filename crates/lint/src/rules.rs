//! Rule passes: the construct detectors behind L1–L6, the graph-scoped
//! H-series hot-path hygiene rules, and U1 safety-comment enforcement.
//!
//! Detectors emit [`Construct`]s — `(rule, byte offset, message)` — so the
//! same detection logic serves both the per-file pass (offsets → lines)
//! and the call-graph pass (offsets → enclosing function → chain).

use crate::graph::Graph;
use crate::parse::ParsedFile;
use crate::scrub::{
    find_from, ident_before, is_ident_byte, next_nonws, prev_nonws, skip_path_prefix,
    word_occurrences, LineIndex,
};
use crate::Rule;

/// One detected forbidden construct, positioned by byte offset into the
/// scrubbed text.
#[derive(Clone, Debug)]
pub struct Construct {
    /// Which rule the construct violates.
    pub rule: Rule,
    /// Byte offset in the scrubbed text.
    pub offset: usize,
    /// Human-readable explanation.
    pub message: String,
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// L1: collect names bound to `HashMap`/`HashSet`, then flag iteration
/// through them.
pub fn detect_hash_iter(text: &[u8]) -> Vec<Construct> {
    let mut out = Vec::new();
    let mut hash_names: Vec<String> = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        for pos in word_occurrences(text, ty) {
            let before = skip_path_prefix(text, pos);
            if before == 0 {
                continue;
            }
            let name = match text[before - 1] {
                // `name: HashMap<…>` (field, param, or annotated let) —
                // but not a path separator, which skip_path_prefix already
                // consumed.
                b':' if before < 2 || text[before - 2] != b':' => ident_before(text, before - 1),
                // `name = HashMap::new()` / `let name = HashMap::new()`.
                b'=' => ident_before(text, before - 1),
                _ => None,
            };
            if let Some(name) = name {
                if name != "let" && !hash_names.contains(&name) {
                    hash_names.push(name);
                }
            }
        }
    }
    if hash_names.is_empty() {
        return out;
    }
    // `name.iter()` and friends.
    for method in ITER_METHODS {
        for pos in word_occurrences(text, method) {
            let after = pos + method.len();
            let mut a = after;
            while a < text.len() && text[a].is_ascii_whitespace() {
                a += 1;
            }
            if a >= text.len() || text[a] != b'(' {
                continue;
            }
            let mut j = pos;
            while j > 0 && text[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
            if j == 0 || text[j - 1] != b'.' {
                continue;
            }
            let Some(receiver) = ident_before(text, j - 1) else {
                continue;
            };
            if hash_names.contains(&receiver) {
                out.push(Construct {
                    rule: Rule::HashIter,
                    offset: pos,
                    message: format!(
                        "`{receiver}.{method}()` iterates a hash-ordered container; \
                         use BTreeMap/BTreeSet or sort before iterating"
                    ),
                });
            }
        }
    }
    // `for … in <expr ending in a hash name> {`.
    for pos in word_occurrences(text, "for") {
        let Some(in_pos) = word_occurrences(&text[pos..], "in")
            .first()
            .map(|p| p + pos)
        else {
            continue;
        };
        let Some(brace) = find_from(text, b"{", in_pos) else {
            continue;
        };
        let expr = &text[in_pos + 2..brace];
        if expr.contains(&b'(') || expr.contains(&b'\n') && brace - in_pos > 200 {
            continue;
        }
        let Some(last) = ident_before(text, brace) else {
            continue;
        };
        if hash_names.contains(&last) {
            out.push(Construct {
                rule: Rule::HashIter,
                offset: pos,
                message: format!(
                    "`for … in {last}` iterates a hash-ordered container; \
                     use BTreeMap/BTreeSet or sort before iterating"
                ),
            });
        }
    }
    out
}

/// L2: ambient time/entropy tokens.
pub fn detect_wall_clock(text: &[u8]) -> Vec<Construct> {
    let mut out = Vec::new();
    let banned: &[(&str, &str)] = &[
        ("SystemTime", "`std::time::SystemTime` is wall-clock state"),
        ("thread_rng", "`thread_rng` draws OS entropy"),
        ("RandomState", "`RandomState` seeds from OS entropy per process"),
        ("OsRng", "`OsRng` draws OS entropy"),
    ];
    for (word, why) in banned {
        for pos in word_occurrences(text, word) {
            out.push(Construct {
                rule: Rule::WallClock,
                offset: pos,
                message: format!("{why}; sim results must be a pure function of the seed"),
            });
        }
    }
    // `Instant` only when it is std::time's: `Instant::now`, or a
    // `std::time::Instant` path/import.
    for pos in word_occurrences(text, "Instant") {
        let after = pos + "Instant".len();
        let is_now = text.get(after) == Some(&b':')
            && find_from(text, b"now", after).is_some_and(|p| p <= after + 4);
        let before = skip_path_prefix(text, pos);
        let is_std_path =
            before < pos && String::from_utf8_lossy(&text[before..pos]).contains("time");
        if is_now || is_std_path {
            out.push(Construct {
                rule: Rule::WallClock,
                offset: pos,
                message: "`std::time::Instant` is wall-clock state; use SimTime".to_owned(),
            });
        }
    }
    out
}

/// L3: thread creation.
pub fn detect_thread_spawn(text: &[u8]) -> Vec<Construct> {
    let mut out = Vec::new();
    for api in ["spawn", "scope", "Builder"] {
        for pos in word_occurrences(text, api) {
            let before = skip_path_prefix(text, pos);
            if before >= pos {
                continue; // bare `spawn`, not `thread::spawn`
            }
            let path = String::from_utf8_lossy(&text[before..pos]);
            if path.contains("thread") {
                out.push(Construct {
                    rule: Rule::ThreadSpawn,
                    offset: pos,
                    message: format!(
                        "`thread::{api}` outside pagesim-bench::sweep; all parallelism \
                         must go through the deterministic sweep executor"
                    ),
                });
            }
        }
    }
    out
}

/// L5: `.unwrap()`/`.expect()` on hot-path files.
pub fn detect_hot_unwrap(text: &[u8]) -> Vec<Construct> {
    let mut out = Vec::new();
    for method in ["unwrap", "expect"] {
        for pos in word_occurrences(text, method) {
            let mut j = pos;
            while j > 0 && text[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
            if j == 0 || text[j - 1] != b'.' {
                continue;
            }
            let mut a = pos + method.len();
            while a < text.len() && text[a].is_ascii_whitespace() {
                a += 1;
            }
            if a >= text.len() || text[a] != b'(' {
                continue;
            }
            out.push(Construct {
                rule: Rule::HotUnwrap,
                offset: pos,
                message: format!(
                    "`.{method}()` on a SimError hot path; propagate a typed error \
                     so one bad cell cannot abort a figure sweep"
                ),
            });
        }
    }
    out
}

/// L6: `catch_unwind` outside the sanctioned isolation module. Matches the
/// bare identifier, so imports (`use std::panic::catch_unwind`), qualified
/// paths, and calls all fire.
pub fn detect_catch_unwind(text: &[u8]) -> Vec<Construct> {
    word_occurrences(text, "catch_unwind")
        .into_iter()
        .map(|pos| Construct {
            rule: Rule::CatchUnwind,
            offset: pos,
            message: "`catch_unwind` outside the sweep executor's isolation module; \
                      panic recovery must go through the one audited site"
                .to_owned(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// H-series: hot-path hygiene, scoped to the fault/reclaim cone
// ---------------------------------------------------------------------

/// Std containers whose growth methods allocate.
const STD_GROWABLE: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "BinaryHeap",
];

/// Methods that allocate regardless of receiver.
const ALWAYS_ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "collect", "into_owned"];

/// Growth methods that allocate when the receiver is a std container.
const GROWTH_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
    "reserve",
    "reserve_exact",
    "push_str",
];

/// Type-qualified constructors that allocate.
const ALLOC_CTORS: &[(&str, &[&str])] = &[
    ("Box", &["new"]),
    ("Rc", &["new"]),
    ("Arc", &["new"]),
    ("Vec", &["with_capacity", "from"]),
    ("VecDeque", &["with_capacity", "from"]),
    ("String", &["with_capacity", "from"]),
];

/// Crates exempt from H4 — floats are allowed to live in the stats layer.
const FLOAT_EXEMPT_CRATES: &[&str] = &["stats"];

/// H1–H4 constructs inside one cone function (node `ni`).
pub fn detect_hot_constructs(g: &Graph, files: &[ParsedFile], ni: usize) -> Vec<Construct> {
    let node_file = g.nodes[ni].file;
    let pf = &files[node_file];
    let fd = &pf.fns[g.nodes[ni].fn_idx];
    let env = &g.envs[ni];
    let mut out = Vec::new();
    let Some((b0, b1)) = fd.body else {
        return out;
    };
    let b1 = b1.min(pf.text.len());
    let text = &pf.text;

    // H1 method calls + H2 clones: walk call sites in the body.
    let mut i = b0;
    while i < b1 {
        let c = text[i];
        if !is_ident_byte(c) || c.is_ascii_digit() || (i > 0 && is_ident_byte(text[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i;
        while j < b1 && is_ident_byte(text[j]) {
            j += 1;
        }
        i = j;
        let word = String::from_utf8_lossy(&text[start..j]).into_owned();
        let Some((_, after)) = next_nonws(text, j) else {
            continue;
        };
        if after == b'!' {
            // Allocating macros.
            if word == "vec" || word == "format" {
                out.push(Construct {
                    rule: Rule::HotAlloc,
                    offset: start,
                    message: format!(
                        "`{word}!` allocates on the fault/reclaim path; \
                         preallocate or reuse a scratch buffer"
                    ),
                });
            }
            continue;
        }
        if after != b'(' {
            continue;
        }
        let is_method = matches!(prev_nonws(text, start), Some((_, b'.')));
        if is_method {
            if ALWAYS_ALLOC_METHODS.contains(&word.as_str()) {
                out.push(Construct {
                    rule: Rule::HotAlloc,
                    offset: start,
                    message: format!(
                        "`.{word}()` allocates an owned value on the fault/reclaim path"
                    ),
                });
                continue;
            }
            let recv = |g: &Graph| {
                let (p, _) = prev_nonws(text, start)?;
                g.chain_type(pf, env, fd, text, p)
            };
            if GROWTH_METHODS.contains(&word.as_str()) {
                if let Some(t) = recv(g) {
                    if STD_GROWABLE.contains(&t.as_str()) {
                        out.push(Construct {
                            rule: Rule::HotAlloc,
                            offset: start,
                            message: format!(
                                "`.{word}()` on a `{t}` may (re)allocate on the \
                                 fault/reclaim path; preallocate or use a fixed structure"
                            ),
                        });
                    }
                }
                continue;
            }
            if word == "clone" {
                if let Some(t) = recv(g) {
                    if !g.is_copy(&t) {
                        out.push(Construct {
                            rule: Rule::HotClone,
                            offset: start,
                            message: format!(
                                "`.clone()` of non-Copy `{t}` on the fault/reclaim path; \
                                 borrow or restructure ownership instead"
                            ),
                        });
                    }
                }
                continue;
            }
        } else if let Some((p, b':')) = prev_nonws(text, start) {
            // `Qual::word(…)` allocating constructors.
            if p > 0 && text[p - 1] == b':' {
                if let Some(qual) = ident_before(text, p - 1) {
                    for (ty, ctors) in ALLOC_CTORS {
                        if qual == *ty && ctors.contains(&word.as_str()) {
                            out.push(Construct {
                                rule: Rule::HotAlloc,
                                offset: start,
                                message: format!(
                                    "`{qual}::{word}` allocates on the fault/reclaim path"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // H3: `dyn` introduced inside a cone function body (signatures carry
    // pre-existing trait-object params and are exempt).
    for pos in word_occurrences(&text[b0..b1], "dyn") {
        out.push(Construct {
            rule: Rule::HotDyn,
            offset: b0 + pos,
            message: "`dyn` dispatch introduced inside the fault/reclaim cone; \
                      use the statically-dispatched form"
                .to_owned(),
        });
    }

    // H4: float types/arithmetic anywhere in the signature or body, outside
    // the stats crate.
    if !FLOAT_EXEMPT_CRATES.contains(&pf.crate_dir.as_str()) {
        let lo = fd.sig.0;
        for ty in ["f32", "f64"] {
            for pos in word_occurrences(&text[lo..b1], ty) {
                out.push(Construct {
                    rule: Rule::HotFloat,
                    offset: lo + pos,
                    message: format!(
                        "`{ty}` in kernel sim state reachable from the hot path; \
                         floats stay confined to pagesim-stats (fixed-point otherwise)"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// U1: SAFETY comments on unsafe blocks
// ---------------------------------------------------------------------

/// U1: every `unsafe` block needs a `// SAFETY:` comment on the same line
/// or in the comment run immediately above. Detection runs on scrubbed
/// text (so `unsafe` in strings/comments never fires); the SAFETY lookup
/// reads the *original* source, where comments still exist.
pub(crate) fn detect_missing_safety(text: &[u8], lines: &LineIndex, src: &str) -> Vec<Construct> {
    let src_lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for pos in word_occurrences(text, "unsafe") {
        let Some((_, nc)) = next_nonws(text, pos + "unsafe".len()) else {
            continue;
        };
        if nc != b'{' {
            continue; // `unsafe fn`/`unsafe impl` signatures are L4's domain
        }
        let line = lines.line_of(pos); // 1-based
        let mut justified = src_lines
            .get(line as usize - 1)
            .is_some_and(|l| l.contains("SAFETY:"));
        // Walk up through the immediately-preceding comment/attribute run.
        let mut k = line as usize - 1; // index of the unsafe line
        while !justified && k > 0 {
            let above = src_lines[k - 1].trim();
            if above.starts_with("//") || above.starts_with("#[") || above.is_empty() {
                if above.contains("SAFETY:") {
                    justified = true;
                }
                k -= 1;
            } else {
                break;
            }
        }
        if !justified {
            out.push(Construct {
                rule: Rule::SafetyComment,
                offset: pos,
                message: "`unsafe` block without a preceding `// SAFETY:` comment \
                          stating the invariant that makes it sound"
                    .to_owned(),
            });
        }
    }
    out
}
