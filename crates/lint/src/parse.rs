//! Lightweight item parser: extracts `fn`/`impl`/`trait`/`struct`/`use`
//! structure from scrubbed source, per file.
//!
//! This is not a Rust parser — the offline build has no `syn` — but a
//! single forward pass that recognizes item keywords at item position,
//! balances braces (sound on scrubbed text, where no brace hides inside a
//! literal or comment), and records just enough structure for the call
//! graph: function signatures with parameter/return types, impl/trait
//! ownership, struct field types, `Copy` derives, and `use` aliases.
//! Function *bodies* are skipped during item scanning, so expression-level
//! braces never confuse the item structure; nested items inside bodies are
//! a documented blind spot.

use crate::scrub::{
    is_ident_byte, match_brace, next_nonws, prev_nonws, word_occurrences, LineIndex,
};
use std::collections::{BTreeMap, BTreeSet};

/// One parsed function (or trait default method).
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type or `trait` name, if any.
    pub owner: Option<String>,
    /// For `impl Trait for Type` methods, the trait name.
    pub trait_impl: Option<String>,
    /// True for methods declared inside a `trait` block (default bodies).
    pub in_trait: bool,
    /// 1-based line of the function name.
    pub line: u32,
    /// Byte range of the signature (from `fn` through the byte before the
    /// body brace or terminating semicolon) in the scrubbed text.
    pub sig: (usize, usize),
    /// Byte range of the body interior (between the braces), if present.
    pub body: Option<(usize, usize)>,
    /// Non-`self` parameters as `(name, core type)`.
    pub params: Vec<(String, String)>,
    /// Core return type, or empty.
    pub ret: String,
}

impl FnDef {
    /// `Owner::name` or bare `name`.
    pub fn symbol(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything the graph needs from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Crate directory name under `crates/` (or a synthetic label).
    pub crate_dir: String,
    /// Scrubbed, `#[cfg(test)]`-stripped text.
    pub text: Vec<u8>,
    /// Functions in source order.
    pub fns: Vec<FnDef>,
    /// `use` aliases: visible name → real (last) path segment.
    pub uses: BTreeMap<String, String>,
    /// Struct fields: type name → field name → core field type.
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
    /// Types with `#[derive(.. Copy ..)]`.
    pub copy_types: Vec<String>,
    /// Trait method names seen here, keyed by trait — from `trait` blocks
    /// *and* `impl Trait for Type` blocks (so external traits appear too).
    pub traits: BTreeMap<String, Vec<String>>,
    /// Traits *declared* in this file with the `trait` keyword. Only these
    /// get dynamic-dispatch fan-out in the call graph: a trait we cannot
    /// see (std `Default`, `Display`, …) would link every implementor to
    /// every call site and fabricate edges.
    pub traits_declared: BTreeSet<String>,
}

/// Reduces a type expression to its nominal core: strips references,
/// `mut`/`dyn`/`impl`, peels smart-pointer/option wrappers, and keeps the
/// last path segment before any generics. Non-nominal types (tuples,
/// slices, fn pointers) reduce to the empty string.
pub fn core_type(s: &str) -> String {
    let mut t = s.trim();
    loop {
        t = t.trim();
        if let Some(r) = t.strip_prefix('&') {
            t = r;
            continue;
        }
        let mut stripped = false;
        for kw in ["mut ", "dyn ", "impl "] {
            if let Some(r) = t.strip_prefix(kw) {
                t = r;
                stripped = true;
                break;
            }
        }
        if stripped {
            continue;
        }
        let mut peeled = false;
        for w in ["Box", "Rc", "Arc", "Option", "Cell", "RefCell"] {
            if let Some(r) = t.strip_prefix(w) {
                let r2 = r.trim_start();
                if let Some(inner) = r2.strip_prefix('<') {
                    t = inner.strip_suffix('>').unwrap_or(inner);
                    peeled = true;
                    break;
                }
            }
        }
        if !peeled {
            break;
        }
    }
    let t = t.split('<').next().unwrap_or(t).trim();
    let t = t.rsplit("::").next().unwrap_or(t).trim();
    if !t.is_empty() && t.bytes().all(is_ident_byte) {
        t.to_owned()
    } else {
        String::new()
    }
}

const MODIFIERS: &[&str] = &["pub", "unsafe", "async", "const", "default", "extern"];

/// Whether the keyword starting at `pos` sits at item position: preceded
/// (after skipping modifier words and `pub(crate)` groups) by `;`, `}`,
/// `{`, `]` (attribute end), or start of file.
fn item_pos(text: &[u8], pos: usize) -> bool {
    let mut p = pos;
    loop {
        let Some((q, ch)) = prev_nonws(text, p) else {
            return true;
        };
        if ch == b')' {
            // Possibly the `(crate)` of `pub(crate)`.
            let Some(open) = paren_back(text, q) else {
                return false;
            };
            let Some(w) = word_ending_before(text, open) else {
                return false;
            };
            if w.1 != "pub" {
                return false;
            }
            p = w.0;
            continue;
        }
        if is_ident_byte(ch) {
            let Some((start, w)) = word_ending_at(text, q + 1) else {
                return false;
            };
            if MODIFIERS.contains(&w.as_str()) {
                p = start;
                continue;
            }
            return false;
        }
        return matches!(ch, b';' | b'}' | b'{' | b']');
    }
}

/// Matching `(` for the `)` at `close`, scanning backward.
fn paren_back(text: &[u8], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = close + 1;
    while i > 0 {
        i -= 1;
        match text[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn word_ending_before(text: &[u8], pos: usize) -> Option<(usize, String)> {
    let (q, ch) = prev_nonws(text, pos)?;
    if !is_ident_byte(ch) {
        return None;
    }
    word_ending_at(text, q + 1)
}

fn word_ending_at(text: &[u8], end: usize) -> Option<(usize, String)> {
    let mut start = end;
    while start > 0 && is_ident_byte(text[start - 1]) {
        start -= 1;
    }
    (start < end).then(|| {
        (
            start,
            String::from_utf8_lossy(&text[start..end]).into_owned(),
        )
    })
}

fn read_word(text: &[u8], from: usize) -> Option<(usize, usize, String)> {
    let (start, c) = next_nonws(text, from)?;
    if !is_ident_byte(c) || c.is_ascii_digit() {
        return None;
    }
    let mut end = start;
    while end < text.len() && is_ident_byte(text[end]) {
        end += 1;
    }
    Some((
        start,
        end,
        String::from_utf8_lossy(&text[start..end]).into_owned(),
    ))
}

/// Skips a balanced `<…>` group starting at `open` (which must be `<`),
/// tolerating `->` arrows inside. Returns the offset just past `>`.
fn skip_angles(text: &[u8], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < text.len() {
        match text[i] {
            b'<' => depth += 1,
            b'>' => {
                if i > 0 && text[i - 1] == b'-' {
                    // `->` arrow, not a closer.
                } else {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            b';' | b'{' => return i, // malformed; bail before the item body
            _ => {}
        }
        i += 1;
    }
    text.len()
}

/// Splits `text` on top-level commas (paren/angle/bracket depth 0).
fn split_top_commas(text: &[u8]) -> Vec<(usize, usize)> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, &c) in text.iter().enumerate() {
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'<' => depth += 1,
            b'>' if i > 0 && text[i - 1] != b'-' => depth -= 1,
            b',' if depth == 0 => {
                parts.push((start, i));
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < text.len() {
        parts.push((start, text.len()));
    }
    parts
}

fn parse_params(text: &[u8]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (a, b) in split_top_commas(text) {
        let part = String::from_utf8_lossy(&text[a..b]).trim().to_owned();
        if part.is_empty() || part == "self" || part.ends_with("self") && !part.contains(':') {
            continue;
        }
        let Some((name, ty)) = split_top_colon(&part) else {
            continue;
        };
        let name = name.trim().trim_start_matches("mut ").trim().to_owned();
        if name.bytes().all(is_ident_byte) && !name.is_empty() {
            out.push((name, core_type(ty)));
        }
    }
    out
}

/// Splits on the first `:` at depth 0 that is not part of `::`.
fn split_top_colon(s: &str) -> Option<(&str, &str)> {
    let b = s.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' | b'{' | b'<' => depth += 1,
            b')' | b']' | b'}' | b'>' => depth -= 1,
            b':' if depth == 0 => {
                if i + 1 < b.len() && b[i + 1] == b':' {
                    i += 2;
                    continue;
                }
                return Some((&s[..i], &s[i + 1..]));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

enum Ctx {
    Impl {
        ty: String,
        trait_name: Option<String>,
    },
    Trait {
        name: String,
    },
}

/// Parses one file's scrubbed text into its item structure.
pub fn parse_file(rel: &str, crate_dir: &str, text: Vec<u8>) -> ParsedFile {
    let lines = LineIndex::new(&text);
    let mut pf = ParsedFile {
        rel: rel.to_owned(),
        crate_dir: crate_dir.to_owned(),
        ..ParsedFile::default()
    };
    collect_copy_derives(&text, &mut pf.copy_types);
    let n = text.len();
    // (end offset, context)
    let mut ctxs: Vec<(usize, Ctx)> = Vec::new();
    let mut i = 0usize;
    while i < n {
        while ctxs.last().is_some_and(|(end, _)| i >= *end) {
            ctxs.pop();
        }
        let c = text[i];
        if !is_ident_byte(c) || c.is_ascii_digit() {
            i += 1;
            continue;
        }
        if i > 0 && is_ident_byte(text[i - 1]) {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i;
        while j < n && is_ident_byte(text[j]) {
            j += 1;
        }
        match &text[start..j] {
            b"use" if item_pos(&text, start) => {
                let end = parse_use(&text, j, &mut pf.uses);
                i = end;
                continue;
            }
            b"struct" if item_pos(&text, start) => {
                i = parse_struct(&text, j, &mut pf.structs);
                continue;
            }
            b"trait" if item_pos(&text, start) => {
                if let Some((header, open)) = parse_block_header(&text, j) {
                    let end = match_brace(&text, open);
                    // Drop supertrait bounds: `trait Policy: Send {`.
                    let name = core_type(header.split(':').next().unwrap_or(&header));
                    if !name.is_empty() {
                        pf.traits.entry(name.clone()).or_default();
                        pf.traits_declared.insert(name.clone());
                        ctxs.push((end, Ctx::Trait { name }));
                        i = open + 1;
                        continue;
                    }
                }
                i = j;
                continue;
            }
            b"impl" if item_pos(&text, start) => {
                if let Some((header, open)) = parse_block_header(&text, j) {
                    let end = match_brace(&text, open);
                    let header = header.split(" where ").next().unwrap_or(&header).to_owned();
                    let (ty, trait_name) = match split_for(&header) {
                        Some((tr, ty)) => (core_type(&ty), Some(core_type(&tr))),
                        None => (core_type(&header), None),
                    };
                    if !ty.is_empty() {
                        ctxs.push((end, Ctx::Impl { ty, trait_name }));
                        i = open + 1;
                        continue;
                    }
                }
                i = j;
                continue;
            }
            b"fn" if item_pos(&text, start) => {
                let (owner, trait_impl, in_trait) = match ctxs.last() {
                    Some((_, Ctx::Impl { ty, trait_name })) => {
                        (Some(ty.clone()), trait_name.clone(), false)
                    }
                    Some((_, Ctx::Trait { name })) => (Some(name.clone()), None, true),
                    None => (None, None, false),
                };
                match parse_fn(&text, start, j, &lines, owner, trait_impl, in_trait) {
                    Some((fd, next)) => {
                        if let (Some(owner), Some((_, Ctx::Trait { name }))) =
                            (&fd.owner, ctxs.last())
                        {
                            debug_assert_eq!(owner, name);
                            pf.traits.entry(name.clone()).or_default().push(fd.name.clone());
                        }
                        // Record decl-only trait methods too (body=None).
                        pf.fns.push(fd);
                        i = next;
                        continue;
                    }
                    None => {
                        i = j;
                        continue;
                    }
                }
            }
            _ => {}
        }
        i = j;
    }
    // Trait methods from impl-for blocks count toward trait method lists.
    let impl_traits: Vec<(String, String)> = pf
        .fns
        .iter()
        .filter_map(|f| f.trait_impl.clone().map(|t| (t, f.name.clone())))
        .collect();
    for (t, m) in impl_traits {
        let methods = pf.traits.entry(t).or_default();
        if !methods.contains(&m) {
            methods.push(m);
        }
    }
    pf.text = text;
    pf
}

/// `#[derive(.. Copy ..)]` → the next `struct`/`enum` name.
fn collect_copy_derives(text: &[u8], out: &mut Vec<String>) {
    for pos in word_occurrences(text, "derive") {
        let Some((_, prev)) = prev_nonws(text, pos) else {
            continue;
        };
        if prev != b'[' {
            continue;
        }
        let Some((open, c)) = next_nonws(text, pos + "derive".len()) else {
            continue;
        };
        if c != b'(' {
            continue;
        }
        let mut close = open;
        let mut depth = 0i32;
        while close < text.len() {
            match text[close] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        let inner = &text[open..close.min(text.len())];
        if word_occurrences(inner, "Copy").is_empty() {
            continue;
        }
        // Find the annotated item's name: next `struct` or `enum` word.
        let mut k = close;
        let limit = (close + 400).min(text.len());
        while k < limit {
            if let Some((_, e2, w)) = read_word(text, k) {
                if w == "struct" || w == "enum" {
                    if let Some((_, _, name)) = read_word(text, e2) {
                        out.push(name);
                    }
                    break;
                }
                k = e2;
            } else {
                k += 1;
            }
        }
    }
}

/// Parses `use path::{a, b as c};` starting just past the `use` keyword.
/// Records visible-name → real-name mappings. Returns the offset past `;`.
fn parse_use(text: &[u8], from: usize, uses: &mut BTreeMap<String, String>) -> usize {
    let n = text.len();
    let mut end = from;
    while end < n && text[end] != b';' {
        end += 1;
    }
    let stmt = String::from_utf8_lossy(&text[from..end]).trim().to_owned();
    let record = |uses: &mut BTreeMap<String, String>, item: &str| {
        let item = item.trim();
        if item.is_empty() || item == "*" {
            return;
        }
        let (path, alias) = match item.split_once(" as ") {
            Some((p, a)) => (p.trim(), Some(a.trim())),
            None => (item, None),
        };
        let real = path.rsplit("::").next().unwrap_or(path).trim();
        if real.is_empty() || real == "self" {
            return;
        }
        let visible = alias.unwrap_or(real);
        if visible.bytes().all(is_ident_byte) && real.bytes().all(is_ident_byte) {
            uses.insert(visible.to_owned(), real.to_owned());
        }
    };
    if let Some(brace) = stmt.find('{') {
        let inner = stmt[brace + 1..].trim_end_matches('}');
        for item in inner.split(',') {
            record(uses, item);
        }
    } else {
        record(uses, &stmt);
    }
    (end + 1).min(n)
}

/// Parses `struct Name { fields }` starting just past the keyword; returns
/// the offset to resume scanning at.
fn parse_struct(
    text: &[u8],
    from: usize,
    structs: &mut BTreeMap<String, BTreeMap<String, String>>,
) -> usize {
    let Some((_, name_end, name)) = read_word(text, from) else {
        return from;
    };
    let mut k = name_end;
    if let Some((p, b'<')) = next_nonws(text, k) {
        k = skip_angles(text, p);
    }
    match next_nonws(text, k) {
        Some((open, b'{')) => {
            let close = match_brace(text, open);
            let body = &text[open + 1..close.min(text.len())];
            let mut fields = BTreeMap::new();
            for (a, b) in split_top_commas(body) {
                let part = String::from_utf8_lossy(&body[a..b]).trim().to_owned();
                // Drop attributes and visibility modifiers.
                let part = part
                    .rsplit(']')
                    .next()
                    .unwrap_or(&part)
                    .trim()
                    .trim_start_matches("pub(crate)")
                    .trim_start_matches("pub(super)")
                    .trim()
                    .to_owned();
                let part = part.strip_prefix("pub ").unwrap_or(&part).trim().to_owned();
                if let Some((fname, fty)) = split_top_colon(&part) {
                    let fname = fname.trim();
                    if fname.bytes().all(is_ident_byte) && !fname.is_empty() {
                        fields.insert(fname.to_owned(), core_type(fty));
                    }
                }
            }
            structs.insert(name, fields);
            close + 1
        }
        Some((open, b'(')) => {
            // Tuple struct: skip to the `;`.
            let mut depth = 0i32;
            let mut i = open;
            while i < text.len() {
                match text[i] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            structs.insert(name, BTreeMap::new());
            i + 1
        }
        _ => {
            structs.insert(name, BTreeMap::new());
            name_end
        }
    }
}

/// For `impl`/`trait`: captures the header text from `from` up to the
/// opening `{` at angle depth 0, skipping a leading generics group.
fn parse_block_header(text: &[u8], from: usize) -> Option<(String, usize)> {
    let mut k = from;
    if let Some((p, b'<')) = next_nonws(text, k) {
        k = skip_angles(text, p);
    }
    let start = k;
    let mut depth = 0i32;
    while k < text.len() {
        match text[k] {
            b'<' => depth += 1,
            b'>' if k > 0 && text[k - 1] != b'-' => depth -= 1,
            b'{' if depth <= 0 => {
                let header = String::from_utf8_lossy(&text[start..k]).trim().to_owned();
                return Some((header, k));
            }
            b';' => return None, // `impl Trait for Type;` / malformed
            _ => {}
        }
        k += 1;
    }
    None
}

/// Splits `Trait for Type` at a top-level ` for `.
fn split_for(header: &str) -> Option<(String, String)> {
    let b = header.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i + 5 <= b.len() {
        match b[i] {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth -= 1,
            b'f' if depth == 0
                && header[i..].starts_with("for ")
                && i > 0
                && b[i - 1].is_ascii_whitespace() =>
            {
                return Some((
                    header[..i].trim().to_owned(),
                    header[i + 4..].trim().to_owned(),
                ));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

type FnParse = Option<(FnDef, usize)>;

/// Parses a `fn` starting at the keyword offset `kw` (name begins after
/// `name_from`). Returns the FnDef and the offset to resume scanning at.
fn parse_fn(
    text: &[u8],
    kw: usize,
    name_from: usize,
    lines: &LineIndex,
    owner: Option<String>,
    trait_impl: Option<String>,
    in_trait: bool,
) -> FnParse {
    let n = text.len();
    let (name_start, name_end, name) = read_word(text, name_from)?;
    let mut k = name_end;
    if let Some((p, b'<')) = next_nonws(text, k) {
        k = skip_angles(text, p);
    }
    let (open_paren, c) = next_nonws(text, k)?;
    if c != b'(' {
        return None;
    }
    let mut depth = 0i32;
    let mut close_paren = open_paren;
    while close_paren < n {
        match text[close_paren] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        close_paren += 1;
    }
    if close_paren >= n {
        return None;
    }
    let params = parse_params(&text[open_paren + 1..close_paren]);
    // After the params: optional `-> Ret`, optional `where …`, then `{` or `;`.
    let mut ret = String::new();
    let mut angle = 0i32;
    let mut i = close_paren + 1;
    let mut ret_start: Option<usize> = None;
    let mut ret_end: Option<usize> = None;
    let (body, sig_end, resume);
    loop {
        if i >= n {
            return None;
        }
        let c = text[i];
        match c {
            b'-' if i + 1 < n && text[i + 1] == b'>' => {
                if ret_start.is_none() {
                    ret_start = Some(i + 2);
                }
                i += 2;
                continue;
            }
            b'<' => angle += 1,
            b'>' if text[i - 1] != b'-' => angle -= 1,
            b'w' if angle <= 0
                && text[i..].starts_with(b"where")
                && !is_ident_byte(*text.get(i + 5).unwrap_or(&b' '))
                && (i == 0 || !is_ident_byte(text[i - 1]))
                && ret_end.is_none() =>
            {
                ret_end = Some(i);
            }
            b'{' if angle <= 0 => {
                if ret_end.is_none() {
                    ret_end = Some(i);
                }
                let close = match_brace(text, i);
                body = Some((i + 1, close));
                sig_end = i;
                resume = (close + 1).min(n);
                break;
            }
            b';' if angle <= 0 => {
                if ret_end.is_none() {
                    ret_end = Some(i);
                }
                body = None;
                sig_end = i;
                resume = i + 1;
                break;
            }
            _ => {}
        }
        i += 1;
    }
    if let (Some(a), Some(b)) = (ret_start, ret_end) {
        if a < b {
            ret = core_type(&String::from_utf8_lossy(&text[a..b]));
        }
    }
    Some((
        FnDef {
            name,
            owner,
            trait_impl,
            in_trait,
            line: lines.line_of(name_start),
            sig: (kw, sig_end),
            body,
            params,
            ret,
        },
        resume,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn parse(src: &str) -> ParsedFile {
        parse_file("t.rs", "core", scrub(src))
    }

    #[test]
    fn fns_impls_and_traits_are_extracted() {
        let src = "\
struct Kernel { policy: Box<dyn Policy>, now: u64 }
trait Policy { fn reclaim(&mut self, want: u32) -> u32; fn noop(&self) {} }
impl Kernel {
    pub fn fault(&mut self, vpn: u64) -> Result<(), SimError> { self.step(vpn) }
    fn step(&mut self, vpn: u64) -> Result<(), SimError> { Ok(()) }
}
impl Policy for Clock { fn reclaim(&mut self, want: u32) -> u32 { want } }
fn free_helper(x: u32) -> u32 { x }
";
        let pf = parse(src);
        let syms: Vec<String> = pf.fns.iter().map(|f| f.symbol()).collect();
        assert_eq!(
            syms,
            vec![
                "Policy::reclaim",
                "Policy::noop",
                "Kernel::fault",
                "Kernel::step",
                "Clock::reclaim",
                "free_helper",
            ]
        );
        let fault = pf.fns.iter().find(|f| f.name == "fault").unwrap();
        assert_eq!(fault.params, vec![("vpn".to_owned(), "u64".to_owned())]);
        assert_eq!(fault.ret, "Result");
        assert!(fault.body.is_some());
        let clock = pf.fns.iter().find(|f| f.symbol() == "Clock::reclaim").unwrap();
        assert_eq!(clock.trait_impl.as_deref(), Some("Policy"));
        assert_eq!(
            pf.structs["Kernel"]["policy"], "Policy",
            "Box<dyn Policy> reduces to the trait"
        );
        assert!(pf.traits["Policy"].contains(&"reclaim".to_owned()));
    }

    #[test]
    fn use_aliases_are_recorded() {
        let src = "use pagesim_util::helper_a as ha;\nuse crate::x::{A, b as c, d};\n";
        let pf = parse(src);
        assert_eq!(pf.uses["ha"], "helper_a");
        assert_eq!(pf.uses["c"], "b");
        assert_eq!(pf.uses["d"], "d");
        assert_eq!(pf.uses["A"], "A");
    }

    #[test]
    fn copy_derives_are_collected() {
        let src = "#[derive(Clone, Copy, Debug)]\npub struct PageKey { a: u64 }\n\
                   #[derive(Clone)]\nstruct NotCopy { b: u64 }\n";
        let pf = parse(src);
        assert_eq!(pf.copy_types, vec!["PageKey".to_owned()]);
    }

    #[test]
    fn impl_in_return_position_is_not_an_item() {
        let src = "fn mk() -> impl Iterator<Item = u32> { (0..3).filter(|x| x % 2 == 0) }\n\
                   fn after() {}\n";
        let pf = parse(src);
        let syms: Vec<String> = pf.fns.iter().map(|f| f.symbol()).collect();
        assert_eq!(syms, vec!["mk", "after"]);
    }

    #[test]
    fn core_type_reduction() {
        assert_eq!(core_type("&mut dyn MemView"), "MemView");
        assert_eq!(core_type("Box<dyn Policy>"), "Policy");
        assert_eq!(core_type("Option<Box<Tracer>>"), "Tracer");
        assert_eq!(core_type("std::collections::BTreeMap<K, V>"), "BTreeMap");
        assert_eq!(core_type("Vec<Option<u32>>"), "Vec");
        assert_eq!(core_type("(u32, u32)"), "");
        assert_eq!(core_type("[u8; 4]"), "");
    }
}
