//! Intra-workspace call graph: name resolution, hot-path roots, and BFS
//! reachability with parent pointers for chain diagnostics.
//!
//! Resolution is deliberately conservative (see DESIGN.md for the full
//! approximation list): `self.method()` resolves through the enclosing
//! `impl`; field chains (`self.events.push(…)`) resolve through parsed
//! struct field types, peeling `&`/`Box`/`Option` wrappers; a field or
//! binding typed as a workspace *trait* (e.g. `Box<dyn Policy>`) fans out
//! to every impl of that trait plus the trait's default bodies;
//! `Type::func(…)` resolves exactly after `use`-alias rewriting; bare
//! lowercase `func(…)` resolves to free functions by name. A method call
//! on an *unresolvable* receiver falls back to a unique-name match across
//! all impl methods, but only when the name is unambiguous workspace-wide
//! and not a common std method name.

use crate::parse::{core_type, FnDef, ParsedFile};
use crate::scrub::{is_ident_byte, next_nonws, prev_nonws, word_occurrences};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Hot-path root functions: the fault/touch entry points and the reclaim
/// and aging slices. Any function transitively reachable from these (or
/// from a `Policy` impl's hot methods) is in the *cone* the L-rule chain
/// findings and the H-series hygiene rules apply to.
pub const HOT_ROOTS: &[&str] = &[
    "Kernel::fault",
    "Kernel::touch",
    "Kernel::complete_major_fault",
    "Kernel::run_kswapd_slice",
    "Kernel::run_aging_slice",
];

/// `Policy` trait methods that run on the fault/reclaim path. `name`,
/// `stats`, `occupancy`, `introspect`, and `check_invariants` are
/// reporting/debug surface and deliberately excluded from the cone.
pub const POLICY_HOT_METHODS: &[&str] = &[
    "on_page_resident",
    "on_page_evicted",
    "forget",
    "on_fd_access",
    "reclaim",
    "wants_background",
    "background_work",
];

/// Std methods excluded from the unique-name fallback: linking `x.push()`
/// on an untyped receiver to the one workspace type with a `push` method
/// would fabricate edges.
const COMMON_METHODS: &[&str] = &[
    "new", "default", "len", "is_empty", "get", "get_mut", "insert", "remove", "push", "pop",
    "clear", "contains", "contains_key", "iter", "next", "clone", "fmt", "eq", "cmp",
    "partial_cmp", "hash", "drop", "from", "into", "as_ref", "as_mut", "take", "min", "max",
    "expect", "unwrap", "unwrap_or", "unwrap_or_else", "unwrap_or_default", "map", "and_then",
    "or_else", "ok", "err", "filter", "find", "any", "all", "fold", "count", "last", "first",
    "extend", "entry", "append", "retain", "drain", "front", "back", "push_back", "push_front",
    "pop_back", "pop_front", "sort", "sort_unstable", "binary_search", "split_off", "write",
    "read", "flush", "abs", "sum", "rev",
];

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "loop", "fn", "move", "in", "as", "let",
    "unsafe", "ref", "mut", "box", "dyn", "impl", "where", "use", "pub", "enum", "struct",
    "trait", "type", "const", "static", "break", "continue", "crate", "super", "Self", "self",
    "async", "await", "true", "false",
];

/// A function node in the graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index into the workspace file list.
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
    /// `Owner::name` symbol.
    pub symbol: String,
}

/// Workspace-wide name-resolution tables plus the call graph itself.
pub struct Graph {
    /// All function nodes, in (file, fn) order.
    pub nodes: Vec<FnNode>,
    /// Outgoing call edges per node (sorted, deduplicated).
    pub edges: Vec<Vec<usize>>,
    /// Root node indexes (hot-path entry points).
    pub roots: Vec<usize>,
    /// Per-node local typing environment (param/let bindings → core type).
    pub envs: Vec<BTreeMap<String, String>>,
    rets: Vec<String>,
    method_index: BTreeMap<(String, String), Vec<usize>>,
    free_index: BTreeMap<String, Vec<usize>>,
    trait_impls: BTreeMap<String, Vec<String>>,
    traits: BTreeSet<String>,
    structs: BTreeMap<String, BTreeMap<String, String>>,
    copy_types: BTreeSet<String>,
    method_owners: BTreeMap<String, BTreeSet<String>>,
}

impl Graph {
    /// The parsed function behind a node.
    pub fn def<'a>(&self, files: &'a [ParsedFile], node: usize) -> &'a FnDef {
        &files[self.nodes[node].file].fns[self.nodes[node].fn_idx]
    }

    /// Whether `ty` is a known `Copy` type (workspace derive or primitive).
    pub fn is_copy(&self, ty: &str) -> bool {
        const PRIMITIVES: &[&str] = &[
            "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
            "isize", "bool", "char", "f32", "f64",
        ];
        PRIMITIVES.contains(&ty) || self.copy_types.contains(ty)
    }

    /// Builds the graph over all parsed files.
    pub fn build(files: &[ParsedFile]) -> Graph {
        let mut nodes = Vec::new();
        for (fi, pf) in files.iter().enumerate() {
            for (gi, fd) in pf.fns.iter().enumerate() {
                nodes.push(FnNode {
                    file: fi,
                    fn_idx: gi,
                    symbol: fd.symbol(),
                });
            }
        }
        let rets = nodes
            .iter()
            .map(|n| files[n.file].fns[n.fn_idx].ret.clone())
            .collect();
        let mut g = Graph {
            edges: vec![Vec::new(); nodes.len()],
            roots: Vec::new(),
            envs: vec![BTreeMap::new(); nodes.len()],
            rets,
            method_index: BTreeMap::new(),
            free_index: BTreeMap::new(),
            trait_impls: BTreeMap::new(),
            traits: BTreeSet::new(),
            structs: BTreeMap::new(),
            copy_types: BTreeSet::new(),
            method_owners: BTreeMap::new(),
            nodes,
        };
        for pf in files {
            for (name, fields) in &pf.structs {
                g.structs.entry(name.clone()).or_default().extend(
                    fields.iter().map(|(k, v)| (k.clone(), v.clone())),
                );
            }
            g.copy_types.extend(pf.copy_types.iter().cloned());
            g.traits.extend(pf.traits_declared.iter().cloned());
        }
        for (ni, node) in g.nodes.iter().enumerate() {
            let fd = &files[node.file].fns[node.fn_idx];
            match &fd.owner {
                Some(owner) => {
                    g.method_index
                        .entry((owner.clone(), fd.name.clone()))
                        .or_default()
                        .push(ni);
                    g.method_owners
                        .entry(fd.name.clone())
                        .or_default()
                        .insert(owner.clone());
                    if let Some(tr) = &fd.trait_impl {
                        let impls = g.trait_impls.entry(tr.clone()).or_default();
                        if !impls.contains(owner) {
                            impls.push(owner.clone());
                        }
                    }
                }
                None => {
                    g.free_index
                        .entry(fd.name.clone())
                        .or_default()
                        .push(ni);
                }
            }
        }
        // Environments, then edges (edges consult envs for receiver types).
        for ni in 0..g.nodes.len() {
            g.envs[ni] = g.build_env(files, ni);
        }
        for ni in 0..g.nodes.len() {
            let mut out = g.calls_of(files, ni);
            out.sort_unstable();
            out.dedup();
            g.edges[ni] = out;
        }
        // Roots: named kernel entry points + Policy hot methods (impls and
        // trait default bodies).
        for (ni, node) in g.nodes.iter().enumerate() {
            let fd = &files[node.file].fns[node.fn_idx];
            if fd.body.is_none() {
                continue;
            }
            let named_root = HOT_ROOTS.contains(&node.symbol.as_str());
            let policy_impl = fd.trait_impl.as_deref() == Some("Policy")
                && POLICY_HOT_METHODS.contains(&fd.name.as_str());
            let policy_default = fd.in_trait
                && fd.owner.as_deref() == Some("Policy")
                && POLICY_HOT_METHODS.contains(&fd.name.as_str());
            if named_root || policy_impl || policy_default {
                g.roots.push(ni);
            }
        }
        g.roots
            .sort_by(|&a, &b| g.nodes[a].symbol.cmp(&g.nodes[b].symbol).then(a.cmp(&b)));
        g
    }

    /// The local typing environment for one function: parameters plus
    /// `let` bindings whose initializer type is inferable.
    fn build_env(&self, files: &[ParsedFile], ni: usize) -> BTreeMap<String, String> {
        let node = &self.nodes[ni];
        let pf = &files[node.file];
        let fd = &pf.fns[node.fn_idx];
        let mut env = BTreeMap::new();
        for (name, ty) in &fd.params {
            if !ty.is_empty() {
                env.insert(name.clone(), ty.clone());
            }
        }
        let Some((b0, b1)) = fd.body else {
            return env;
        };
        let body = &pf.text[b0..b1.min(pf.text.len())];
        for pos in word_occurrences(body, "let") {
            let mut k = pos + 3;
            if let Some((s, e, w)) = read_word_at(body, k) {
                if w == "mut" {
                    k = e;
                } else {
                    let _ = s;
                }
            }
            let Some((_, name_end, name)) = read_word_at(body, k) else {
                continue;
            };
            if KEYWORDS.contains(&name.as_str()) {
                continue;
            }
            let Some((p, c)) = next_nonws(body, name_end) else {
                continue;
            };
            let ty = match c {
                b':' if body.get(p + 1) != Some(&b':') => {
                    // `let name: Type = …`
                    let end = stmt_delim(body, p + 1);
                    let eq = eq_at_depth0(body, p + 1, end).unwrap_or(end);
                    core_type(&String::from_utf8_lossy(&body[p + 1..eq]))
                }
                b'=' if body.get(p + 1) != Some(&b'=') => {
                    let end = stmt_delim(body, p + 1);
                    self.expr_type(pf, &env, fd, body, p + 1, end)
                }
                _ => String::new(),
            };
            if !ty.is_empty() {
                env.insert(name, ty);
            }
        }
        env
    }

    /// Best-effort type of the expression in `body[from..end)`.
    fn expr_type(
        &self,
        pf: &ParsedFile,
        env: &BTreeMap<String, String>,
        fd: &FnDef,
        body: &[u8],
        from: usize,
        end: usize,
    ) -> String {
        let Some((start, c)) = next_nonws(body, from) else {
            return String::new();
        };
        if start >= end || (!is_ident_byte(c) || c.is_ascii_digit()) {
            return String::new();
        }
        // `Type::func(…)` / `module::func(…)` heads.
        if let Some((_, we, w)) = read_word_at(body, start) {
            if body.get(we) == Some(&b':') && body.get(we + 1) == Some(&b':') {
                if w.chars().next().is_some_and(|ch| ch.is_ascii_uppercase()) {
                    // Constructor-style call: the qualifier is the type.
                    return resolve_alias(pf, &w);
                }
                if let Some((_, me, m)) = read_word_at(body, we + 2) {
                    if next_nonws(body, me).is_some_and(|(_, ch)| ch == b'(') {
                        // `module::func(…)` → that free fn's return type.
                        if let Some(nodes) = self.free_index.get(&m) {
                            return self.node_ret(nodes);
                        }
                    }
                }
                return String::new();
            }
        }
        // Postfix chain: find the last `.ident(`/`.ident` step at depth 0
        // and resolve the chain up to and including it.
        let mut depth = 0i32;
        let mut last_dot: Option<usize> = None;
        let mut i = start;
        while i < end.min(body.len()) {
            match body[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'.' if depth == 0 => last_dot = Some(i),
                b'?' if depth == 0 => {}
                _ => {}
            }
            i += 1;
        }
        match last_dot {
            Some(dot) => {
                let Some((_, me, m)) = read_word_at(body, dot + 1) else {
                    return String::new();
                };
                let recv = self.chain_type(pf, env, fd, body, dot);
                let is_call = next_nonws(body, me).is_some_and(|(_, ch)| ch == b'(');
                match (recv, is_call) {
                    (Some(t), true) => self.method_ret(&t, &m),
                    (Some(t), false) => self.field_type(&t, &m),
                    (None, _) => String::new(),
                }
            }
            None => {
                // A bare identifier or call.
                let Some((_, we, w)) = read_word_at(body, start) else {
                    return String::new();
                };
                if next_nonws(body, we).is_some_and(|(_, ch)| ch == b'(') {
                    if w.chars().next().is_some_and(|ch| ch.is_ascii_uppercase()) {
                        return w; // tuple-struct constructor
                    }
                    if let Some(nodes) = self.free_index.get(&w) {
                        return self.node_ret(nodes);
                    }
                    return String::new();
                }
                env.get(&w).cloned().unwrap_or_default()
            }
        }
    }

    /// First non-empty return type among same-name definitions
    /// (deterministic: node order is file order).
    fn node_ret(&self, nodes: &[usize]) -> String {
        nodes
            .iter()
            .map(|&n| self.rets[n].clone())
            .find(|r| !r.is_empty())
            .unwrap_or_default()
    }

    fn field_type(&self, ty: &str, field: &str) -> String {
        self.structs
            .get(ty)
            .and_then(|f| f.get(field))
            .cloned()
            .unwrap_or_default()
    }

    fn method_ret(&self, ty: &str, method: &str) -> String {
        for (owner, m) in candidate_owners(ty, method, &self.trait_impls, &self.traits) {
            if let Some(nodes) = self.method_index.get(&(owner, m)) {
                let r = self.node_ret(nodes);
                if !r.is_empty() {
                    return r;
                }
            }
        }
        String::new()
    }

    /// Resolves the receiver type of the postfix chain ending at the `.`
    /// at `dot` (e.g. for `self.mem.space(sp).pte(vpn)`, called with the
    /// final dot, returns the type of `self.mem.space(sp)`).
    pub fn chain_type(
        &self,
        pf: &ParsedFile,
        env: &BTreeMap<String, String>,
        fd: &FnDef,
        body: &[u8],
        dot: usize,
    ) -> Option<String> {
        let segs = chain_before(body, dot)?;
        let mut it = segs.iter();
        let first = it.next()?;
        let mut ty = match first {
            Seg::Name(n) if n == "self" => self.owner_type(fd)?,
            Seg::Name(n) => env.get(n).cloned().filter(|t| !t.is_empty())?,
            Seg::Call(n) => {
                let nodes = self.free_index.get(n)?;
                let t = self.node_ret(nodes);
                if t.is_empty() {
                    return None;
                }
                t
            }
            Seg::QualCall(t, m) => {
                let t = resolve_alias(pf, t);
                let r = self.method_ret(&t, m);
                if r.is_empty() {
                    return None;
                }
                r
            }
        };
        for seg in it {
            ty = match seg {
                Seg::Name(f) => self.field_type(&ty, f),
                Seg::Call(m) => self.method_ret(&ty, m),
                Seg::QualCall(..) => String::new(),
            };
            if ty.is_empty() {
                return None;
            }
        }
        Some(ty)
    }

    fn owner_type(&self, fd: &FnDef) -> Option<String> {
        fd.owner.clone()
    }

    /// All call edges out of one function body.
    fn calls_of(&self, files: &[ParsedFile], ni: usize) -> Vec<usize> {
        let node = &self.nodes[ni];
        let pf = &files[node.file];
        let fd = &pf.fns[node.fn_idx];
        let env = &self.envs[ni];
        let Some((b0, b1)) = fd.body else {
            return Vec::new();
        };
        let text = &pf.text;
        let mut out = Vec::new();
        let mut i = b0;
        let b1 = b1.min(text.len());
        while i < b1 {
            let c = text[i];
            if !is_ident_byte(c) || c.is_ascii_digit() || (i > 0 && is_ident_byte(text[i - 1])) {
                i += 1;
                continue;
            }
            let start = i;
            let mut j = i;
            while j < b1 && is_ident_byte(text[j]) {
                j += 1;
            }
            i = j;
            let word = String::from_utf8_lossy(&text[start..j]).into_owned();
            if KEYWORDS.contains(&word.as_str()) {
                continue;
            }
            let Some((_, after)) = next_nonws(text, j) else {
                continue;
            };
            if after == b'!' {
                continue; // macro invocation
            }
            if after != b'(' {
                continue;
            }
            // Classify by what precedes the callee name.
            match prev_nonws(text, start) {
                Some((p, b'.')) => {
                    // Method call: type the receiver chain.
                    let recv = self.chain_type(pf, env, fd, text, p);
                    match recv {
                        Some(t) => out.extend(self.method_edges(&t, &word)),
                        None => out.extend(self.unique_fallback(&word)),
                    }
                }
                Some((p, b':')) if p > 0 && text[p - 1] == b':' => {
                    // `Qual::word(…)`.
                    let Some((_, qual)) = word_ending_before(text, p - 1) else {
                        continue;
                    };
                    if qual.chars().next().is_some_and(|ch| ch.is_ascii_uppercase()) {
                        let t = if qual == "Self" {
                            fd.owner.clone().unwrap_or_default()
                        } else {
                            resolve_alias(pf, &qual)
                        };
                        out.extend(self.method_edges(&t, &word));
                    } else {
                        // `module::func(…)` — free fn by name.
                        let real = pf.uses.get(&word).cloned().unwrap_or(word.clone());
                        out.extend(self.free_edges(files, node.file, &real));
                    }
                }
                _ => {
                    // Bare call: free fn (skip Uppercase constructors).
                    if word.chars().next().is_some_and(|ch| ch.is_ascii_lowercase() || ch == '_') {
                        let real = pf.uses.get(&word).cloned().unwrap_or(word.clone());
                        out.extend(self.free_edges(files, node.file, &real));
                    }
                }
            }
        }
        out
    }

    /// Free-function edges for `name`, preferring same-crate definitions
    /// when any exist (cuts cross-crate name collisions).
    fn free_edges(&self, files: &[ParsedFile], from_file: usize, name: &str) -> Vec<usize> {
        let Some(nodes) = self.free_index.get(name) else {
            return Vec::new();
        };
        let crate_dir = &files[from_file].crate_dir;
        let same: Vec<usize> = nodes
            .iter()
            .copied()
            .filter(|&n| files[self.nodes[n].file].crate_dir == *crate_dir)
            .collect();
        if same.is_empty() {
            nodes.clone()
        } else {
            same
        }
    }

    /// Edges for a method call on a receiver of known core type `ty`.
    pub fn method_edges(&self, ty: &str, method: &str) -> Vec<usize> {
        let mut out = Vec::new();
        for key in candidate_owners(ty, method, &self.trait_impls, &self.traits) {
            if let Some(nodes) = self.method_index.get(&key) {
                out.extend(nodes.iter().copied());
            }
        }
        // A struct whose method isn't inherent may get it from a trait
        // default body: `impl Trait for Type {}` with the body on the trait.
        if out.is_empty() {
            for (tr, impls) in &self.trait_impls {
                if impls.iter().any(|t| t == ty) {
                    if let Some(nodes) = self.method_index.get(&(tr.clone(), method.to_owned())) {
                        out.extend(nodes.iter().copied());
                    }
                }
            }
        }
        out
    }

    /// Unique-name fallback for calls on untyped receivers.
    fn unique_fallback(&self, method: &str) -> Vec<usize> {
        if COMMON_METHODS.contains(&method) {
            return Vec::new();
        }
        match self.method_owners.get(method) {
            Some(owners) if owners.len() == 1 => {
                let owner = owners.iter().next().cloned().unwrap_or_default();
                self.method_index
                    .get(&(owner, method.to_owned()))
                    .cloned()
                    .unwrap_or_default()
            }
            _ => Vec::new(),
        }
    }
}

/// Candidate `(owner, method)` keys for dispatch on `ty`: the type itself,
/// and — when `ty` is a workspace trait — every impl of it plus the trait's
/// own default bodies.
fn candidate_owners(
    ty: &str,
    method: &str,
    trait_impls: &BTreeMap<String, Vec<String>>,
    traits: &BTreeSet<String>,
) -> Vec<(String, String)> {
    let mut out = vec![(ty.to_owned(), method.to_owned())];
    if traits.contains(ty) {
        if let Some(impls) = trait_impls.get(ty) {
            for t in impls {
                out.push((t.clone(), method.to_owned()));
            }
        }
    }
    out
}

fn resolve_alias(pf: &ParsedFile, name: &str) -> String {
    pf.uses.get(name).cloned().unwrap_or_else(|| name.to_owned())
}

/// One step of a postfix receiver chain, front-to-back.
#[derive(Debug, PartialEq, Eq)]
enum Seg {
    /// Plain identifier (`self`, a local, or a field access).
    Name(String),
    /// Method/function call step `name(…)`.
    Call(String),
    /// Qualified call head `Type::name(…)`.
    QualCall(String, String),
}

/// Parses the postfix chain ending at the `.` at `dot`, back-to-front,
/// returning front-to-back segments. Gives up (None) on anything beyond
/// idents, calls, and one leading `Type::call(…)` head — parenthesized
/// expressions, indexing, literals.
fn chain_before(text: &[u8], dot: usize) -> Option<Vec<Seg>> {
    let mut segs: Vec<Seg> = Vec::new();
    let mut pos = dot; // looking at the byte just before `pos`
    loop {
        let (q, ch) = prev_nonws(text, pos)?;
        if is_ident_byte(ch) {
            let (start, name) = word_ending_at_checked(text, q + 1)?;
            // What precedes this ident?
            match prev_nonws(text, start) {
                Some((p, b'.')) => {
                    segs.push(Seg::Name(name));
                    pos = p;
                    continue;
                }
                Some((p, b':')) if p > 0 && text[p - 1] == b':' => {
                    // Qualified head must be `Type::ident` and `ident` is
                    // the chain root only if it's a field-like const — too
                    // ambiguous; bail.
                    return None;
                }
                _ => {
                    segs.push(Seg::Name(name));
                    break;
                }
            }
        } else if ch == b')' {
            let open = paren_back(text, q)?;
            let (start, name) = word_ending_before_checked(text, open)?;
            match prev_nonws(text, start) {
                Some((p, b'.')) => {
                    segs.push(Seg::Call(name));
                    pos = p;
                    continue;
                }
                Some((p, b':')) if p > 0 && text[p - 1] == b':' => {
                    let (_, qual) = word_ending_before_checked(text, p - 1)?;
                    if qual.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                        segs.push(Seg::QualCall(qual, name));
                        break;
                    }
                    return None;
                }
                _ => {
                    segs.push(Seg::Call(name));
                    break;
                }
            }
        } else {
            return None;
        }
    }
    segs.reverse();
    Some(segs)
}

fn word_ending_at_checked(text: &[u8], end: usize) -> Option<(usize, String)> {
    let mut start = end;
    while start > 0 && is_ident_byte(text[start - 1]) {
        start -= 1;
    }
    (start < end && !text[start].is_ascii_digit()).then(|| {
        (
            start,
            String::from_utf8_lossy(&text[start..end]).into_owned(),
        )
    })
}

fn word_ending_before(text: &[u8], pos: usize) -> Option<(usize, String)> {
    let (q, ch) = prev_nonws(text, pos)?;
    if !is_ident_byte(ch) {
        return None;
    }
    word_ending_at_checked(text, q + 1)
}

fn word_ending_before_checked(text: &[u8], pos: usize) -> Option<(usize, String)> {
    word_ending_before(text, pos)
}

fn paren_back(text: &[u8], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = close + 1;
    while i > 0 {
        i -= 1;
        match text[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn read_word_at(text: &[u8], from: usize) -> Option<(usize, usize, String)> {
    let (start, c) = next_nonws(text, from)?;
    if !is_ident_byte(c) || c.is_ascii_digit() {
        return None;
    }
    let mut end = start;
    while end < text.len() && is_ident_byte(text[end]) {
        end += 1;
    }
    Some((
        start,
        end,
        String::from_utf8_lossy(&text[start..end]).into_owned(),
    ))
}

/// First `;`, `{`, or top-level `,` after `from` — the end of a `let`
/// initializer expression.
fn stmt_delim(body: &[u8], from: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < body.len() {
        match body[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b';' if depth <= 0 => return i,
            b'{' if depth <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    body.len()
}

/// Offset of a top-level `=` (not `==`, `<=`, etc.) in `body[from..end)`.
fn eq_at_depth0(body: &[u8], from: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = from;
    let end = end.min(body.len());
    while i < end {
        match body[i] {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth -= 1,
            b'=' if depth <= 0 => {
                let prev_op = i > from
                    && matches!(body[i - 1], b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/');
                let next_eq = body.get(i + 1) == Some(&b'=');
                if !prev_op && !next_eq {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// BFS reachability from the graph's roots, with parent pointers so any
/// reached node can be rendered as a root→…→node chain.
pub struct Reach {
    /// Parent node per reached node (roots have none).
    pub parent: Vec<Option<usize>>,
    /// Whether each node is reachable from a root.
    pub seen: Vec<bool>,
}

impl Reach {
    /// Computes reachability over `graph`.
    pub fn compute(graph: &Graph) -> Reach {
        let mut seen = vec![false; graph.nodes.len()];
        let mut parent = vec![None; graph.nodes.len()];
        let mut q = VecDeque::new();
        for &r in &graph.roots {
            if !seen[r] {
                seen[r] = true;
                q.push_back(r);
            }
        }
        while let Some(n) = q.pop_front() {
            for &m in &graph.edges[n] {
                if !seen[m] {
                    seen[m] = true;
                    parent[m] = Some(n);
                    q.push_back(m);
                }
            }
        }
        Reach { parent, seen }
    }

    /// Node chain root→…→`node` (inclusive).
    pub fn chain(&self, node: usize) -> Vec<usize> {
        let mut out = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent[cur] {
            out.push(p);
            cur = p;
            if out.len() > 1024 {
                break; // defensive: parent pointers cannot cycle, but cap anyway
            }
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::scrub::scrub;

    fn build(srcs: &[(&str, &str, &str)]) -> (Vec<ParsedFile>, Graph) {
        let files: Vec<ParsedFile> = srcs
            .iter()
            .map(|(rel, crate_dir, src)| parse_file(rel, crate_dir, scrub(src)))
            .collect();
        let g = Graph::build(&files);
        (files, g)
    }

    fn node(g: &Graph, sym: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.symbol == sym)
            .unwrap_or_else(|| panic!("no node {sym}"))
    }

    fn has_edge(g: &Graph, from: &str, to: &str) -> bool {
        g.edges[node(g, from)].contains(&node(g, to))
    }

    #[test]
    fn self_method_and_field_chain_edges() {
        let (_f, g) = build(&[(
            "a.rs",
            "core",
            "struct Q { h: u64 } impl Q { fn push(&mut self, x: u64) { self.h += x; } }\n\
             struct K { events: Q }\n\
             impl K {\n\
               fn fault(&mut self) { self.step(); self.events.push(1); }\n\
               fn step(&mut self) {}\n\
             }\n",
        )]);
        assert!(has_edge(&g, "K::fault", "K::step"));
        assert!(has_edge(&g, "K::fault", "Q::push"), "field-typed receiver");
    }

    #[test]
    fn trait_object_field_fans_out_to_impls() {
        let (_f, g) = build(&[(
            "a.rs",
            "core",
            "trait Policy { fn reclaim(&mut self) -> u32; fn warm(&mut self) { self.reclaim(); } }\n\
             struct Clock; impl Policy for Clock { fn reclaim(&mut self) -> u32 { 1 } }\n\
             struct Lru; impl Policy for Lru { fn reclaim(&mut self) -> u32 { 2 } }\n\
             struct K { policy: Box<dyn Policy> }\n\
             impl K { fn fault(&mut self) { self.policy.reclaim(); } }\n",
        )]);
        assert!(has_edge(&g, "K::fault", "Clock::reclaim"));
        assert!(has_edge(&g, "K::fault", "Lru::reclaim"));
        // Trait default bodies dispatch back through impls too.
        assert!(has_edge(&g, "Policy::warm", "Clock::reclaim"));
    }

    #[test]
    fn use_renames_resolve_free_and_type_calls() {
        let (_f, g) = build(&[
            (
                "util.rs",
                "util",
                "pub fn helper_a() { helper_b(); } pub fn helper_b() {}",
            ),
            (
                "k.rs",
                "core",
                "use crate::util::helper_a as ha;\n\
                 use crate::q::Queue as Q;\n\
                 struct Queue; impl Queue { fn push_raw(&mut self) {} }\n\
                 impl K { fn fault(&mut self) { ha(); Q::push_raw(); } }\n\
                 struct K;\n",
            ),
        ]);
        assert!(has_edge(&g, "K::fault", "helper_a"), "use-renamed free fn");
        assert!(has_edge(&g, "helper_a", "helper_b"));
        assert!(
            has_edge(&g, "K::fault", "Queue::push_raw"),
            "use-renamed type-qualified call"
        );
    }

    #[test]
    fn recursion_cycles_terminate_with_stable_chains() {
        let (_f, g) = build(&[(
            "a.rs",
            "core",
            "impl Kernel {\n\
               fn fault(&mut self) { ping(); }\n\
             }\n\
             struct Kernel;\n\
             fn ping() { pong(); }\n\
             fn pong() { ping(); }\n",
        )]);
        let reach = Reach::compute(&g);
        let pong = node(&g, "pong");
        assert!(reach.seen[pong]);
        let syms: Vec<&str> = reach
            .chain(pong)
            .into_iter()
            .map(|n| g.nodes[n].symbol.as_str())
            .collect();
        assert_eq!(syms, vec!["Kernel::fault", "ping", "pong"]);
    }

    #[test]
    fn untyped_receiver_unique_fallback_skips_common_names() {
        let (_f, g) = build(&[(
            "a.rs",
            "core",
            "struct Ring; impl Ring { fn enqueue_special(&mut self) {} fn push(&mut self) {} }\n\
             impl Kernel { fn fault(&mut self) { self.mystery.enqueue_special(); self.mystery.push(); } }\n\
             struct Kernel;\n",
        )]);
        assert!(
            has_edge(&g, "Kernel::fault", "Ring::enqueue_special"),
            "unique name links"
        );
        assert!(
            !has_edge(&g, "Kernel::fault", "Ring::push"),
            "common std name must not link on an untyped receiver"
        );
    }

    #[test]
    fn local_let_bindings_type_receivers() {
        let (files, g) = build(&[(
            "a.rs",
            "core",
            "struct Out { victims: Vec<u64> }\n\
             impl Out { fn grow(&mut self) {} }\n\
             impl Kernel { fn fault(&mut self) { let out = Out::default(); out.grow(); } }\n\
             struct Kernel;\n",
        )]);
        let ni = node(&g, "Kernel::fault");
        assert_eq!(g.envs[ni].get("out").map(String::as_str), Some("Out"));
        let _ = files;
        assert!(has_edge(&g, "Kernel::fault", "Out::grow"));
    }
}
