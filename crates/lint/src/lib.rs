//! # pagesim-lint
//!
//! Determinism/soundness static analysis for the pagesim workspace — the
//! build-time analog of Linux's `CONFIG_DEBUG_VM`: unsound simulator
//! changes should *fail to merge*, not corrupt characterization data.
//!
//! The repo's core contract is that figure output is byte-identical for
//! any `--jobs` count, cache state, or completion order, and (ROADMAP
//! item 1) that the fault/reclaim loops run at millions of pages per
//! second. Both are easy to break silently: one `.iter()` over a
//! `HashMap`, one `Instant::now()` hidden a helper away, one `format!`
//! per fault. This crate enforces the rule catalog below.
//!
//! ## Rule catalog
//!
//! File-scoped determinism rules (as in PR 3):
//!
//! | rule | id             | what it forbids |
//! |------|----------------|-----------------|
//! | L1   | `hash-iter`    | iterating `HashMap`/`HashSet` state in sim crates |
//! | L2   | `wall-clock`   | ambient time/entropy: `Instant::now`, `SystemTime`, `thread_rng`, `RandomState`, `OsRng` in sim crates |
//! | L3   | `thread-spawn` | `thread::spawn`/`scope`/`Builder` anywhere except `pagesim-bench::sweep` |
//! | L4   | `lint-header`  | a workspace member without `[lints] workspace = true`, or a root manifest without the `unsafe_code = "forbid"` deny table |
//! | L5   | `hot-unwrap`   | `.unwrap()`/`.expect(…)` on kernel hot-path files |
//! | L6   | `catch-unwind` | `catch_unwind` outside the sweep executor's isolation module |
//!
//! Call-graph rules, scoped to the *hot-path cone* — every function
//! transitively reachable from `Kernel::fault`, the reclaim/aging entry
//! points, or a `Policy` impl's hot methods (see [`graph::HOT_ROOTS`]):
//! L1/L2 constructs anywhere in the cone are reported with the full
//! root→…→function call chain, and the H-series hygiene rules apply:
//!
//! | rule | id               | what it forbids in the cone |
//! |------|------------------|------------------------------|
//! | H1   | `hot-alloc`      | heap allocation: `Box::new`, growth methods on std containers, `vec!`/`format!`, `.collect()`, `.to_owned()` family |
//! | H2   | `hot-clone`      | `.clone()` of non-`Copy` types |
//! | H3   | `hot-dyn`        | introducing `dyn` dispatch inside cone function bodies |
//! | H4   | `hot-float`      | `f32`/`f64` outside `pagesim-stats` |
//!
//! Plus one workspace-wide soundness rule:
//!
//! | rule | id               | what it requires |
//! |------|------------------|------------------|
//! | U1   | `safety-comment` | every `unsafe` block carries a preceding `// SAFETY:` comment (vendored stand-ins exempt) |
//!
//! A finding can be waived in place with an annotation **carrying a
//! reason**, on the same line or the line above:
//!
//! ```text
//! // lint: allow(hash-iter) drained under a sort before use
//! ```
//!
//! An annotation without a reason does not suppress anything. Pre-existing
//! H-series findings live in the ratcheted `lint-baseline.toml` instead
//! (see [`baseline`]): baselined findings warn, new ones fail, and fixed
//! ones must be removed from the baseline or the lint fails as stale.
//!
//! ## How it works
//!
//! Source is *scrubbed* (comments/strings blanked byte-for-byte, see
//! [`scrub`]), `#[cfg(test)]` items are stripped, a lightweight item
//! parser ([`parse`]) extracts `fn`/`impl`/`use`/`struct` structure, and
//! a name-resolved call graph ([`graph`]) computes the hot-path cone via
//! BFS with parent pointers — so every cone finding renders its chain.
//! The pass is a tripwire, not a verifier: resolution approximations are
//! documented in DESIGN.md, and the `sanitize` runtime feature backstops
//! what the static pass cannot see.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod graph;
pub mod parse;
pub mod rules;
pub mod sarif;
mod scrub;

pub use scrub::scrub;

use graph::{Graph, Reach};
use parse::ParsedFile;
use scrub::{strip_cfg_gated, LineIndex};

/// The enforced rules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// L1: no iteration over hash-ordered containers in sim crates.
    HashIter,
    /// L2: no wall-clock or ambient-entropy sources in sim crates.
    WallClock,
    /// L3: no thread creation outside `pagesim-bench::sweep`.
    ThreadSpawn,
    /// L4: every member opts into the workspace deny-lint table.
    LintHeader,
    /// L5: no `.unwrap()`/`.expect()` on kernel hot paths.
    HotUnwrap,
    /// L6: no `catch_unwind` outside the sanctioned isolation module.
    CatchUnwind,
    /// H1: no heap allocation in the fault/reclaim cone.
    HotAlloc,
    /// H2: no `.clone()` of non-`Copy` types in the cone.
    HotClone,
    /// H3: no `dyn` dispatch introduced inside cone function bodies.
    HotDyn,
    /// H4: no `f32`/`f64` in the cone outside `pagesim-stats`.
    HotFloat,
    /// U1: every `unsafe` block requires a `// SAFETY:` comment.
    SafetyComment,
}

impl Rule {
    /// Every rule, in catalog order.
    pub const ALL: &'static [Rule] = &[
        Rule::HashIter,
        Rule::WallClock,
        Rule::ThreadSpawn,
        Rule::LintHeader,
        Rule::HotUnwrap,
        Rule::CatchUnwind,
        Rule::HotAlloc,
        Rule::HotClone,
        Rule::HotDyn,
        Rule::HotFloat,
        Rule::SafetyComment,
    ];

    /// Short annotation id, as used in `// lint: allow(<id>) <reason>`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::LintHeader => "lint-header",
            Rule::HotUnwrap => "hot-unwrap",
            Rule::CatchUnwind => "catch-unwind",
            Rule::HotAlloc => "hot-alloc",
            Rule::HotClone => "hot-clone",
            Rule::HotDyn => "hot-dyn",
            Rule::HotFloat => "hot-float",
            Rule::SafetyComment => "safety-comment",
        }
    }

    /// Stable rule code (`L1`..`L6`, `H1`..`H4`, `U1`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::HashIter => "L1",
            Rule::WallClock => "L2",
            Rule::ThreadSpawn => "L3",
            Rule::LintHeader => "L4",
            Rule::HotUnwrap => "L5",
            Rule::CatchUnwind => "L6",
            Rule::HotAlloc => "H1",
            Rule::HotClone => "H2",
            Rule::HotDyn => "H3",
            Rule::HotFloat => "H4",
            Rule::SafetyComment => "U1",
        }
    }

    /// One-line description for the SARIF rule catalog.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::HashIter => "No iteration over hash-ordered containers in sim crates",
            Rule::WallClock => "No wall-clock or ambient-entropy sources in sim crates",
            Rule::ThreadSpawn => "No thread creation outside the deterministic sweep executor",
            Rule::LintHeader => "Workspace members must opt into the deny-lint table",
            Rule::HotUnwrap => "No unwrap/expect on SimError hot paths",
            Rule::CatchUnwind => "No catch_unwind outside the sanctioned isolation module",
            Rule::HotAlloc => "No heap allocation in the fault/reclaim cone",
            Rule::HotClone => "No clone of non-Copy types in the fault/reclaim cone",
            Rule::HotDyn => "No dyn dispatch introduced inside the fault/reclaim cone",
            Rule::HotFloat => "No f32/f64 in the fault/reclaim cone outside pagesim-stats",
            Rule::SafetyComment => "Every unsafe block requires a preceding SAFETY: comment",
        }
    }
}

/// One function hop along a root→…→construct call chain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChainHop {
    /// `Owner::name` symbol of the function.
    pub symbol: String,
    /// Workspace-relative file the function is defined in.
    pub file: String,
    /// 1-based line of the function definition.
    pub line: u32,
}

/// One rule violation at a source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Path of the offending file (workspace-relative when produced by
    /// [`lint_workspace`]).
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Enclosing function symbol (`Owner::name`), when known.
    pub symbol: String,
    /// Hot-path call chain root→…→enclosing function, for cone findings.
    pub chain: Vec<ChainHop>,
}

impl Finding {
    fn new(rule: Rule, file: &str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_owned(),
            line,
            message,
            symbol: String::new(),
            chain: Vec::new(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}: {}",
            self.rule.code(),
            self.rule.id(),
            self.file,
            self.line,
            self.message
        )?;
        if !self.chain.is_empty() {
            let path: Vec<&str> = self.chain.iter().map(|h| h.symbol.as_str()).collect();
            write!(f, " [chain: {}]", path.join(" -> "))?;
        }
        Ok(())
    }
}

/// Which source rules apply to a file (L4 is manifest-level, and the
/// graph/H/U rules are workspace-level; all are handled by
/// [`lint_workspace`]).
#[derive(Clone, Copy, Default, Debug)]
pub struct RuleSet {
    /// Apply L1 (`hash-iter`).
    pub hash_iter: bool,
    /// Apply L2 (`wall-clock`).
    pub wall_clock: bool,
    /// Apply L3 (`thread-spawn`).
    pub thread_spawn: bool,
    /// Apply L5 (`hot-unwrap`).
    pub hot_unwrap: bool,
    /// Apply L6 (`catch-unwind`).
    // lint: allow(catch-unwind) rule metadata field, not a panic catch
    pub catch_unwind: bool,
}

/// Workspace members whose sources carry the full determinism rule set
/// (directory names under `crates/`).
pub const SIM_CRATES: &[&str] = &[
    "core",
    "engine",
    "kv",
    "mem",
    "policy",
    "stats",
    "swap",
    "trace",
    "workloads",
];

/// Workspace-relative files on the `SimError` hot path (fault handling,
/// reclaim, swap I/O) where L5 forbids `.unwrap()`/`.expect()`.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/kernel.rs",
    "crates/swap/src/device.rs",
    "crates/swap/src/slots.rs",
];

/// The one file allowed to create threads: the deterministic sweep
/// executor.
pub const THREAD_EXEMPT_FILES: &[&str] = &["crates/bench/src/sweep/mod.rs"];

/// The one file allowed to call `catch_unwind`: the sweep executor's
/// per-trial isolation module, where the swallow-a-panic policy is
/// documented and auditable in one place. Everywhere else a panic is a
/// broken invariant and must propagate (L6).
pub const UNWIND_EXEMPT_FILES: &[&str] = &["crates/bench/src/sweep/isolation.rs"];

/// Computes the rule set for a file, given its crate directory name (under
/// `crates/`) and workspace-relative path.
pub fn rules_for(crate_dir: &str, rel_path: &str) -> RuleSet {
    let sim = SIM_CRATES.contains(&crate_dir);
    RuleSet {
        hash_iter: sim,
        wall_clock: sim,
        thread_spawn: !THREAD_EXEMPT_FILES.contains(&rel_path),
        hot_unwrap: HOT_PATH_FILES.contains(&rel_path),
        // lint: allow(catch-unwind) rule metadata field, not a panic catch
        catch_unwind: !UNWIND_EXEMPT_FILES.contains(&rel_path),
    }
}

// ---------------------------------------------------------------------
// Allow annotations
// ---------------------------------------------------------------------

/// Parsed `// lint: allow(<id>) <reason>` annotations, keyed by 1-based
/// line. The bool records whether a non-empty reason was given — reasons
/// are mandatory for the annotation to suppress anything.
fn allow_annotations(src: &str) -> BTreeMap<u32, Vec<(String, bool)>> {
    let mut map: BTreeMap<u32, Vec<(String, bool)>> = BTreeMap::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("lint: allow(") else {
            continue;
        };
        let rest = &line[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let id = rest[..close].trim().to_owned();
        let reason = rest[close + 1..].trim();
        map.entry(idx as u32 + 1)
            .or_default()
            .push((id, !reason.is_empty()));
    }
    map
}

fn is_allowed(annotations: &BTreeMap<u32, Vec<(String, bool)>>, rule: Rule, line: u32) -> bool {
    [line, line.saturating_sub(1)].iter().any(|l| {
        annotations
            .get(l)
            .is_some_and(|v| v.iter().any(|(id, ok)| *ok && id == rule.id()))
    })
}

/// Runs the applicable per-file source rules over one file's contents.
pub fn lint_source(rules: RuleSet, file: &str, source: &str) -> Vec<Finding> {
    let annotations = allow_annotations(source);
    let mut text = scrub(source);
    strip_cfg_gated(&mut text, source);
    let lines = LineIndex::new(&text);
    let mut constructs = Vec::new();
    if rules.hash_iter {
        constructs.extend(rules::detect_hash_iter(&text));
    }
    if rules.wall_clock {
        constructs.extend(rules::detect_wall_clock(&text));
    }
    if rules.thread_spawn {
        constructs.extend(rules::detect_thread_spawn(&text));
    }
    if rules.hot_unwrap {
        constructs.extend(rules::detect_hot_unwrap(&text));
    }
    // lint: allow(catch-unwind) rule metadata field, not a panic catch
    if rules.catch_unwind {
        constructs.extend(rules::detect_catch_unwind(&text));
    }
    let mut found: Vec<Finding> = constructs
        .into_iter()
        .map(|c| Finding::new(c.rule, file, lines.line_of(c.offset), c.message))
        .collect();
    found.retain(|f| !is_allowed(&annotations, f.rule, f.line));
    found.sort_by_key(|a| (a.line, a.rule));
    found
}

// ---------------------------------------------------------------------
// Workspace scan
// ---------------------------------------------------------------------

/// Result of a whole-workspace scan.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceReport {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Rust sources scanned.
    pub files_scanned: usize,
    /// Functions in the call graph.
    pub functions: usize,
    /// Functions inside the hot-path cone.
    pub reachable: usize,
}

/// L4: manifest checks — the root deny table and each member's opt-in.
fn check_manifests(root: &Path, crate_dirs: &[PathBuf], out: &mut Vec<Finding>) {
    let root_manifest = root.join("Cargo.toml");
    let root_text = std::fs::read_to_string(&root_manifest).unwrap_or_default();
    if !toml_section_has(&root_text, "[workspace.lints.rust]", "unsafe_code", "forbid") {
        out.push(Finding::new(
            Rule::LintHeader,
            "Cargo.toml",
            1,
            "workspace root must define `[workspace.lints.rust]` with \
             `unsafe_code = \"forbid\"`"
                .to_owned(),
        ));
    }
    for dir in crate_dirs {
        let manifest = dir.join("Cargo.toml");
        let text = std::fs::read_to_string(&manifest).unwrap_or_default();
        if !toml_section_has(&text, "[lints]", "workspace", "true") {
            let rel = manifest
                .strip_prefix(root)
                .unwrap_or(&manifest)
                .to_string_lossy()
                .into_owned();
            out.push(Finding::new(
                Rule::LintHeader,
                &rel,
                1,
                "workspace member must opt into the deny-lint table with \
                 `[lints] workspace = true`"
                    .to_owned(),
            ));
        }
    }
}

/// Whether `section` in `toml` contains a `key = value`-ish line (string
/// quotes on the value optional). Hand-rolled: the offline build has no
/// toml parser, and Cargo manifests in this repo are plain.
fn toml_section_has(toml: &str, section: &str, key: &str, value: &str) -> bool {
    let mut in_section = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == section;
            continue;
        }
        if !in_section {
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            continue;
        };
        if k.trim() == key && v.trim().trim_matches('"') == value {
            return true;
        }
    }
    false
}

fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        children.sort();
        for p in children {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Scans the whole workspace rooted at `root`: every member under
/// `crates/*` plus the umbrella `src/`. Runs the per-file rules
/// ([`rules_for`]) and L4 manifest checks, then parses every file, builds
/// the workspace call graph, and applies the graph rules: transitive
/// L1/L2 with chains, the H-series in the hot-path cone, and U1
/// everywhere. `vendor/*` stand-ins are external code and are skipped.
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    check_manifests(root, &crate_dirs, &mut report.findings);

    // Pass 1: read + per-file rules + parse.
    let mut parsed: Vec<ParsedFile> = Vec::new();
    let mut annotations: Vec<BTreeMap<u32, Vec<(String, bool)>>> = Vec::new();
    let mut per_file: Vec<Finding> = Vec::new();
    {
        let mut scan = |crate_dir: &str, src_dir: &Path| {
            for path in rust_sources(src_dir) {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let rules = rules_for(crate_dir, &rel);
                let Ok(source) = std::fs::read_to_string(&path) else {
                    continue;
                };
                report.files_scanned += 1;
                per_file.extend(lint_source(rules, &rel, &source));
                let mut text = scrub(&source);
                strip_cfg_gated(&mut text, &source);
                let ann = allow_annotations(&source);
                // U1 applies to every workspace crate (vendor/ unscanned).
                let lines = LineIndex::new(&text);
                for c in rules::detect_missing_safety(&text, &lines, &source) {
                    let line = lines.line_of(c.offset);
                    if !is_allowed(&ann, c.rule, line) {
                        per_file.push(Finding::new(c.rule, &rel, line, c.message));
                    }
                }
                parsed.push(parse::parse_file(&rel, crate_dir, text));
                annotations.push(ann);
            }
        };
        for dir in &crate_dirs {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            scan(&name, &dir.join("src"));
        }
        scan("repro-umbrella", &root.join("src"));
    }

    // Pass 2: call graph + cone rules.
    let g = Graph::build(&parsed);
    let reach = Reach::compute(&g);
    report.functions = g.nodes.len();
    report.reachable = reach.seen.iter().filter(|&&s| s).count();
    let line_indexes: Vec<LineIndex> = parsed.iter().map(|p| LineIndex::new(&p.text)).collect();
    // L1/L2 constructs per file, computed once and attributed to cone fns.
    let mut l12_cache: BTreeMap<usize, Vec<rules::Construct>> = BTreeMap::new();
    let mut graph_findings: Vec<Finding> = Vec::new();
    for ni in 0..g.nodes.len() {
        if !reach.seen[ni] {
            continue;
        }
        let fi = g.nodes[ni].file;
        let pf = &parsed[fi];
        let fd = &pf.fns[g.nodes[ni].fn_idx];
        let Some((_, body_end)) = fd.body else {
            continue;
        };
        let lines = &line_indexes[fi];
        let chain: Vec<ChainHop> = reach
            .chain(ni)
            .into_iter()
            .map(|n| {
                let def = g.def(&parsed, n);
                ChainHop {
                    symbol: g.nodes[n].symbol.clone(),
                    file: parsed[g.nodes[n].file].rel.clone(),
                    line: def.line,
                }
            })
            .collect();
        let l12 = l12_cache.entry(fi).or_insert_with(|| {
            let mut v = rules::detect_hash_iter(&pf.text);
            v.extend(rules::detect_wall_clock(&pf.text));
            v
        });
        let mut constructs: Vec<rules::Construct> = l12
            .iter()
            .filter(|c| c.offset >= fd.sig.0 && c.offset < body_end)
            .cloned()
            .collect();
        constructs.extend(rules::detect_hot_constructs(&g, &parsed, ni));
        for c in constructs {
            let line = lines.line_of(c.offset);
            if is_allowed(&annotations[fi], c.rule, line) {
                continue;
            }
            graph_findings.push(Finding {
                rule: c.rule,
                file: pf.rel.clone(),
                line,
                message: c.message,
                symbol: g.nodes[ni].symbol.clone(),
                chain: chain.clone(),
            });
        }
    }

    // Merge: graph findings (with symbol + chain) win over per-file
    // duplicates at the same (file, line, rule).
    let mut merged: BTreeMap<(String, u32, Rule), Finding> = BTreeMap::new();
    for f in per_file {
        merged.insert((f.file.clone(), f.line, f.rule), f);
    }
    for f in graph_findings {
        merged.insert((f.file.clone(), f.line, f.rule), f);
    }
    // H4 fires once per float token; collapse duplicates per line (the
    // merge key already does this).
    report.findings.extend(merged.into_values());
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: RuleSet = RuleSet {
        hash_iter: true,
        wall_clock: true,
        thread_spawn: true,
        hot_unwrap: false,
        catch_unwind: true,
    };

    #[test]
    fn scrubbing_blanks_comments_and_strings() {
        let src = "let a = \"HashMap::new()\"; // HashMap\n/* HashSet */ let b = 1;\n";
        let s = scrub(src);
        let text = String::from_utf8_lossy(&s);
        assert!(!text.contains("HashMap"));
        assert!(!text.contains("HashSet"));
        assert_eq!(text.matches('\n').count(), 2);
    }

    #[test]
    fn raw_strings_and_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) { let _ = r#\"thread_rng\"#; }";
        let s = scrub(src);
        let text = String::from_utf8_lossy(&s);
        assert!(!text.contains("thread_rng"));
        assert!(text.contains("fn f<"));
    }

    #[test]
    fn hash_iteration_is_flagged_with_line() {
        let src = "struct S { m: std::collections::HashMap<u32, u32> }\n\
                   impl S { fn f(&self) {\n\
                   for x in self.m.values() { drop(x); }\n\
                   } }\n";
        let found = lint_source(SIM, "x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::HashIter);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn hash_membership_ops_are_fine() {
        let src = "struct S { m: std::collections::HashMap<u32, u32> }\n\
                   impl S { fn f(&mut self) {\n\
                   self.m.insert(1, 2); let _ = self.m.get(&1); self.m.remove(&1);\n\
                   } }\n";
        assert!(lint_source(SIM, "x.rs", src).is_empty());
    }

    #[test]
    fn allow_annotation_requires_reason() {
        let with_reason = "fn f() { let t = std::time::SystemTime::now(); } \
                           // lint: allow(wall-clock) host timing printed to stderr only\n";
        assert!(lint_source(SIM, "x.rs", with_reason).is_empty());
        let without =
            "fn f() { let t = std::time::SystemTime::now(); } // lint: allow(wall-clock)\n";
        assert_eq!(lint_source(SIM, "x.rs", without).len(), 1);
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "fn main() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { let _ = rand::thread_rng(); }\n\
                   }\n";
        assert!(lint_source(SIM, "x.rs", src).is_empty());
    }

    #[test]
    fn sanitize_gated_items_are_exempt() {
        // Sanitizer-only impls, statements, and struct fields are compiled
        // out of figure runs; the lint strips them like cfg(test) items.
        let src = "struct S { m: std::collections::HashMap<u32, u32>,\n\
                   #[cfg(feature = \"sanitize\")]\n\
                   tick: std::cell::Cell<u64>,\n\
                   }\n\
                   #[cfg(feature = \"sanitize\")]\n\
                   impl S { fn check(&self) { for x in self.m.values() { drop(x); } } }\n\
                   #[cfg(any(test, feature = \"sanitize\"))]\n\
                   fn audit() { let _ = std::time::SystemTime::now(); }\n\
                   impl S { fn hot(&mut self) { self.m.insert(1, 2); } }\n";
        assert!(lint_source(SIM, "x.rs", src).is_empty(), "{:?}", lint_source(SIM, "x.rs", src));
        // A marker mentioned inside a comment or string is not an
        // attribute: the item after it still lints.
        let commented = "// #[cfg(feature = \"sanitize\")] strips the next item\n\
                         struct S { m: std::collections::HashMap<u32, u32> }\n\
                         impl S { fn f(&self) { for x in self.m.values() { drop(x); } } }\n";
        assert_eq!(lint_source(SIM, "x.rs", commented).len(), 1);
    }

    #[test]
    fn catch_unwind_is_flagged_in_imports_and_calls() {
        let src = "use std::panic::catch_unwind;\n\
                   fn f() { let _ = catch_unwind(|| 1); }\n";
        let found = lint_source(SIM, "x.rs", src);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::CatchUnwind));
        // The sanctioned isolation module is exempt by path.
        let rules = rules_for("bench", "crates/bench/src/sweep/isolation.rs");
        assert!(!rules.catch_unwind);
        assert!(rules_for("bench", "crates/bench/src/sweep/mod.rs").catch_unwind);
    }

    #[test]
    fn toml_section_matcher() {
        let toml = "[package]\nname = \"x\"\n[lints]\nworkspace = true\n";
        assert!(toml_section_has(toml, "[lints]", "workspace", "true"));
        assert!(!toml_section_has(toml, "[lints]", "workspace", "false"));
        assert!(!toml_section_has("[package]\n", "[lints]", "workspace", "true"));
    }

    #[test]
    fn rule_codes_and_ids_are_stable() {
        let codes: Vec<&str> = Rule::ALL.iter().map(|r| r.code()).collect();
        assert_eq!(
            codes,
            vec!["L1", "L2", "L3", "L4", "L5", "L6", "H1", "H2", "H3", "H4", "U1"]
        );
        for r in Rule::ALL {
            assert!(!r.id().is_empty() && !r.describe().is_empty());
        }
    }
}
