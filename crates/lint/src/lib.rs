//! # pagesim-lint
//!
//! Determinism/soundness static analysis for the pagesim workspace — the
//! build-time analog of Linux's `CONFIG_DEBUG_VM`: unsound simulator
//! changes should *fail to merge*, not corrupt characterization data.
//!
//! The repo's core contract is that figure output is byte-identical for
//! any `--jobs` count, cache state, or completion order. That contract is
//! easy to break silently: one `.iter()` over a `HashMap` on a sim path,
//! one `Instant::now()` folded into a metric, one stray thread. This crate
//! enforces six rules over the sim crates:
//!
//! | rule | id             | what it forbids |
//! |------|----------------|-----------------|
//! | L1   | `hash-iter`    | iterating `HashMap`/`HashSet` state (`iter`, `keys`, `values`, `drain`, `into_iter`, `retain`, `for … in`) in sim crates |
//! | L2   | `wall-clock`   | ambient time/entropy: `Instant::now`, `SystemTime`, `thread_rng`, `RandomState`, `OsRng` in sim crates |
//! | L3   | `thread-spawn` | `thread::spawn`/`scope`/`Builder` anywhere except `pagesim-bench::sweep` |
//! | L4   | `lint-header`  | a workspace member without `[lints] workspace = true`, or a root manifest without the `unsafe_code = "forbid"` deny table |
//! | L5   | `hot-unwrap`   | `.unwrap()`/`.expect(…)` on kernel hot-path files (fault handling, reclaim, swap I/O) — errors must propagate as typed `SimError`s |
//! | L6   | `catch-unwind` | `catch_unwind` anywhere except the sweep executor's sanctioned isolation module — ad-hoc panic swallowing hides broken invariants |
//!
//! A finding can be waived in place with an annotation **carrying a
//! reason**, on the same line or the line above:
//!
//! ```text
//! // lint: allow(hash-iter) drained under a sort before use
//! ```
//!
//! An annotation without a reason does not suppress anything.
//!
//! ## How it works
//!
//! The analyzer is a token-level pass, not a full type checker (the
//! offline build has no `syn`): source is *scrubbed* — comments, string
//! and char literals blanked byte-for-byte so line numbers survive —
//! `#[cfg(test)]` items are stripped, and rules match against the
//! remaining tokens. L1 tracks identifiers bound to `HashMap`/`HashSet`
//! through declarations (`name: HashMap<…>`, `let name = HashMap::new()`)
//! and flags iteration through those names. The pass is a tripwire, not a
//! verifier: it can miss a hash container laundered through a type alias,
//! but it catches the way this code is actually written — and the
//! `sanitize` runtime feature backstops what the static pass cannot see.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The six enforced rules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// L1: no iteration over hash-ordered containers in sim crates.
    HashIter,
    /// L2: no wall-clock or ambient-entropy sources in sim crates.
    WallClock,
    /// L3: no thread creation outside `pagesim-bench::sweep`.
    ThreadSpawn,
    /// L4: every member opts into the workspace deny-lint table.
    LintHeader,
    /// L5: no `.unwrap()`/`.expect()` on kernel hot paths.
    HotUnwrap,
    /// L6: no `catch_unwind` outside the sanctioned isolation module.
    CatchUnwind,
}

impl Rule {
    /// Short annotation id, as used in `// lint: allow(<id>) <reason>`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::LintHeader => "lint-header",
            Rule::HotUnwrap => "hot-unwrap",
            Rule::CatchUnwind => "catch-unwind",
        }
    }

    /// Stable rule code (`L1`..`L6`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::HashIter => "L1",
            Rule::WallClock => "L2",
            Rule::ThreadSpawn => "L3",
            Rule::LintHeader => "L4",
            Rule::HotUnwrap => "L5",
            Rule::CatchUnwind => "L6",
        }
    }
}

/// One rule violation at a source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Path of the offending file (workspace-relative when produced by
    /// [`lint_workspace`]).
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}: {}",
            self.rule.code(),
            self.rule.id(),
            self.file,
            self.line,
            self.message
        )
    }
}

/// Which source rules apply to a file (L4 is manifest-level and handled
/// separately by [`lint_workspace`]).
#[derive(Clone, Copy, Default, Debug)]
pub struct RuleSet {
    /// Apply L1 (`hash-iter`).
    pub hash_iter: bool,
    /// Apply L2 (`wall-clock`).
    pub wall_clock: bool,
    /// Apply L3 (`thread-spawn`).
    pub thread_spawn: bool,
    /// Apply L5 (`hot-unwrap`).
    pub hot_unwrap: bool,
    /// Apply L6 (`catch-unwind`).
    // lint: allow(catch-unwind) rule metadata field, not a panic catch
    pub catch_unwind: bool,
}

/// Workspace members whose sources carry the full determinism rule set
/// (directory names under `crates/`).
pub const SIM_CRATES: &[&str] = &[
    "core",
    "engine",
    "kv",
    "mem",
    "policy",
    "stats",
    "swap",
    "trace",
    "workloads",
];

/// Workspace-relative files on the `SimError` hot path (fault handling,
/// reclaim, swap I/O) where L5 forbids `.unwrap()`/`.expect()`.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/kernel.rs",
    "crates/swap/src/device.rs",
    "crates/swap/src/slots.rs",
];

/// The one file allowed to create threads: the deterministic sweep
/// executor.
pub const THREAD_EXEMPT_FILES: &[&str] = &["crates/bench/src/sweep/mod.rs"];

/// The one file allowed to call `catch_unwind`: the sweep executor's
/// per-trial isolation module, where the swallow-a-panic policy is
/// documented and auditable in one place. Everywhere else a panic is a
/// broken invariant and must propagate (L6).
pub const UNWIND_EXEMPT_FILES: &[&str] = &["crates/bench/src/sweep/isolation.rs"];

/// Computes the rule set for a file, given its crate directory name (under
/// `crates/`) and workspace-relative path.
pub fn rules_for(crate_dir: &str, rel_path: &str) -> RuleSet {
    let sim = SIM_CRATES.contains(&crate_dir);
    RuleSet {
        hash_iter: sim,
        wall_clock: sim,
        thread_spawn: !THREAD_EXEMPT_FILES.contains(&rel_path),
        hot_unwrap: HOT_PATH_FILES.contains(&rel_path),
        // lint: allow(catch-unwind) rule metadata field, not a panic catch
        catch_unwind: !UNWIND_EXEMPT_FILES.contains(&rel_path),
    }
}

// ---------------------------------------------------------------------
// Source preparation
// ---------------------------------------------------------------------

/// Blanks comments, string literals, and char literals byte-for-byte,
/// preserving newlines so scrubbed offsets map to the original lines.
fn scrub(src: &str) -> Vec<u8> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Vec::with_capacity(n);
    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };
    let mut i = 0;
    while i < n {
        let c = b[i];
        // Line comment (also doc comments).
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // Block comment, nested.
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    out.extend([b' ', b' ']);
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    out.extend([b' ', b' ']);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw byte) strings: r"…", r#"…"#, br"…".
        if (c == b'r' || c == b'b') && !prev_is_ident(&out) {
            let mut j = i;
            if b[j] == b'b' && j + 1 < n && b[j + 1] == b'r' {
                j += 1;
            }
            if b[j] == b'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == b'"' {
                    // Blank the whole literal including the prefix.
                    out.extend(std::iter::repeat_n(b' ', k - i + 1));
                    i = k + 1;
                    // Scan for `"` followed by `hashes` hashes.
                    'raw: while i < n {
                        if b[i] == b'"' {
                            let mut h = 0usize;
                            while h < hashes && i + 1 + h < n && b[i + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                out.extend(std::iter::repeat_n(b' ', hashes + 1));
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Normal (and byte) strings.
        if c == b'"' || (c == b'b' && i + 1 < n && b[i + 1] == b'"' && !prev_is_ident(&out)) {
            if c == b'b' {
                out.push(b' ');
                i += 1;
            }
            out.push(b' ');
            i += 1;
            while i < n {
                if b[i] == b'\\' && i + 1 < n {
                    out.push(b' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == b'"' {
                    out.push(b' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char literal: blank through the closing quote.
                out.push(b' ');
                i += 1;
                while i < n && b[i] != b'\'' {
                    if b[i] == b'\\' && i + 1 < n {
                        out.push(b' ');
                        out.push(blank(b[i + 1]));
                        i += 2;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
                if i < n {
                    out.push(b' ');
                    i += 1;
                }
                continue;
            }
            if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                out.extend([b' ', b' ', b' ']);
                i += 3;
                continue;
            }
            // Lifetime: blank the quote, keep the identifier.
            out.push(b' ');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
}

/// Blanks every `#[cfg(test)]` item (test modules, test-only helpers) in
/// scrubbed source: test code may iterate hashes or unwrap freely — it
/// never feeds figure output.
fn strip_cfg_test(scrubbed: &mut [u8]) {
    const MARKER: &[u8] = b"#[cfg(test)]";
    let mut i = 0;
    while let Some(pos) = find_from(scrubbed, MARKER, i) {
        let mut j = pos + MARKER.len();
        // Blank from the attribute to the end of the annotated item: the
        // matching close of its first brace, or a semicolon that comes
        // first (e.g. a `use`).
        let mut depth = 0usize;
        let end;
        loop {
            if j >= scrubbed.len() {
                end = scrubbed.len();
                break;
            }
            match scrubbed[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for byte in &mut scrubbed[pos..end] {
            if *byte != b'\n' {
                *byte = b' ';
            }
        }
        i = end;
    }
}

fn find_from(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Byte offsets where each line starts; `line_of` maps offsets to 1-based
/// line numbers.
struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    fn new(text: &[u8]) -> LineIndex {
        let mut starts = vec![0usize];
        for (i, &c) in text.iter().enumerate() {
            if c == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    fn line_of(&self, offset: usize) -> u32 {
        match self.starts.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }
}

// ---------------------------------------------------------------------
// Allow annotations
// ---------------------------------------------------------------------

/// Parsed `// lint: allow(<id>) <reason>` annotations, keyed by 1-based
/// line. The bool records whether a non-empty reason was given — reasons
/// are mandatory for the annotation to suppress anything.
fn allow_annotations(src: &str) -> BTreeMap<u32, Vec<(String, bool)>> {
    let mut map: BTreeMap<u32, Vec<(String, bool)>> = BTreeMap::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("lint: allow(") else {
            continue;
        };
        let rest = &line[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let id = rest[..close].trim().to_owned();
        let reason = rest[close + 1..].trim();
        map.entry(idx as u32 + 1)
            .or_default()
            .push((id, !reason.is_empty()));
    }
    map
}

fn is_allowed(
    annotations: &BTreeMap<u32, Vec<(String, bool)>>,
    rule: Rule,
    line: u32,
) -> bool {
    [line, line.saturating_sub(1)].iter().any(|l| {
        annotations
            .get(l)
            .is_some_and(|v| v.iter().any(|(id, ok)| *ok && id == rule.id()))
    })
}

// ---------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Offsets of whole-word occurrences of `word`.
fn word_occurrences(text: &[u8], word: &str) -> Vec<usize> {
    let w = word.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = find_from(text, w, i) {
        let before_ok = pos == 0 || !is_ident_byte(text[pos - 1]);
        let after = pos + w.len();
        let after_ok = after >= text.len() || !is_ident_byte(text[after]);
        if before_ok && after_ok {
            out.push(pos);
        }
        i = pos + w.len();
    }
    out
}

/// The identifier ending immediately before `end` (skipping trailing
/// whitespace), if any.
fn ident_before(text: &[u8], end: usize) -> Option<String> {
    let mut j = end;
    while j > 0 && text[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let stop = j;
    while j > 0 && is_ident_byte(text[j - 1]) {
        j -= 1;
    }
    (j < stop).then(|| String::from_utf8_lossy(&text[j..stop]).into_owned())
}

/// Position just before any leading path prefix (`std::collections::`)
/// ending at `pos`.
fn skip_path_prefix(text: &[u8], mut pos: usize) -> usize {
    loop {
        let mut j = pos;
        while j > 0 && text[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        if j >= 2 && text[j - 1] == b':' && text[j - 2] == b':' {
            let mut k = j - 2;
            while k > 0 && text[k - 1].is_ascii_whitespace() {
                k -= 1;
            }
            while k > 0 && is_ident_byte(text[k - 1]) {
                k -= 1;
            }
            pos = k;
        } else {
            return j;
        }
    }
}

// ---------------------------------------------------------------------
// Rule passes
// ---------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// L1: collect names bound to `HashMap`/`HashSet`, then flag iteration
/// through them.
fn check_hash_iter(text: &[u8], lines: &LineIndex, file: &str, out: &mut Vec<Finding>) {
    let mut hash_names: Vec<String> = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        for pos in word_occurrences(text, ty) {
            let before = skip_path_prefix(text, pos);
            if before == 0 {
                continue;
            }
            let name = match text[before - 1] {
                // `name: HashMap<…>` (field, param, or annotated let) —
                // but not a path separator, which skip_path_prefix already
                // consumed.
                b':' if before < 2 || text[before - 2] != b':' => ident_before(text, before - 1),
                // `name = HashMap::new()` / `let name = HashMap::new()`.
                b'=' => ident_before(text, before - 1),
                _ => None,
            };
            if let Some(name) = name {
                if name != "let" && !hash_names.contains(&name) {
                    hash_names.push(name);
                }
            }
        }
    }
    if hash_names.is_empty() {
        return;
    }
    // `name.iter()` and friends.
    for method in ITER_METHODS {
        for pos in word_occurrences(text, method) {
            let after = pos + method.len();
            let mut a = after;
            while a < text.len() && text[a].is_ascii_whitespace() {
                a += 1;
            }
            if a >= text.len() || text[a] != b'(' {
                continue;
            }
            let mut j = pos;
            while j > 0 && text[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
            if j == 0 || text[j - 1] != b'.' {
                continue;
            }
            let Some(receiver) = ident_before(text, j - 1) else {
                continue;
            };
            if hash_names.contains(&receiver) {
                out.push(Finding {
                    rule: Rule::HashIter,
                    file: file.to_owned(),
                    line: lines.line_of(pos),
                    message: format!(
                        "`{receiver}.{method}()` iterates a hash-ordered container; \
                         use BTreeMap/BTreeSet or sort before iterating"
                    ),
                });
            }
        }
    }
    // `for … in <expr ending in a hash name> {`.
    for pos in word_occurrences(text, "for") {
        let Some(in_pos) = word_occurrences(&text[pos..], "in")
            .first()
            .map(|p| p + pos)
        else {
            continue;
        };
        let Some(brace) = find_from(text, b"{", in_pos) else {
            continue;
        };
        let expr = &text[in_pos + 2..brace];
        if expr.contains(&b'(') || expr.contains(&b'\n') && brace - in_pos > 200 {
            continue;
        }
        let Some(last) = ident_before(text, brace) else {
            continue;
        };
        if hash_names.contains(&last) {
            out.push(Finding {
                rule: Rule::HashIter,
                file: file.to_owned(),
                line: lines.line_of(pos),
                message: format!(
                    "`for … in {last}` iterates a hash-ordered container; \
                     use BTreeMap/BTreeSet or sort before iterating"
                ),
            });
        }
    }
}

/// L2: ambient time/entropy tokens.
fn check_wall_clock(text: &[u8], lines: &LineIndex, file: &str, out: &mut Vec<Finding>) {
    // (needle, must_be_followed_by_path_sep, message)
    let banned: &[(&str, &str)] = &[
        ("SystemTime", "`std::time::SystemTime` is wall-clock state"),
        ("thread_rng", "`thread_rng` draws OS entropy"),
        ("RandomState", "`RandomState` seeds from OS entropy per process"),
        ("OsRng", "`OsRng` draws OS entropy"),
    ];
    for (word, why) in banned {
        for pos in word_occurrences(text, word) {
            out.push(Finding {
                rule: Rule::WallClock,
                file: file.to_owned(),
                line: lines.line_of(pos),
                message: format!("{why}; sim results must be a pure function of the seed"),
            });
        }
    }
    // `Instant` only when it is std::time's: `Instant::now`, or a
    // `std::time::Instant` path/import.
    for pos in word_occurrences(text, "Instant") {
        let after = pos + "Instant".len();
        let is_now = text.get(after) == Some(&b':')
            && find_from(text, b"now", after).is_some_and(|p| p <= after + 4);
        let before = skip_path_prefix(text, pos);
        let is_std_path = before < pos
            && String::from_utf8_lossy(&text[before..pos]).contains("time");
        if is_now || is_std_path {
            out.push(Finding {
                rule: Rule::WallClock,
                file: file.to_owned(),
                line: lines.line_of(pos),
                message: "`std::time::Instant` is wall-clock state; use SimTime".to_owned(),
            });
        }
    }
}

/// L3: thread creation.
fn check_thread_spawn(text: &[u8], lines: &LineIndex, file: &str, out: &mut Vec<Finding>) {
    for api in ["spawn", "scope", "Builder"] {
        for pos in word_occurrences(text, api) {
            let before = skip_path_prefix(text, pos);
            if before >= pos {
                continue; // bare `spawn`, not `thread::spawn`
            }
            let path = String::from_utf8_lossy(&text[before..pos]);
            if path.contains("thread") {
                out.push(Finding {
                    rule: Rule::ThreadSpawn,
                    file: file.to_owned(),
                    line: lines.line_of(pos),
                    message: format!(
                        "`thread::{api}` outside pagesim-bench::sweep; all parallelism \
                         must go through the deterministic sweep executor"
                    ),
                });
            }
        }
    }
}

/// L5: `.unwrap()`/`.expect()` on hot-path files.
fn check_hot_unwrap(text: &[u8], lines: &LineIndex, file: &str, out: &mut Vec<Finding>) {
    for method in ["unwrap", "expect"] {
        for pos in word_occurrences(text, method) {
            let mut j = pos;
            while j > 0 && text[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
            if j == 0 || text[j - 1] != b'.' {
                continue;
            }
            let mut a = pos + method.len();
            while a < text.len() && text[a].is_ascii_whitespace() {
                a += 1;
            }
            if a >= text.len() || text[a] != b'(' {
                continue;
            }
            out.push(Finding {
                rule: Rule::HotUnwrap,
                file: file.to_owned(),
                line: lines.line_of(pos),
                message: format!(
                    "`.{method}()` on a SimError hot path; propagate a typed error \
                     so one bad cell cannot abort a figure sweep"
                ),
            });
        }
    }
}

/// L6: `catch_unwind` outside the sanctioned isolation module. Matches the
/// bare identifier, so imports (`use std::panic::catch_unwind`), qualified
/// paths, and calls all fire.
fn check_catch_unwind(text: &[u8], lines: &LineIndex, file: &str, out: &mut Vec<Finding>) {
    for pos in word_occurrences(text, "catch_unwind") {
        out.push(Finding {
            rule: Rule::CatchUnwind,
            file: file.to_owned(),
            line: lines.line_of(pos),
            message: "`catch_unwind` outside the sweep executor's isolation module; \
                      panic recovery must go through the one audited site"
                .to_owned(),
        });
    }
}

/// Runs the applicable source rules over one file's contents.
pub fn lint_source(rules: RuleSet, file: &str, source: &str) -> Vec<Finding> {
    let annotations = allow_annotations(source);
    let mut text = scrub(source);
    strip_cfg_test(&mut text);
    let lines = LineIndex::new(&text);
    let mut found = Vec::new();
    if rules.hash_iter {
        check_hash_iter(&text, &lines, file, &mut found);
    }
    if rules.wall_clock {
        check_wall_clock(&text, &lines, file, &mut found);
    }
    if rules.thread_spawn {
        check_thread_spawn(&text, &lines, file, &mut found);
    }
    if rules.hot_unwrap {
        check_hot_unwrap(&text, &lines, file, &mut found);
    }
    // lint: allow(catch-unwind) rule metadata field, not a panic catch
    if rules.catch_unwind {
        check_catch_unwind(&text, &lines, file, &mut found);
    }
    found.retain(|f| !is_allowed(&annotations, f.rule, f.line));
    found.sort_by_key(|a| (a.line, a.rule));
    found
}

// ---------------------------------------------------------------------
// Workspace scan
// ---------------------------------------------------------------------

/// Result of a whole-workspace scan.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceReport {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Rust sources scanned.
    pub files_scanned: usize,
}

/// L4: manifest checks — the root deny table and each member's opt-in.
fn check_manifests(root: &Path, crate_dirs: &[PathBuf], out: &mut Vec<Finding>) {
    let root_manifest = root.join("Cargo.toml");
    let root_text = std::fs::read_to_string(&root_manifest).unwrap_or_default();
    if !toml_section_has(&root_text, "[workspace.lints.rust]", "unsafe_code", "forbid") {
        out.push(Finding {
            rule: Rule::LintHeader,
            file: "Cargo.toml".to_owned(),
            line: 1,
            message: "workspace root must define `[workspace.lints.rust]` with \
                      `unsafe_code = \"forbid\"`"
                .to_owned(),
        });
    }
    for dir in crate_dirs {
        let manifest = dir.join("Cargo.toml");
        let text = std::fs::read_to_string(&manifest).unwrap_or_default();
        if !toml_section_has(&text, "[lints]", "workspace", "true") {
            let rel = manifest
                .strip_prefix(root)
                .unwrap_or(&manifest)
                .to_string_lossy()
                .into_owned();
            out.push(Finding {
                rule: Rule::LintHeader,
                file: rel,
                line: 1,
                message: "workspace member must opt into the deny-lint table with \
                          `[lints] workspace = true`"
                    .to_owned(),
            });
        }
    }
}

/// Whether `section` in `toml` contains a `key = value`-ish line (string
/// quotes on the value optional). Hand-rolled: the offline build has no
/// toml parser, and Cargo manifests in this repo are plain.
fn toml_section_has(toml: &str, section: &str, key: &str, value: &str) -> bool {
    let mut in_section = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == section;
            continue;
        }
        if !in_section {
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            continue;
        };
        if k.trim() == key && v.trim().trim_matches('"') == value {
            return true;
        }
    }
    false
}

fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        children.sort();
        for p in children {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Scans the whole workspace rooted at `root`: every member under
/// `crates/*` plus the umbrella `src/`, applying [`rules_for`] per file
/// and the L4 manifest checks. `vendor/*` stand-ins are external code and
/// are skipped.
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    check_manifests(root, &crate_dirs, &mut report.findings);
    let mut scan = |crate_dir: &str, src_dir: &Path| {
        for path in rust_sources(src_dir) {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let rules = rules_for(crate_dir, &rel);
            let Ok(source) = std::fs::read_to_string(&path) else {
                continue;
            };
            report.files_scanned += 1;
            report.findings.extend(lint_source(rules, &rel, &source));
        }
    };
    for dir in &crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        // Scan everything shipped by the crate: src/, tests/ and benches/
        // are covered by the test-module stripper only when inline, so
        // integration tests get the thread/entropy rules too — except the
        // dedicated tests/ trees, which legitimately compare wall-clock
        // speedups. Scanning src/ only keeps the signal crisp.
        scan(&name, &dir.join("src"));
    }
    scan("repro-umbrella", &root.join("src"));
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: RuleSet = RuleSet {
        hash_iter: true,
        wall_clock: true,
        thread_spawn: true,
        hot_unwrap: false,
        catch_unwind: true,
    };

    #[test]
    fn scrubbing_blanks_comments_and_strings() {
        let src = "let a = \"HashMap::new()\"; // HashMap\n/* HashSet */ let b = 1;\n";
        let s = scrub(src);
        let text = String::from_utf8_lossy(&s);
        assert!(!text.contains("HashMap"));
        assert!(!text.contains("HashSet"));
        assert_eq!(text.matches('\n').count(), 2);
    }

    #[test]
    fn raw_strings_and_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) { let _ = r#\"thread_rng\"#; }";
        let s = scrub(src);
        let text = String::from_utf8_lossy(&s);
        assert!(!text.contains("thread_rng"));
        assert!(text.contains("fn f<"));
    }

    #[test]
    fn hash_iteration_is_flagged_with_line() {
        let src = "struct S { m: std::collections::HashMap<u32, u32> }\n\
                   impl S { fn f(&self) {\n\
                   for x in self.m.values() { drop(x); }\n\
                   } }\n";
        let found = lint_source(SIM, "x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::HashIter);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn hash_membership_ops_are_fine() {
        let src = "struct S { m: std::collections::HashMap<u32, u32> }\n\
                   impl S { fn f(&mut self) {\n\
                   self.m.insert(1, 2); let _ = self.m.get(&1); self.m.remove(&1);\n\
                   } }\n";
        assert!(lint_source(SIM, "x.rs", src).is_empty());
    }

    #[test]
    fn allow_annotation_requires_reason() {
        let with_reason = "fn f() { let t = std::time::SystemTime::now(); } \
                           // lint: allow(wall-clock) host timing printed to stderr only\n";
        assert!(lint_source(SIM, "x.rs", with_reason).is_empty());
        let without = "fn f() { let t = std::time::SystemTime::now(); } // lint: allow(wall-clock)\n";
        assert_eq!(lint_source(SIM, "x.rs", without).len(), 1);
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "fn main() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { let _ = rand::thread_rng(); }\n\
                   }\n";
        assert!(lint_source(SIM, "x.rs", src).is_empty());
    }

    #[test]
    fn catch_unwind_is_flagged_in_imports_and_calls() {
        let src = "use std::panic::catch_unwind;\n\
                   fn f() { let _ = catch_unwind(|| 1); }\n";
        let found = lint_source(SIM, "x.rs", src);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::CatchUnwind));
        // The sanctioned isolation module is exempt by path.
        let rules = rules_for("bench", "crates/bench/src/sweep/isolation.rs");
        assert!(!rules.catch_unwind);
        assert!(rules_for("bench", "crates/bench/src/sweep/mod.rs").catch_unwind);
    }

    #[test]
    fn toml_section_matcher() {
        let toml = "[package]\nname = \"x\"\n[lints]\nworkspace = true\n";
        assert!(toml_section_has(toml, "[lints]", "workspace", "true"));
        assert!(!toml_section_has(toml, "[lints]", "workspace", "false"));
        assert!(!toml_section_has("[package]\n", "[lints]", "workspace", "true"));
    }
}
