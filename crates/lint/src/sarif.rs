//! SARIF 2.1.0 export, hand-rolled (the offline build has no serde).
//!
//! One run, one driver (`pagesim-lint`), the full rule catalog under
//! `tool.driver.rules`, and one result per finding. Baselined findings
//! export at level `warning`, new ones at `error`. Chain findings carry a
//! `codeFlows` thread flow — one location per function along the
//! root→…→construct path — which GitHub renders as a step-through.

use crate::{Finding, Rule};

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn location(file: &str, line: u32, message: Option<&str>) -> String {
    let msg = match message {
        Some(m) => format!(",\"message\":{{\"text\":\"{}\"}}", esc(m)),
        None => String::new(),
    };
    format!(
        "{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
         \"region\":{{\"startLine\":{}}}}}{}}}",
        esc(file),
        line.max(1),
        msg
    )
}

fn result(f: &Finding, level: &str, rule_index: usize) -> String {
    let mut text = f.message.clone();
    if !f.chain.is_empty() {
        let path: Vec<&str> = f.chain.iter().map(|h| h.symbol.as_str()).collect();
        text.push_str(&format!(" [chain: {}]", path.join(" -> ")));
    }
    let mut out = format!(
        "{{\"ruleId\":\"{}\",\"ruleIndex\":{},\"level\":\"{}\",\
         \"message\":{{\"text\":\"{}\"}},\"locations\":[{}]",
        f.rule.code(),
        rule_index,
        level,
        esc(&text),
        location(&f.file, f.line, None)
    );
    if !f.chain.is_empty() {
        let steps: Vec<String> = f
            .chain
            .iter()
            .map(|h| {
                format!(
                    "{{\"location\":{}}}",
                    location(&h.file, h.line, Some(&h.symbol))
                )
            })
            .collect();
        out.push_str(&format!(
            ",\"codeFlows\":[{{\"threadFlows\":[{{\"locations\":[{}]}}]}}]",
            steps.join(",")
        ));
    }
    out.push('}');
    out
}

/// Renders the full SARIF document for a screened finding set.
pub fn render(errors: &[Finding], warnings: &[Finding]) -> String {
    let rules: Vec<String> = Rule::ALL
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"name\":\"{}\",\
                 \"shortDescription\":{{\"text\":\"{}\"}}}}",
                r.code(),
                esc(r.id()),
                esc(r.describe())
            )
        })
        .collect();
    let rule_index = |rule: Rule| Rule::ALL.iter().position(|&r| r == rule).unwrap_or(0);
    let mut results: Vec<String> = Vec::with_capacity(errors.len() + warnings.len());
    for f in errors {
        results.push(result(f, "error", rule_index(f.rule)));
    }
    for f in warnings {
        results.push(result(f, "warning", rule_index(f.rule)));
    }
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"pagesim-lint\",\
         \"informationUri\":\"https://github.com/pagesim/pagesim\",\
         \"version\":\"0.1.0\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}\n",
        rules.join(","),
        results.join(",")
    )
}
