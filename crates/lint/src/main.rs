//! `pagesim-lint` CLI: the workspace determinism/soundness gate.
//!
//! ```text
//! pagesim-lint --workspace [--root DIR]      # scan a pagesim workspace
//! pagesim-lint --check-file F [--as-crate C] [--hot]   # lint one file
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use pagesim_lint::{lint_source, lint_workspace, rules_for, RuleSet};

fn usage() -> ExitCode {
    eprintln!(
        "usage: pagesim-lint --workspace [--root DIR]\n\
         \x20      pagesim-lint --check-file FILE [--as-crate CRATE] [--hot]\n\
         \n\
         --workspace        scan crates/* and src/ under the workspace root\n\
         --root DIR         workspace root (default: current directory)\n\
         --check-file FILE  lint a single source file\n\
         --as-crate CRATE   crate dir name FILE should be judged as (default: core)\n\
         --hot              additionally apply the hot-path unwrap rule (L5)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut workspace = false;
    let mut check_file: Option<PathBuf> = None;
    let mut as_crate = String::from("core");
    let mut hot = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--check-file" => match it.next() {
                Some(f) => check_file = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--as-crate" => match it.next() {
                Some(c) => as_crate = c.clone(),
                None => return usage(),
            },
            "--hot" => hot = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if workspace == check_file.is_some() {
        // Exactly one mode must be selected.
        return usage();
    }

    let findings = if workspace {
        match lint_workspace(&root) {
            Ok(report) => {
                eprintln!(
                    "pagesim-lint: scanned {} files, {} finding(s)",
                    report.files_scanned,
                    report.findings.len()
                );
                report.findings
            }
            Err(e) => {
                eprintln!("pagesim-lint: cannot scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let path = check_file.expect("mode checked above");
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pagesim-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rel = path.to_string_lossy().replace('\\', "/");
        let mut rules = rules_for(&as_crate, &rel);
        if hot {
            rules = RuleSet {
                hot_unwrap: true,
                ..rules
            };
        }
        lint_source(rules, &rel, &source)
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
