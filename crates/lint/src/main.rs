//! `pagesim-lint` CLI: the workspace determinism/soundness gate.
//!
//! ```text
//! pagesim-lint --workspace [--root DIR] [--format text|sarif]
//!              [--baseline FILE | --no-baseline] [--write-baseline]
//! pagesim-lint --check-file F [--as-crate C] [--hot]   # lint one file
//! ```
//!
//! Workspace mode screens findings against the ratchet baseline
//! (`<root>/lint-baseline.toml` when present): baselined findings warn,
//! new findings and stale entries fail. `--write-baseline` regenerates
//! the baseline from the current findings, preserving existing reasons.
//!
//! Exit codes: `0` clean (warnings allowed), `1` findings or stale
//! baseline, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use pagesim_lint::{baseline, lint_source, lint_workspace, rules_for, sarif, RuleSet};

fn usage() -> ExitCode {
    eprintln!(
        "usage: pagesim-lint --workspace [--root DIR] [--format text|sarif]\n\
         \x20                 [--baseline FILE | --no-baseline] [--write-baseline]\n\
         \x20      pagesim-lint --check-file FILE [--as-crate CRATE] [--hot]\n\
         \n\
         --workspace        scan crates/* and src/ under the workspace root\n\
         --root DIR         workspace root (default: current directory)\n\
         --format FMT       output format: text (default) or sarif\n\
         --baseline FILE    ratchet baseline (default: ROOT/lint-baseline.toml if present)\n\
         --no-baseline      ignore any baseline; all findings are errors\n\
         --write-baseline   regenerate the baseline file from current findings\n\
         --check-file FILE  lint a single source file\n\
         --as-crate CRATE   crate dir name FILE should be judged as (default: core)\n\
         --hot              additionally apply the hot-path unwrap rule (L5)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut workspace = false;
    let mut check_file: Option<PathBuf> = None;
    let mut as_crate = String::from("core");
    let mut hot = false;
    let mut format = String::from("text");
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut write_baseline = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "sarif" => format = f.clone(),
                _ => return usage(),
            },
            "--baseline" => match it.next() {
                Some(f) => baseline_path = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--check-file" => match it.next() {
                Some(f) => check_file = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--as-crate" => match it.next() {
                Some(c) => as_crate = c.clone(),
                None => return usage(),
            },
            "--hot" => hot = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if workspace == check_file.is_some() {
        // Exactly one mode must be selected.
        return usage();
    }
    if no_baseline && baseline_path.is_some() {
        return usage();
    }

    if !workspace {
        let path = check_file.expect("mode checked above");
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pagesim-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rel = path.to_string_lossy().replace('\\', "/");
        let mut rules = rules_for(&as_crate, &rel);
        if hot {
            rules = RuleSet {
                hot_unwrap: true,
                ..rules
            };
        }
        let findings = lint_source(rules, &rel, &source);
        for f in &findings {
            println!("{f}");
        }
        return if findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("pagesim-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    // Resolve + parse the baseline. `--no-baseline` screens against an
    // empty one, so every finding is an error.
    let resolved = if no_baseline {
        None
    } else {
        match baseline_path {
            Some(p) => Some(p),
            None => {
                let default = root.join("lint-baseline.toml");
                default.exists().then_some(default)
            }
        }
    };
    let base = match &resolved {
        None => baseline::Baseline::default(),
        // A baseline that doesn't exist yet is fine when regenerating it.
        Some(p) if write_baseline && !p.exists() => baseline::Baseline::default(),
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("pagesim-lint: cannot read baseline {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            };
            match baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("pagesim-lint: bad baseline {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if write_baseline {
        let out = resolved.unwrap_or_else(|| root.join("lint-baseline.toml"));
        let text = baseline::render(&report.findings, &base);
        if let Err(e) = std::fs::write(&out, text) {
            eprintln!("pagesim-lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "pagesim-lint: wrote {} ({} finding(s) baselined)",
            out.display(),
            report.findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let screened = baseline::screen(report.findings, &base);
    match format.as_str() {
        "sarif" => print!("{}", sarif::render(&screened.errors, &screened.warnings)),
        _ => {
            for f in &screened.errors {
                println!("{f}");
            }
            for f in &screened.warnings {
                println!("warning: {f}");
            }
            for s in &screened.stale {
                println!("{s}");
            }
        }
    }
    eprintln!(
        "pagesim-lint: scanned {} files ({} fns, {} hot), {} error(s), \
         {} baselined warning(s), {} stale",
        report.files_scanned,
        report.functions,
        report.reachable,
        screened.errors.len(),
        screened.warnings.len(),
        screened.stale.len()
    );
    if screened.errors.is_empty() && screened.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
