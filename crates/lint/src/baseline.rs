//! Ratcheted finding baseline: `lint-baseline.toml`.
//!
//! The baseline is the one-way door for pre-existing findings: entries are
//! keyed by `(rule, file, symbol)` and carry a mandatory reason. Findings
//! matched by an entry are demoted to warnings; findings with no entry are
//! errors (the count can only go down); entries that no longer match any
//! finding are *stale* and fail the run until removed — so the file never
//! accretes dead waivers. An optional `count` pins the exact number of
//! findings under a key: more is an error, fewer is stale.
//!
//! The format is a strict TOML subset (parsed by hand — the offline build
//! has no toml crate):
//!
//! ```toml
//! schema = 1
//!
//! [[entry]]
//! rule = "H1"
//! file = "crates/core/src/kernel.rs"
//! symbol = "Kernel::fault"
//! count = 2
//! reason = "page-lock table insert; replacement tracked by ROADMAP item 1"
//! ```

use crate::Finding;
use std::collections::BTreeMap;

/// One baselined finding group.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Entry {
    /// Rule code (`H1`, `L2`, …).
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// Enclosing function symbol (empty for file-level findings).
    pub symbol: String,
    /// Exact finding count under this key, if pinned.
    pub count: Option<usize>,
    /// Why this is acceptable for now (mandatory).
    pub reason: String,
}

/// A parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// All entries in file order.
    pub entries: Vec<Entry>,
}

/// Findings split by baseline screening.
#[derive(Debug, Default)]
pub struct Screened {
    /// New findings: not covered by any entry. These fail the run.
    pub errors: Vec<Finding>,
    /// Baselined findings: reported as warnings, exit stays clean.
    pub warnings: Vec<Finding>,
    /// Stale-baseline diagnostics: entries that no longer match. These
    /// fail the run until the baseline is re-ratcheted.
    pub stale: Vec<String>,
}

/// Parses the TOML-subset baseline format. Unknown keys are errors — a
/// typoed key would otherwise silently widen the waiver.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut baseline = Baseline::default();
    let mut cur: Option<Entry> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[entry]]" {
            if let Some(e) = cur.take() {
                finish_entry(e, lineno, &mut baseline)?;
            }
            cur = Some(Entry::default());
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unsupported section `{line}`"));
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = value`, got `{line}`"));
        };
        let (k, v) = (k.trim(), v.trim());
        match (&mut cur, k) {
            (None, "schema") => {
                if v != "1" {
                    return Err(format!("line {lineno}: unsupported schema `{v}`"));
                }
            }
            (None, _) => {
                return Err(format!("line {lineno}: `{k}` outside an [[entry]]"));
            }
            (Some(e), "rule") => e.rule = unquote(v, lineno)?,
            (Some(e), "file") => e.file = unquote(v, lineno)?,
            (Some(e), "symbol") => e.symbol = unquote(v, lineno)?,
            (Some(e), "reason") => e.reason = unquote(v, lineno)?,
            (Some(e), "count") => {
                e.count = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("line {lineno}: count must be an integer"))?,
                );
            }
            (Some(_), _) => {
                return Err(format!("line {lineno}: unknown key `{k}`"));
            }
        }
    }
    if let Some(e) = cur.take() {
        finish_entry(e, text.lines().count(), &mut baseline)?;
    }
    Ok(baseline)
}

fn finish_entry(e: Entry, lineno: usize, baseline: &mut Baseline) -> Result<(), String> {
    if e.rule.is_empty() || e.file.is_empty() {
        return Err(format!("entry ending near line {lineno}: rule and file are required"));
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "entry ending near line {lineno}: a non-empty reason is required \
             ({} {} {})",
            e.rule, e.file, e.symbol
        ));
    }
    baseline.entries.push(e);
    Ok(())
}

fn unquote(v: &str, lineno: usize) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_owned())
    } else {
        Err(format!("line {lineno}: expected a quoted string, got `{v}`"))
    }
}

fn key_of(f: &Finding) -> (String, String, String) {
    (f.rule.code().to_owned(), f.file.clone(), f.symbol.clone())
}

/// Screens findings against the baseline: matched → warnings, unmatched →
/// errors, unmatched entries → stale.
pub fn screen(findings: Vec<Finding>, baseline: &Baseline) -> Screened {
    let mut groups: BTreeMap<(String, String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        groups.entry(key_of(&f)).or_default().push(f);
    }
    let mut screened = Screened::default();
    for e in &baseline.entries {
        let key = (e.rule.clone(), e.file.clone(), e.symbol.clone());
        match groups.remove(&key) {
            None => screened.stale.push(format!(
                "stale baseline: `{} {} {}` no longer fires — remove its entry \
                 (the ratchet only turns one way)",
                e.rule, e.file, e.symbol
            )),
            Some(found) => match e.count {
                Some(c) if found.len() > c => {
                    screened.stale.push(format!(
                        "baseline count exceeded: `{} {} {}` pinned at {c} but {} fire — \
                         new findings must be fixed, not absorbed",
                        e.rule,
                        e.file,
                        e.symbol,
                        found.len()
                    ));
                    screened.warnings.extend(found);
                }
                Some(c) if found.len() < c => {
                    screened.stale.push(format!(
                        "stale baseline count: `{} {} {}` pinned at {c} but only {} fire — \
                         ratchet the count down",
                        e.rule,
                        e.file,
                        e.symbol,
                        found.len()
                    ));
                    screened.warnings.extend(found);
                }
                _ => screened.warnings.extend(found),
            },
        }
    }
    for (_, found) in groups {
        screened.errors.extend(found);
    }
    screened.errors.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
    screened.warnings.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
    screened
}

/// Renders a fresh baseline for the given findings, carrying over reasons
/// from `old` where the key still matches. New keys get a placeholder
/// reason that the author must edit (parse() rejects empty reasons, and
/// reviewers will reject `TODO`).
pub fn render(findings: &[Finding], old: &Baseline) -> String {
    let mut groups: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for f in findings {
        *groups.entry(key_of(f)).or_default() += 1;
    }
    let old_reasons: BTreeMap<(String, String, String), String> = old
        .entries
        .iter()
        .map(|e| {
            (
                (e.rule.clone(), e.file.clone(), e.symbol.clone()),
                e.reason.clone(),
            )
        })
        .collect();
    let mut out = String::from(
        "# pagesim-lint ratchet baseline. Entries may only be removed (or their\n\
         # counts lowered); new findings must be fixed at the source. See DESIGN.md\n\
         # \"Determinism & soundness enforcement\".\n\
         schema = 1\n",
    );
    for ((rule, file, symbol), count) in &groups {
        let reason = old_reasons
            .get(&(rule.clone(), file.clone(), symbol.clone()))
            .cloned()
            .unwrap_or_else(|| "TODO: justify or fix".to_owned());
        out.push_str("\n[[entry]]\n");
        out.push_str(&format!("rule = \"{rule}\"\n"));
        out.push_str(&format!("file = \"{file}\"\n"));
        if !symbol.is_empty() {
            out.push_str(&format!("symbol = \"{symbol}\"\n"));
        }
        out.push_str(&format!("count = {count}\n"));
        out.push_str(&format!("reason = \"{reason}\"\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    fn finding(rule: Rule, file: &str, symbol: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_owned(),
            line,
            message: "m".to_owned(),
            symbol: symbol.to_owned(),
            chain: Vec::new(),
        }
    }

    const BASE: &str = "\
schema = 1

[[entry]]
rule = \"H1\"
file = \"crates/core/src/kernel.rs\"
symbol = \"Kernel::fault\"
count = 2
reason = \"page-lock insert\"
";

    #[test]
    fn matched_findings_become_warnings() {
        let b = parse(BASE).unwrap();
        let fs = vec![
            finding(Rule::HotAlloc, "crates/core/src/kernel.rs", "Kernel::fault", 10),
            finding(Rule::HotAlloc, "crates/core/src/kernel.rs", "Kernel::fault", 20),
        ];
        let s = screen(fs, &b);
        assert!(s.errors.is_empty());
        assert!(s.stale.is_empty());
        assert_eq!(s.warnings.len(), 2);
    }

    #[test]
    fn unmatched_findings_are_errors() {
        let b = parse(BASE).unwrap();
        let fs = vec![
            finding(Rule::HotAlloc, "crates/core/src/kernel.rs", "Kernel::fault", 10),
            finding(Rule::HotAlloc, "crates/core/src/kernel.rs", "Kernel::fault", 20),
            finding(Rule::HotClone, "crates/policy/src/clock.rs", "Clock::reclaim", 5),
        ];
        let s = screen(fs, &b);
        assert_eq!(s.errors.len(), 1);
        assert_eq!(s.errors[0].rule, Rule::HotClone);
    }

    #[test]
    fn stale_entry_and_count_drift_fail() {
        let b = parse(BASE).unwrap();
        // Nothing fires at all → stale.
        let s = screen(Vec::new(), &b);
        assert_eq!(s.stale.len(), 1);
        assert!(s.stale[0].contains("no longer fires"));
        // One of the two pinned findings fixed → stale count.
        let fs = vec![finding(
            Rule::HotAlloc,
            "crates/core/src/kernel.rs",
            "Kernel::fault",
            10,
        )];
        let s = screen(fs, &b);
        assert_eq!(s.stale.len(), 1);
        assert!(s.stale[0].contains("ratchet the count down"), "{}", s.stale[0]);
        // A third finding under a pinned-at-2 key → exceeded.
        let fs = vec![
            finding(Rule::HotAlloc, "crates/core/src/kernel.rs", "Kernel::fault", 10),
            finding(Rule::HotAlloc, "crates/core/src/kernel.rs", "Kernel::fault", 20),
            finding(Rule::HotAlloc, "crates/core/src/kernel.rs", "Kernel::fault", 30),
        ];
        let s = screen(fs, &b);
        assert_eq!(s.stale.len(), 1);
        assert!(s.stale[0].contains("count exceeded"), "{}", s.stale[0]);
    }

    #[test]
    fn reasons_are_mandatory() {
        let bad = "schema = 1\n[[entry]]\nrule = \"H1\"\nfile = \"x.rs\"\nreason = \"\"\n";
        assert!(parse(bad).is_err());
        let missing = "schema = 1\n[[entry]]\nrule = \"H1\"\nfile = \"x.rs\"\n";
        assert!(parse(missing).is_err());
    }

    #[test]
    fn render_round_trips_and_preserves_reasons() {
        let b = parse(BASE).unwrap();
        let fs = vec![
            finding(Rule::HotAlloc, "crates/core/src/kernel.rs", "Kernel::fault", 10),
            finding(Rule::HotAlloc, "crates/core/src/kernel.rs", "Kernel::fault", 20),
        ];
        let text = render(&fs, &b);
        let again = parse(&text).unwrap();
        assert_eq!(again.entries.len(), 1);
        assert_eq!(again.entries[0].reason, "page-lock insert");
        assert_eq!(again.entries[0].count, Some(2));
    }
}
