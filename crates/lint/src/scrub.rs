//! Source preparation: comment/string scrubbing, stripping of test- and
//! sanitize-gated items, line mapping, and shared token helpers.
//!
//! Everything downstream — the per-file rule passes, the item parser, and
//! the call graph — operates on *scrubbed* text: comments and string/char
//! literals blanked byte-for-byte, with newlines preserved so offsets map
//! back to the original lines. The scrubber understands every literal
//! shape the workspace uses: line and nested block comments, raw strings
//! with arbitrary hash fences (`r#"…"#`, `r##"…"##`), byte and C-string
//! variants (`b"…"`, `br#"…"#`, `c"…"`, `cr#"…"#`), escaped chars, and
//! char-vs-lifetime disambiguation.

/// Blanks comments, string literals, and char literals byte-for-byte,
/// preserving newlines so scrubbed offsets map to the original lines.
pub fn scrub(src: &str) -> Vec<u8> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Vec::with_capacity(n);
    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };
    let mut i = 0;
    while i < n {
        let c = b[i];
        // Line comment (also doc comments).
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // Block comment, nested.
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    out.extend([b' ', b' ']);
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    out.extend([b' ', b' ']);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // String literals, all prefix shapes: "…", b"…", c"…", r"…",
        // r#"…"#, br#"…"#, cr#"…"# (byte / C-string / raw variants).
        if c == b'"' || ((c == b'r' || c == b'b' || c == b'c') && !prev_is_ident(&out)) {
            let mut j = i;
            let mut raw = false;
            if c != b'"' {
                if (b[j] == b'b' || b[j] == b'c') && j + 1 < n && b[j + 1] == b'r' {
                    j += 1;
                }
                if b[j] == b'r' {
                    raw = true;
                }
                j += 1; // past the final prefix letter
            }
            if raw {
                let mut k = j;
                let mut hashes = 0usize;
                while k < n && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == b'"' {
                    // Blank the whole literal including the prefix.
                    out.extend(std::iter::repeat_n(b' ', k - i + 1));
                    i = k + 1;
                    // Scan for `"` followed by `hashes` hashes.
                    while i < n {
                        if b[i] == b'"' {
                            let mut h = 0usize;
                            while h < hashes && i + 1 + h < n && b[i + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                out.extend(std::iter::repeat_n(b' ', hashes + 1));
                                i += 1 + hashes;
                                break;
                            }
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                    continue;
                }
                // Not a raw string after all (plain identifier starting
                // with r/b/c, e.g. `break`): fall through.
            } else if c == b'"' || (j < n && b[j] == b'"') {
                // Normal, byte, or C string: blank any prefix letter,
                // then the quoted body with escape handling.
                while i < j {
                    out.push(b' ');
                    i += 1;
                }
                out.push(b' ');
                i += 1;
                while i < n {
                    if b[i] == b'\\' && i + 1 < n {
                        out.push(b' ');
                        out.push(blank(b[i + 1]));
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
                continue;
            }
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char literal: blank through the closing quote.
                out.push(b' ');
                i += 1;
                while i < n && b[i] != b'\'' {
                    if b[i] == b'\\' && i + 1 < n {
                        out.push(b' ');
                        out.push(blank(b[i + 1]));
                        i += 2;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
                if i < n {
                    out.push(b' ');
                    i += 1;
                }
                continue;
            }
            if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                out.extend([b' ', b' ', b' ']);
                i += 3;
                continue;
            }
            // Lifetime: blank the quote, keep the identifier.
            out.push(b' ');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

pub(crate) fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
}

/// Attribute forms whose annotated items are stripped before linting:
/// test-gated and sanitizer-gated code never feeds figure output, so it
/// may iterate hashes, allocate on hot paths, or unwrap freely.
const STRIPPED_CFG_MARKERS: [&str; 3] = [
    "#[cfg(test)]",
    "#[cfg(feature = \"sanitize\")]",
    "#[cfg(any(test, feature = \"sanitize\"))]",
];

/// Blanks every test- or sanitize-gated item (test modules, invariant
/// checkers, sanitizer-only fields) in scrubbed source. The sanitize
/// markers contain a string literal — blanked in the scrubbed text — so
/// markers are located in the *original* source (`scrub` is
/// byte-preserving, offsets coincide) and confirmed real by the `#`
/// surviving at the same scrubbed offset (a mention inside a comment or
/// string is all spaces there).
pub(crate) fn strip_cfg_gated(scrubbed: &mut [u8], original: &str) {
    for marker in STRIPPED_CFG_MARKERS {
        strip_marker(scrubbed, original.as_bytes(), marker.as_bytes());
    }
}

fn strip_marker(scrubbed: &mut [u8], original: &[u8], marker: &[u8]) {
    let mut i = 0;
    while let Some(pos) = find_from(original, marker, i) {
        i = pos + marker.len();
        if scrubbed.get(pos) != Some(&b'#') {
            continue;
        }
        let mut j = pos + marker.len();
        // Blank from the attribute to the end of the annotated item: the
        // `}` closing its first brace, or a `;` (statement, `use`) or `,`
        // (struct field) at bracket depth zero. Parens and square
        // brackets count toward depth so argument-list and attribute
        // commas (`f(a, b)`, `#[derive(Clone, Debug)]`) never terminate.
        let mut depth = 0usize;
        let end;
        loop {
            if j >= scrubbed.len() {
                end = scrubbed.len();
                break;
            }
            match scrubbed[j] {
                b'{' | b'(' | b'[' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                b')' | b']' => depth = depth.saturating_sub(1),
                b';' | b',' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for byte in &mut scrubbed[pos..end] {
            if *byte != b'\n' {
                *byte = b' ';
            }
        }
        i = end;
    }
}

pub(crate) fn find_from(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Byte offsets where each line starts; `line_of` maps offsets to 1-based
/// line numbers.
pub(crate) struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    pub(crate) fn new(text: &[u8]) -> LineIndex {
        let mut starts = vec![0usize];
        for (i, &c) in text.iter().enumerate() {
            if c == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    pub(crate) fn line_of(&self, offset: usize) -> u32 {
        match self.starts.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }
}

// ---------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------

pub(crate) fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Offsets of whole-word occurrences of `word`.
pub(crate) fn word_occurrences(text: &[u8], word: &str) -> Vec<usize> {
    let w = word.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = find_from(text, w, i) {
        let before_ok = pos == 0 || !is_ident_byte(text[pos - 1]);
        let after = pos + w.len();
        let after_ok = after >= text.len() || !is_ident_byte(text[after]);
        if before_ok && after_ok {
            out.push(pos);
        }
        i = pos + w.len();
    }
    out
}

/// The identifier ending immediately before `end` (skipping trailing
/// whitespace), if any.
pub(crate) fn ident_before(text: &[u8], end: usize) -> Option<String> {
    let mut j = end;
    while j > 0 && text[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let stop = j;
    while j > 0 && is_ident_byte(text[j - 1]) {
        j -= 1;
    }
    (j < stop).then(|| String::from_utf8_lossy(&text[j..stop]).into_owned())
}

/// Position just before any leading path prefix (`std::collections::`)
/// ending at `pos`.
pub(crate) fn skip_path_prefix(text: &[u8], mut pos: usize) -> usize {
    loop {
        let mut j = pos;
        while j > 0 && text[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        if j >= 2 && text[j - 1] == b':' && text[j - 2] == b':' {
            let mut k = j - 2;
            while k > 0 && text[k - 1].is_ascii_whitespace() {
                k -= 1;
            }
            while k > 0 && is_ident_byte(text[k - 1]) {
                k -= 1;
            }
            pos = k;
        } else {
            return j;
        }
    }
}

/// First non-whitespace byte at or after `pos`.
pub(crate) fn next_nonws(text: &[u8], mut pos: usize) -> Option<(usize, u8)> {
    while pos < text.len() {
        if !text[pos].is_ascii_whitespace() {
            return Some((pos, text[pos]));
        }
        pos += 1;
    }
    None
}

/// Last non-whitespace byte strictly before `pos`.
pub(crate) fn prev_nonws(text: &[u8], pos: usize) -> Option<(usize, u8)> {
    let mut j = pos;
    while j > 0 {
        j -= 1;
        if !text[j].is_ascii_whitespace() {
            return Some((j, text[j]));
        }
    }
    None
}

/// Offset of the `}` matching the `{` at `open` (depth-balanced), or the
/// end of text if unbalanced. Scrubbed text has no braces inside literals,
/// so plain depth counting is sound.
pub(crate) fn match_brace(text: &[u8], open: usize) -> usize {
    debug_assert_eq!(text.get(open), Some(&b'{'));
    let mut depth = 0usize;
    let mut i = open;
    while i < text.len() {
        match text[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    text.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(src: &str) -> String {
        String::from_utf8_lossy(&scrub(src)).into_owned()
    }

    #[test]
    fn c_string_literals_are_blanked() {
        // Rust 1.77 C-string literals, plain and raw: tokens inside must
        // not leak into the scrubbed text (regression: `cr#"…"#` used to
        // be scanned as `c` + normal string, exposing the interior).
        let src = "let a = c\"SystemTime\"; let b = cr#\"say \"thread_rng\" loud\"#; f();";
        let text = s(src);
        assert!(!text.contains("SystemTime"), "{text}");
        assert!(!text.contains("thread_rng"), "{text}");
        assert!(text.contains("f();"), "{text}");
    }

    #[test]
    fn raw_string_hash_fences_nest_correctly() {
        let src = "let a = r##\"inner \"# fence\"##; thread_rng();";
        let text = s(src);
        assert!(!text.contains("fence"), "{text}");
        assert!(text.contains("thread_rng"), "code after must survive: {text}");
    }

    #[test]
    fn idents_starting_with_prefix_letters_survive() {
        let src = "break_even(); crate_fn(); let r = 1; let b = 2; let c = 3; rb(); cr();";
        assert_eq!(s(src), src);
    }

    #[test]
    fn nested_block_comments_scrub_fully() {
        let src = "/* outer /* inner thread_rng */ still comment */ ok();";
        let text = s(src);
        assert!(!text.contains("thread_rng"), "{text}");
        assert!(text.contains("ok();"), "{text}");
    }

    #[test]
    fn byte_char_r_does_not_open_a_raw_string() {
        let src = "let x = b'r'; let y = \"done\"; tail();";
        let text = s(src);
        assert!(text.contains("tail();"), "{text}");
        assert!(!text.contains("done"), "{text}");
    }

    #[test]
    fn match_brace_balances() {
        let t = b"fn f() { if x { y(); } }";
        let open = t.iter().position(|&c| c == b'{').unwrap();
        assert_eq!(match_brace(t, open), t.len() - 1);
    }
}
