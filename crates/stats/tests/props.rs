//! Property tests for the statistics toolkit.

use proptest::prelude::*;

use pagesim_stats::{linear_regression, percentile, welch_t_test, LatencyHistogram, Summary};

fn naive_percentile(xs: &[f64], p: f64) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = p / 100.0 * (s.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    s[lo] + (s[hi] - s[lo]) * (rank - lo as f64)
}

proptest! {
    /// `percentile` matches an independent naive implementation.
    #[test]
    fn percentile_matches_naive(
        xs in prop::collection::vec(-1e6f64..1e6, 2..200),
        p in 0.0f64..100.0,
    ) {
        let a = percentile(&xs, p);
        let b = naive_percentile(&xs, p);
        prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()));
    }

    /// Summary invariants hold for any sample.
    #[test]
    fn summary_orderings(xs in prop::collection::vec(-1e9f64..1e9, 1..300)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std >= 0.0);
    }

    /// The histogram's percentile error is bounded by its bucket geometry
    /// for any sample set.
    #[test]
    fn histogram_error_is_bounded(samples in prop::collection::vec(1u64..1_000_000_000, 10..500)) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [10.0, 50.0, 90.0, 99.0] {
            let approx = h.value_at_percentile(p) as f64;
            let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
            let exact = sorted[idx] as f64;
            // 1/64 bucket resolution plus one-rank slack.
            let slack = exact * 0.04
                + (sorted[(idx + 1).min(sorted.len() - 1)] - sorted[idx.saturating_sub(1)]) as f64;
            prop_assert!(
                (approx - exact).abs() <= slack + 1.0,
                "p{p}: approx {approx} exact {exact}"
            );
        }
        prop_assert_eq!(h.count() as usize, samples.len());
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.min(), sorted[0]);
    }

    /// Welch's t-test is symmetric and produces a valid p-value.
    #[test]
    fn welch_is_symmetric(
        a in prop::collection::vec(-100f64..100.0, 2..40),
        b in prop::collection::vec(-100f64..100.0, 2..40),
    ) {
        let ab = welch_t_test(&a, &b);
        let ba = welch_t_test(&b, &a);
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        prop_assert!((ab.t + ba.t).abs() < 1e-9);
    }

    /// Shifting one sample away always shrinks the p-value (more evidence
    /// of difference).
    #[test]
    fn welch_p_shrinks_with_separation(base in prop::collection::vec(0f64..10.0, 5..30)) {
        prop_assume!(Summary::of(&base).std > 1e-6);
        let near: Vec<f64> = base.iter().map(|x| x + 0.1).collect();
        let far: Vec<f64> = base.iter().map(|x| x + 100.0).collect();
        let p_near = welch_t_test(&base, &near).p_value;
        let p_far = welch_t_test(&base, &far).p_value;
        prop_assert!(p_far <= p_near + 1e-12);
        prop_assert!(p_far < 1e-6);
    }

    /// Regression recovers exact affine relationships and r² stays in
    /// [0, 1] on noisy ones.
    #[test]
    fn regression_recovers_affine(
        xs in prop::collection::vec(-1000f64..1000.0, 3..100),
        slope in -100f64..100.0,
        intercept in -100f64..100.0,
    ) {
        let spread = Summary::of(&xs).std;
        prop_assume!(spread > 1e-3);
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let r = linear_regression(&xs, &ys);
        prop_assert!((r.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()) + 1e-6);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.r_squared));
    }
}

// ---------------------------------------------------------------------------
// Mergeable-accumulator laws. The sweep executor computes per-trial
// metrics on arbitrary workers and folds them in canonical order; these
// properties are what make the fold's result independent of how trials
// were partitioned across workers.

fn hist_of(xs: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &x in xs {
        h.record(x);
    }
    h
}

fn moments_of(xs: &[f64]) -> pagesim_stats::Moments {
    let mut m = pagesim_stats::Moments::new();
    for &x in xs {
        m.add(x);
    }
    m
}

proptest! {
    /// Histogram merge is commutative and associative *exactly*: the
    /// state is integer counters, so any merge tree over any partition
    /// of the samples yields bit-identical parts.
    #[test]
    fn histogram_merge_commutes_and_associates(
        a in prop::collection::vec(0u64..10_000_000_000, 0..200),
        b in prop::collection::vec(0u64..10_000_000_000, 0..200),
        c in prop::collection::vec(0u64..10_000_000_000, 0..200),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.to_parts(), ba.to_parts());

        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c.to_parts(), a_bc.to_parts());
    }

    /// Merging any split of a sample equals recording it in one pass.
    #[test]
    fn histogram_merge_matches_any_partition(
        xs in prop::collection::vec(0u64..10_000_000_000, 0..300),
        cut_permille in 0u64..=1000,
    ) {
        let cut = (xs.len() as u64 * cut_permille / 1000) as usize;
        let mut merged = hist_of(&xs[..cut]);
        merged.merge(&hist_of(&xs[cut..]));
        prop_assert_eq!(merged.to_parts(), hist_of(&xs).to_parts());
    }

    /// Moments merge is commutative bit-exactly (the Chan update only
    /// uses symmetric sums and squared differences).
    #[test]
    fn moments_merge_commutes(
        a in prop::collection::vec(-1e9f64..1e9, 0..100),
        b in prop::collection::vec(-1e9f64..1e9, 0..100),
    ) {
        let (ma, mb) = (moments_of(&a), moments_of(&b));
        let ab = ma.merged(&mb);
        let ba = mb.merged(&ma);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.mean().to_bits(), ba.mean().to_bits());
        prop_assert_eq!(ab.variance().to_bits(), ba.variance().to_bits());
        prop_assert_eq!(ab.min().to_bits(), ba.min().to_bits());
        prop_assert_eq!(ab.max().to_bits(), ba.max().to_bits());
    }

    /// `to_parts` → `from_parts` reconstructs any reachable histogram
    /// exactly: same counts, same summary statistics, same percentiles.
    #[test]
    fn histogram_parts_roundtrip(
        xs in prop::collection::vec(0u64..10_000_000_000, 0..300),
    ) {
        let h = hist_of(&xs);
        let (sparse, sum, min, max) = h.to_parts();
        let back = LatencyHistogram::from_parts(&sparse, sum, min, max).unwrap();
        prop_assert_eq!(back.count(), h.count());
        prop_assert_eq!(back.min(), h.min());
        prop_assert_eq!(back.max(), h.max());
        prop_assert_eq!(back.mean().to_bits(), h.mean().to_bits());
        prop_assert_eq!(back.to_parts(), h.to_parts());
        if h.count() > 0 {
            for p in [0.0, 50.0, 99.0, 100.0] {
                prop_assert_eq!(back.value_at_percentile(p), h.value_at_percentile(p));
            }
        }
    }

    /// `to_parts` → `from_parts` reconstructs any reachable accumulator
    /// bit-for-bit, and `from_parts` accepts every reachable state.
    #[test]
    fn moments_parts_roundtrip(
        xs in prop::collection::vec(-1e9f64..1e9, 0..200),
    ) {
        let m = moments_of(&xs);
        let (n, mean, m2, min, max) = m.to_parts();
        let back = pagesim_stats::Moments::from_parts(n, mean, m2, min, max)
            .expect("reachable state must be accepted");
        prop_assert_eq!(back.count(), m.count());
        prop_assert_eq!(back.mean().to_bits(), m.mean().to_bits());
        prop_assert_eq!(back.variance().to_bits(), m.variance().to_bits());
        prop_assert_eq!(back.min().to_bits(), m.min().to_bits());
        prop_assert_eq!(back.max().to_bits(), m.max().to_bits());
    }

    /// Any partition of a sample merges to the single-pass statistics up
    /// to floating-point rounding, and min/max/count exactly.
    #[test]
    fn moments_merge_matches_any_partition(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        cut_permille in 0u64..=1000,
        cut2_permille in 0u64..=1000,
    ) {
        let cut = (xs.len() as u64 * cut_permille / 1000) as usize;
        let rest = xs.len() - cut;
        let cut2 = cut + (rest as u64 * cut2_permille / 1000) as usize;
        let merged = moments_of(&xs[..cut])
            .merged(&moments_of(&xs[cut..cut2]))
            .merged(&moments_of(&xs[cut2..]));
        let single = moments_of(&xs);
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.min().to_bits(), single.min().to_bits());
        prop_assert_eq!(merged.max().to_bits(), single.max().to_bits());
        let scale = 1.0 + single.mean().abs();
        prop_assert!((merged.mean() - single.mean()).abs() <= 1e-9 * scale);
        let vscale = 1.0 + single.variance().abs();
        prop_assert!((merged.variance() - single.variance()).abs() <= 1e-6 * vscale);
    }
}

// ---------------------------------------------------------------------------
// Percentile edge cases that random sampling rarely pins down exactly.

#[test]
fn histogram_single_bucket_percentiles_are_exact() {
    // Every sample in one bucket: min == max clamps the representative
    // value, so every percentile is the recorded value exactly.
    let mut h = LatencyHistogram::new();
    for _ in 0..1000 {
        h.record(123_457);
    }
    for p in [0.0, 0.1, 50.0, 99.99, 100.0] {
        assert_eq!(h.value_at_percentile(p), 123_457, "p{p}");
    }
}

#[test]
#[should_panic(expected = "empty")]
fn histogram_percentile_of_empty_rejected() {
    LatencyHistogram::from_parts(&[], 0, 0, 0)
        .unwrap()
        .value_at_percentile(50.0);
}

#[test]
fn percentile_of_singleton_is_the_element() {
    for p in [0.0, 37.5, 100.0] {
        assert_eq!(percentile(&[42.0], p), 42.0, "p{p}");
    }
}
