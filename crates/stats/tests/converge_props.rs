//! Property tests for the `repro bench` stopping rule (ISSUE 7 satellite):
//! the CI-width criterion terminates for finite-variance streams, never
//! declares convergence before the minimum sample count, and the interval
//! math agrees with a brute-force recomputation from first principles.

use proptest::prelude::*;

use pagesim_stats::{t_critical_95, Decision, Moments, StopRule};

fn moments_of(xs: &[f64]) -> Moments {
    let mut m = Moments::new();
    for &x in xs {
        m.add(x);
    }
    m
}

/// Brute-force CI from the raw sample, independent of `Moments`' streaming
/// update: textbook mean, n−1 variance, and `mean ± t·s/√n`.
fn naive_ci(xs: &[f64]) -> (f64, f64, f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    let stderr = (var / n).sqrt();
    let half = t_critical_95(n - 1.0) * stderr;
    (mean, stderr, mean - half, mean + half)
}

proptest! {
    /// The rule always stops at or before the cap, and any stop at the cap
    /// without meeting the criterion says `converged: false`.
    #[test]
    fn terminates_for_any_finite_stream(
        xs in prop::collection::vec(0.0f64..1e6, 64..128),
        min in 2u64..8,
        cap in 8u64..64,
    ) {
        let rule = StopRule::new(0.10, min, cap);
        let mut m = Moments::new();
        let mut stop = None;
        for &x in &xs {
            m.add(x);
            if let Decision::Stop { converged } = rule.decide(&m) {
                stop = Some((m.count(), converged));
                break;
            }
        }
        // The stream is longer than the cap, so a stop must have happened.
        let (n, converged) = stop.expect("rule must stop by the cap");
        prop_assert!(n >= min && n <= cap, "stopped at n={n}");
        if n == cap && !converged {
            prop_assert!(rule.estimate(&m).ci_width_ratio > 0.10);
        }
        if converged {
            prop_assert!(rule.estimate(&m).ci_width_ratio <= 0.10);
        }
    }

    /// Convergence is never declared before `min_samples`, no matter how
    /// stable the stream is.
    #[test]
    fn never_converged_before_min(
        value in 1.0f64..1e9,
        min in 2u64..32,
    ) {
        let rule = StopRule::new(0.10, min, min + 100);
        let mut m = Moments::new();
        for i in 1..min {
            m.add(value); // zero variance: maximally convergence-friendly
            prop_assert_eq!(rule.decide(&m), Decision::Continue, "n={}", i);
            prop_assert!(!rule.estimate(&m).converged, "n={}", i);
        }
        m.add(value);
        prop_assert_eq!(rule.decide(&m), Decision::Stop { converged: true });
    }

    /// The streaming CI agrees with a brute-force recomputation from the
    /// raw samples.
    #[test]
    fn ci_matches_brute_force(
        xs in prop::collection::vec(-1e6f64..1e6, 2..100),
    ) {
        let rule = StopRule::new(0.10, 2, 1000);
        let est = rule.estimate(&moments_of(&xs));
        let (mean, stderr, lo, hi) = naive_ci(&xs);
        let scale = 1.0 + mean.abs() + stderr.abs();
        prop_assert!((est.mean - mean).abs() <= 1e-9 * scale, "mean");
        prop_assert!((est.stderr - stderr).abs() <= 1e-6 * scale, "stderr");
        prop_assert!((est.ci_lo - lo).abs() <= 1e-6 * scale, "ci_lo");
        prop_assert!((est.ci_hi - hi).abs() <= 1e-6 * scale, "ci_hi");
        prop_assert_eq!(est.samples, xs.len() as u64);
    }

    /// The reported interval always brackets the mean and the width ratio
    /// is consistent with the endpoints.
    #[test]
    fn interval_is_internally_consistent(
        xs in prop::collection::vec(0.5f64..1e6, 2..100),
    ) {
        let rule = StopRule::new(0.10, 2, 1000);
        let est = rule.estimate(&moments_of(&xs));
        prop_assert!(est.ci_lo <= est.mean && est.mean <= est.ci_hi);
        prop_assert!(est.min <= est.mean && est.mean <= est.max);
        let width = est.ci_hi - est.ci_lo;
        // All samples positive → mean > 0 → ratio is width / mean.
        let ratio = width / est.mean;
        prop_assert!((est.ci_width_ratio - ratio).abs() <= 1e-9 * (1.0 + ratio));
        prop_assert_eq!(est.converged, ratio <= 0.10);
    }

    /// t-critical values decrease with df and stay above the normal-limit
    /// 1.96 — the monotonicity the bisection relies on.
    #[test]
    fn t_critical_is_monotone(df in 1.0f64..500.0) {
        let t = t_critical_95(df);
        let t_next = t_critical_95(df + 1.0);
        prop_assert!(t_next <= t + 1e-9, "df={df}: {t} -> {t_next}");
        prop_assert!(t >= 1.959, "df={df}: {t}");
        prop_assert!(t <= 12.707, "df={df}: {t}");
    }
}

/// A low-variance-but-not-constant stream converges well before a generous
/// cap: the half-width shrinks like 1/√n, so termination is guaranteed for
/// any finite-variance stream with nonzero mean.
#[test]
fn low_noise_stream_converges_before_cap() {
    let rule = StopRule::ten_percent(3, 10_000);
    let mut m = Moments::new();
    let mut stopped_at = None;
    for i in 0u64..10_000 {
        // Deterministic ±1% wobble around 100.
        let x = 100.0 + if i % 2 == 0 { 1.0 } else { -1.0 };
        m.add(x);
        if let Decision::Stop { converged } = rule.decide(&m) {
            assert!(converged);
            stopped_at = Some(m.count());
            break;
        }
    }
    let n = stopped_at.expect("must converge");
    assert!(n < 100, "converged at n={n}");
}
