//! Order-independent streaming moments.
//!
//! The parallel sweep executor reduces per-trial metrics in whatever order
//! workers finish, so its summary statistics must come from a merge that is
//! exactly commutative and associative up to floating-point rounding.
//! [`Moments`] implements Chan et al.'s pairwise update: merging two
//! accumulators combines counts, means and centered second moments without
//! revisiting the samples, so any partition of a sample into chunks reduces
//! to the same result (bit-exact under operand swap, within rounding under
//! re-association).

/// Streaming count/mean/variance/min/max accumulator with a mergeable
/// representation.
///
/// ```rust
/// use pagesim_stats::Moments;
/// let mut a = Moments::new();
/// let mut b = Moments::new();
/// for x in [1.0, 2.0] { a.add(x); }
/// for x in [3.0, 4.0] { b.add(x); }
/// let m = a.merged(&b);
/// assert_eq!(m.count(), 4);
/// assert!((m.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// An empty accumulator (the merge identity).
    pub fn new() -> Moments {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one sample in (Welford's update).
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        self.mean = (na * self.mean + nb * other.mean) / n;
        self.m2 = self.m2 + other.m2 + delta * delta * na * nb / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Returns the merge of `self` and `other`, leaving both untouched.
    pub fn merged(&self, other: &Moments) -> Moments {
        let mut m = *self;
        m.merge(other);
        m
    }

    /// Samples folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator); 0 for n < 2.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The accumulator's full state as `(n, mean, m2, min, max)`.
    ///
    /// This is everything [`Moments`] stores, so
    /// [`from_parts`](Moments::from_parts) reconstructs a bit-identical
    /// accumulator — serializers (the cell cache, trace exporters) go
    /// through this rather than reaching into fields.
    pub fn to_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`to_parts`](Moments::to_parts) output.
    ///
    /// Returns `None` for states no sequence of [`add`](Moments::add) /
    /// [`merge`](Moments::merge) calls can produce: any NaN field, a
    /// negative centered second moment, or (for non-empty states) an
    /// inverted min/max pair. An `n` of 0 reconstructs the empty
    /// accumulator regardless of the float fields.
    pub fn from_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Option<Moments> {
        if n == 0 {
            return Some(Moments::new());
        }
        if mean.is_nan() || m2.is_nan() || min.is_nan() || max.is_nan() {
            return None;
        }
        if m2 < 0.0 || min > max {
            return None;
        }
        Some(Moments {
            n,
            mean,
            m2,
            min,
            max,
        })
    }
}

impl Default for Moments {
    fn default() -> Self {
        Moments::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = Moments::new();
        for &x in &xs {
            m.add(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.std() - 2.138089935299395).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 50.0).collect();
        let mut whole = Moments::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Moments::new();
        let mut b = Moments::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        let m = a.merged(&b);
        assert_eq!(m.count(), whole.count());
        assert!((m.mean() - whole.mean()).abs() < 1e-9);
        assert!((m.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn parts_roundtrip_and_rejection() {
        let mut m = Moments::new();
        for x in [2.0, -7.5, 11.0, 0.25] {
            m.add(x);
        }
        let (n, mean, m2, min, max) = m.to_parts();
        assert_eq!(Moments::from_parts(n, mean, m2, min, max), Some(m));
        // Empty state reconstructs regardless of the float fields.
        assert_eq!(
            Moments::from_parts(0, f64::NAN, -1.0, 5.0, -5.0),
            Some(Moments::new())
        );
        // Unreachable states are rejected.
        assert!(Moments::from_parts(3, f64::NAN, 0.0, 0.0, 1.0).is_none());
        assert!(Moments::from_parts(3, 0.5, -1e-9, 0.0, 1.0).is_none());
        assert!(Moments::from_parts(3, 0.5, 0.0, 1.0, 0.0).is_none());
    }

    #[test]
    fn empty_is_identity() {
        let mut m = Moments::new();
        m.add(3.0);
        let merged = m.merged(&Moments::new());
        assert_eq!(merged, m);
        let merged = Moments::new().merged(&m);
        assert_eq!(merged, m);
        assert_eq!(Moments::new().mean(), 0.0);
        assert_eq!(Moments::new().std(), 0.0);
    }
}
