//! Adaptive stopping rule for statistically-converged benchmarking.
//!
//! The source paper fights run-to-run variance with a fixed 25-reboot
//! repetition; the benchmark harness instead samples each metric until its
//! 95% confidence interval is narrow *relative to the mean* — the
//! convergence scheme used by lambars' `stats_format.md` (SNIPPETS.md §1):
//! a metric is converged when `(ci_hi - ci_lo) / mean < 0.1`. A hard
//! sample cap bounds the cost of a metric that never settles; tripping the
//! cap is reported honestly as `converged: false` rather than silently
//! accepted.
//!
//! The CI uses Student's t on the standard error (`stddev / sqrt(n)`), so
//! small sample counts get appropriately wide intervals; critical values
//! come from inverting the same incomplete-beta p-value the Welch t-test
//! uses, not from a lookup table.

use crate::moments::Moments;
use crate::ttest::student_t_two_sided_p;

/// Two-sided 95% Student-t critical value for `df` degrees of freedom:
/// the `t` with `P(|T| >= t) = 0.05`.
///
/// Computed by bisection on the monotone p-value function (exact to the
/// incomplete-beta implementation's precision, ~1e-10). For reference:
/// `df = 2 → 4.303`, `df = 10 → 2.228`, `df → ∞ → 1.960`.
///
/// # Panics
///
/// Panics if `df` is not strictly positive and finite.
pub fn t_critical_95(df: f64) -> f64 {
    assert!(df > 0.0 && df.is_finite(), "invalid degrees of freedom");
    const ALPHA: f64 = 0.05;
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // p(hi) decreases as hi grows; expand until we bracket alpha. df = 1
    // (Cauchy) needs t ≈ 12.7, so the bracket grows fast but stays finite.
    while student_t_two_sided_p(hi, df) > ALPHA {
        hi *= 2.0;
        if hi > 1e9 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_two_sided_p(mid, df) > ALPHA {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// A point estimate with its uncertainty, in the `stats.json` shape of
/// SNIPPETS.md §1: mean, spread, a 95% CI, the CI-width-to-mean ratio the
/// stopping rule thresholds on, and the convergence verdict.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricEstimate {
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub stddev: f64,
    /// Standard error of the mean (`stddev / sqrt(n)`).
    pub stderr: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample count.
    pub samples: u64,
    /// Lower bound of the 95% CI (`mean - t * stderr`).
    pub ci_lo: f64,
    /// Upper bound of the 95% CI.
    pub ci_hi: f64,
    /// `(ci_hi - ci_lo) / |mean|`; infinite when the mean is zero but the
    /// interval is not (near-zero means are judged on absolute width).
    pub ci_width_ratio: f64,
    /// Whether the stopping rule's criterion was met before the cap.
    pub converged: bool,
}

/// What the stopping rule says to do after the latest sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Keep sampling: below the minimum count, or not yet converged and
    /// below the cap.
    Continue,
    /// Stop. `converged: false` means the hard cap tripped first.
    Stop {
        /// Whether the CI-width criterion was satisfied.
        converged: bool,
    },
}

/// The adaptive stopping rule: sample until the 95% CI width is below
/// `rel_width` of the mean, bounded by `[min_samples, max_samples]`.
///
/// ```rust
/// use pagesim_stats::{Moments, StopRule, Decision};
/// let rule = StopRule::new(0.10, 3, 100);
/// let mut m = Moments::new();
/// loop {
///     m.add(42.0); // a perfectly stable metric
///     match rule.decide(&m) {
///         Decision::Continue => {}
///         Decision::Stop { converged } => {
///             assert!(converged);
///             break;
///         }
///     }
/// }
/// assert_eq!(m.count(), 3); // converged exactly at the minimum
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StopRule {
    /// Maximum accepted `(ci_hi - ci_lo) / |mean|` (0.10 = the 10% rule).
    pub rel_width: f64,
    /// Samples required before convergence may be declared (≥ 2, so a CI
    /// exists at all).
    pub min_samples: u64,
    /// Hard cap; reaching it stops sampling with `converged: false`.
    pub max_samples: u64,
}

impl StopRule {
    /// Builds a rule, validating `rel_width > 0` and
    /// `2 <= min_samples <= max_samples`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid combination.
    pub fn new(rel_width: f64, min_samples: u64, max_samples: u64) -> StopRule {
        assert!(rel_width > 0.0 && rel_width.is_finite(), "invalid rel_width");
        assert!(min_samples >= 2, "CI needs at least 2 samples");
        assert!(max_samples >= min_samples, "cap below minimum");
        StopRule {
            rel_width,
            min_samples,
            max_samples,
        }
    }

    /// The default 10%-width / 95%-confidence rule over `[min, max]`
    /// samples.
    pub fn ten_percent(min_samples: u64, max_samples: u64) -> StopRule {
        StopRule::new(0.10, min_samples, max_samples)
    }

    /// The estimate for the samples accumulated so far. `converged`
    /// reflects this rule's criterion (width ratio *and* minimum count).
    pub fn estimate(&self, m: &Moments) -> MetricEstimate {
        let n = m.count();
        let mean = m.mean();
        let stddev = m.std();
        let (stderr, half) = if n >= 2 {
            let se = stddev / (n as f64).sqrt();
            (se, t_critical_95((n - 1) as f64) * se)
        } else {
            (0.0, 0.0)
        };
        let (ci_lo, ci_hi) = (mean - half, mean + half);
        let width = 2.0 * half;
        let ci_width_ratio = if width == 0.0 {
            0.0
        } else if mean == 0.0 {
            f64::INFINITY
        } else {
            width / mean.abs()
        };
        MetricEstimate {
            mean,
            stddev,
            stderr,
            min: m.min(),
            max: m.max(),
            samples: n,
            ci_lo,
            ci_hi,
            ci_width_ratio,
            converged: n >= self.min_samples && ci_width_ratio <= self.rel_width,
        }
    }

    /// The decision after the samples accumulated so far.
    pub fn decide(&self, m: &Moments) -> Decision {
        let n = m.count();
        if n < self.min_samples {
            return Decision::Continue;
        }
        let est = self.estimate(m);
        if est.converged {
            Decision::Stop { converged: true }
        } else if n >= self.max_samples {
            Decision::Stop { converged: false }
        } else {
            Decision::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_critical_matches_standard_tables() {
        // Two-sided 95% critical values (any standard t table).
        for (df, expect) in [
            (1.0, 12.706),
            (2.0, 4.303),
            (5.0, 2.571),
            (10.0, 2.228),
            (30.0, 2.042),
            (100.0, 1.984),
            (10_000.0, 1.960),
        ] {
            let t = t_critical_95(df);
            assert!(
                (t - expect).abs() < 2e-3,
                "df={df}: got {t}, expected {expect}"
            );
        }
    }

    #[test]
    fn constant_stream_converges_at_minimum() {
        let rule = StopRule::ten_percent(4, 100);
        let mut m = Moments::new();
        for i in 1..=10u64 {
            m.add(7.0);
            let d = rule.decide(&m);
            if i < 4 {
                assert_eq!(d, Decision::Continue, "n={i}");
            } else {
                assert_eq!(d, Decision::Stop { converged: true }, "n={i}");
                break;
            }
        }
        let est = rule.estimate(&m);
        assert_eq!(est.samples, 4);
        assert_eq!(est.ci_width_ratio, 0.0);
        assert!(est.converged);
    }

    #[test]
    fn cap_trips_with_converged_false() {
        // Alternating extremes never get a narrow relative CI.
        let rule = StopRule::ten_percent(2, 12);
        let mut m = Moments::new();
        let mut stopped = None;
        for i in 0..1000 {
            m.add(if i % 2 == 0 { 1.0 } else { 1000.0 });
            if let Decision::Stop { converged } = rule.decide(&m) {
                stopped = Some((m.count(), converged));
                break;
            }
        }
        assert_eq!(stopped, Some((12, false)));
        assert!(!rule.estimate(&m).converged);
    }

    #[test]
    fn matches_snippet_worked_example() {
        // SNIPPETS.md §1: n = 3, t(0.975, 2) = 4.303, stderr 0.462 →
        // half-width ≈ 1.99, ratio ≈ 0.093 → converged under the 10% rule.
        let rule = StopRule::ten_percent(3, 100);
        let mut m = Moments::new();
        for x in [41.8, 42.74, 43.4] {
            m.add(x);
        }
        let est = rule.estimate(&m);
        assert!((est.mean - 42.646_666).abs() < 1e-3);
        assert!((est.stderr - 0.4647).abs() < 2e-3, "stderr {}", est.stderr);
        let half = est.ci_hi - est.mean;
        assert!((half - 2.0).abs() < 0.02, "half {half}");
        assert!(est.ci_width_ratio < 0.10 && est.converged);
    }

    #[test]
    fn zero_mean_uses_absolute_verdict() {
        let rule = StopRule::ten_percent(3, 10);
        let mut m = Moments::new();
        for x in [-1.0, 0.0, 1.0] {
            m.add(x);
        }
        let est = rule.estimate(&m);
        assert!(est.ci_width_ratio.is_infinite());
        assert!(!est.converged);
        // All-zero samples: zero width, converged.
        let mut z = Moments::new();
        for _ in 0..3 {
            z.add(0.0);
        }
        assert!(rule.estimate(&z).converged);
    }

    #[test]
    #[should_panic(expected = "CI needs at least 2 samples")]
    fn rejects_min_below_two() {
        StopRule::new(0.1, 1, 10);
    }
}
