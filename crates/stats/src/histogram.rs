//! Log-bucketed latency histogram.
//!
//! YCSB runs record one latency per request; at the paper's scale that is
//! 110 million samples. Storing each sample to compute p99.99 would be
//! wasteful, so we use an HDR-style histogram: logarithmic major buckets
//! with linear sub-buckets, giving a bounded relative error (< 1/64 ≈ 1.6%
//! by default) at any percentile with a few KiB of memory.



const SUB_BUCKET_BITS: u32 = 6; // 64 linear sub-buckets per power of two
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// A fixed-memory histogram of `u64` latency samples (nanoseconds).
///
/// ```rust
/// use pagesim_stats::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for v in [100u64, 200, 300, 400, 10_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// // p50 is within the histogram's relative error of 300
/// let p50 = h.value_at_percentile(50.0);
/// assert!((p50 as f64 - 300.0).abs() / 300.0 < 0.02);
/// ```
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    // buckets[major][sub]: major = floor(log2(v)) - SUB_BUCKET_BITS clamped,
    // flattened into one Vec.
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const MAJORS: usize = 64 - SUB_BUCKET_BITS as usize; // value range up to 2^63

impl LatencyHistogram {
    /// Creates an empty histogram covering `1 ..= 2^63` nanoseconds.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; MAJORS * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        let v = value.max(1);
        let msb = 63 - v.leading_zeros();
        if msb < SUB_BUCKET_BITS {
            // Values below 2^6 land in major 0 with exact resolution.
            v as usize
        } else {
            let major = (msb - SUB_BUCKET_BITS + 1) as usize;
            let shift = msb - SUB_BUCKET_BITS;
            let sub = ((v >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
            major * SUB_BUCKETS + sub
        }
    }

    /// Representative (upper-mid) value of bucket `idx`.
    fn value_of(idx: usize) -> u64 {
        let major = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if major == 0 {
            sub
        } else {
            let shift = major as u32 + SUB_BUCKET_BITS - 1;
            // bucket covers [base, base + 2^(shift) ), report midpoint
            let base = (SUB_BUCKETS as u64 + sub) << (shift - SUB_BUCKET_BITS);
            base + (1u64 << (shift - SUB_BUCKET_BITS)) / 2
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum recorded sample; 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact minimum recorded sample; 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// The approximate value at percentile `p` (0–100), within the
    /// histogram's relative error.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `p` is outside `[0, 100]`.
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        assert!(self.total > 0, "percentile of empty histogram");
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if p >= 100.0 {
            return self.max;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_of(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The histogram's full state as `(sparse buckets, sum, min, max)`.
    ///
    /// Sparse buckets are `(index, count)` pairs for every non-zero bucket
    /// in ascending index order. Together with the sample sum and the exact
    /// min/max this is everything [`LatencyHistogram`] stores, so
    /// [`from_parts`](LatencyHistogram::from_parts) reconstructs a
    /// byte-identical histogram — the cell cache serializes through this.
    pub fn to_parts(&self) -> (Vec<(u32, u64)>, u128, u64, u64) {
        let sparse = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        (sparse, self.sum, self.min, self.max)
    }

    /// Rebuilds a histogram from [`to_parts`](LatencyHistogram::to_parts)
    /// output. Returns `None` if a bucket index is out of range (corrupt
    /// or foreign data).
    pub fn from_parts(sparse: &[(u32, u64)], sum: u128, min: u64, max: u64) -> Option<Self> {
        let mut h = LatencyHistogram::new();
        for &(idx, count) in sparse {
            *h.counts.get_mut(idx as usize)? += count;
            h.total += count;
        }
        h.sum = sum;
        // An empty histogram's sentinel min is u64::MAX; preserve it.
        h.min = if h.total == 0 { u64::MAX } else { min };
        h.max = max;
        Some(h)
    }

    /// Convenience: the tail profile the paper's figures use.
    ///
    /// Returns `(p, value)` pairs for p ∈ {50, 90, 99, 99.9, 99.99}.
    pub fn tail_profile(&self) -> Vec<(f64, u64)> {
        [50.0, 90.0, 99.0, 99.9, 99.99]
            .iter()
            .map(|&p| (p, self.value_at_percentile(p)))
            .collect()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::percentile_sorted;

    /// Exact percentile over raw samples, for cross-checking the histogram.
    fn exact_percentile(samples: &mut [u64], p: f64) -> u64 {
        samples.sort_unstable();
        let xs: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        percentile_sorted(&xs, p) as u64
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 1..=63u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 63);
        assert_eq!(h.count(), 63);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        let mut raw = Vec::new();
        let mut x = 1u64;
        // Geometric sweep across 12 orders of magnitude.
        while x < 1_000_000_000_000 {
            h.record(x);
            raw.push(x);
            x = x * 21 / 20 + 1;
        }
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9] {
            let approx = h.value_at_percentile(p) as f64;
            let mut r = raw.clone();
            let exact = exact_percentile(&mut r, p) as f64;
            let err = (approx - exact).abs() / exact;
            assert!(err < 0.05, "p{p}: approx {approx} exact {exact} err {err}");
        }
    }

    #[test]
    fn p100_is_exact_max() {
        let mut h = LatencyHistogram::new();
        h.record(123_456_789);
        h.record(7);
        assert_eq!(h.value_at_percentile(100.0), 123_456_789);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(200);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 300);
        assert_eq!(a.min(), 100);
        assert!((a.mean() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn tail_profile_is_monotone() {
        let mut h = LatencyHistogram::new();
        let mut v = 17u64;
        for _ in 0..100_000 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record((v >> 40).max(1));
        }
        let prof = h.tail_profile();
        for w in prof.windows(2) {
            assert!(w[1].1 >= w[0].1, "profile not monotone: {prof:?}");
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        LatencyHistogram::new().value_at_percentile(50.0);
    }

    #[test]
    fn parts_roundtrip_is_exact() {
        let mut h = LatencyHistogram::new();
        let mut v = 3u64;
        for _ in 0..10_000 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record((v >> 33).max(1));
        }
        let (sparse, sum, min, max) = h.to_parts();
        let back = LatencyHistogram::from_parts(&sparse, sum, min, max).unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        assert_eq!(back.mean(), h.mean());
        for p in [50.0, 90.0, 99.0, 99.99] {
            assert_eq!(back.value_at_percentile(p), h.value_at_percentile(p));
        }
        // Empty roundtrip keeps reporting zeros.
        let (s, sum, min, max) = LatencyHistogram::new().to_parts();
        let e = LatencyHistogram::from_parts(&s, sum, min, max).unwrap();
        assert_eq!(e.count(), 0);
        assert_eq!(e.min(), 0);
        // Out-of-range bucket index is rejected.
        assert!(LatencyHistogram::from_parts(&[(u32::MAX, 1)], 0, 0, 0).is_none());
    }

    #[test]
    fn bucket_roundtrip_error_bounded() {
        // For any value, the representative value of its bucket must be
        // within 1/64 relative error (plus rounding) of the value.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let idx = LatencyHistogram::index_of(v);
            let rep = LatencyHistogram::value_of(idx);
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.03 || v < 64, "v={v} rep={rep} err={err}");
            v = v * 3 / 2 + 1;
        }
    }
}
