//! # pagesim-stats
//!
//! Statistics used by the `pagesim` experiment harness to reproduce the
//! quantitative claims in the paper:
//!
//! * [`Summary`] — mean/std/min/max/quartiles of a sample (Fig. 1, 4, 6, 7,
//!   9, 10 report means and box-whisker fault distributions).
//! * [`percentile`] / [`LatencyHistogram`] — tail-latency CDFs
//!   (Fig. 3, 8, 12 report p50…p99.99 request latencies).
//! * [`linear_regression`] — OLS slope/intercept/r² (the paper reports
//!   r² > 0.98 for the faults↔runtime relationship on TPC-H, Fig. 2/5).
//! * [`welch_t_test`] — two-sample unequal-variance t-test (the paper's
//!   p < 0.01 / p > 0.05 significance claims in §V-B and §V-C).
//! * [`StopRule`] / [`MetricEstimate`] — adaptive CI-width stopping rule
//!   driving the `repro bench` convergence loop (sample until the 95% CI
//!   is narrower than 10% of the mean, with a hard cap).
//!
//! Everything is implemented from scratch on `f64` slices; no external
//! statistics crates are used.
//!
//! ```rust
//! use pagesim_stats::Summary;
//! let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean, 2.5);
//! assert_eq!(s.min, 1.0);
//! assert_eq!(s.max, 4.0);
//! ```


mod converge;
mod histogram;
mod moments;
mod regression;
mod summary;
mod ttest;

pub use converge::{t_critical_95, Decision, MetricEstimate, StopRule};
pub use histogram::LatencyHistogram;
pub use moments::Moments;
pub use regression::{linear_regression, Regression};
pub use summary::{percentile, Summary};
pub use ttest::{welch_t_test, TTest};

/// Normalizes each value in `xs` by `base`.
///
/// Used pervasively by the figure harnesses ("normalized to Clock-LRU",
/// "normalized to default MG-LRU").
///
/// # Panics
///
/// Panics if `base` is zero or not finite.
pub fn normalize(xs: &[f64], base: f64) -> Vec<f64> {
    assert!(base.is_finite() && base != 0.0, "invalid normalization base");
    xs.iter().map(|x| x / base).collect()
}

/// Geometric mean of strictly positive values.
///
/// # Panics
///
/// Panics if `xs` is empty or contains a non-positive value.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_divides() {
        assert_eq!(normalize(&[2.0, 4.0], 2.0), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "invalid normalization base")]
    fn normalize_rejects_zero_base() {
        normalize(&[1.0], 0.0);
    }

    #[test]
    fn geomean_of_reciprocals_is_one() {
        let g = geometric_mean(&[2.0, 0.5]);
        assert!((g - 1.0).abs() < 1e-12);
    }
}
