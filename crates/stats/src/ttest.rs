//! Welch's unequal-variance t-test.
//!
//! The paper reports statistical significance of mean-runtime differences
//! between policies ("statistically significant in all cases (p < 0.01)" in
//! §V-C; "no statistically significant differences (p > 0.05)" in §V-B).
//! We implement the same test from scratch: Welch's t statistic with the
//! Welch–Satterthwaite degrees of freedom, and a two-sided p-value computed
//! through the regularized incomplete beta function.

/// Result of a two-sample Welch t-test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TTest {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite effective degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Runs Welch's t-test on two samples.
///
/// # Panics
///
/// Panics if either sample has fewer than 2 points.
///
/// ```rust
/// use pagesim_stats::welch_t_test;
/// let a = [10.0, 11.0, 9.5, 10.5, 10.2, 9.8];
/// let b = [20.0, 21.0, 19.5, 20.5, 20.2, 19.8];
/// let r = welch_t_test(&a, &b);
/// assert!(r.p_value < 0.001); // clearly different means
/// ```
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TTest {
    assert!(a.len() >= 2 && b.len() >= 2, "each sample needs >= 2 points");
    let (ma, va, na) = mean_var(a);
    let (mb, vb, nb) = mean_var(b);
    let sa = va / na;
    let sb = vb / nb;
    let se2 = sa + sb;
    if se2 == 0.0 {
        // Identical constant samples: no evidence of difference.
        let equal = (ma - mb).abs() < f64::EPSILON;
        return TTest {
            t: if equal { 0.0 } else { f64::INFINITY },
            df: na + nb - 2.0,
            p_value: if equal { 1.0 } else { 0.0 },
        };
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2 / (sa * sa / (na - 1.0) + sb * sb / (nb - 1.0));
    let p_value = student_t_two_sided_p(t.abs(), df);
    TTest { t, df, p_value }
}

fn mean_var(xs: &[f64]) -> (f64, f64, f64) {
    let n = xs.len() as f64;
    let m = xs.iter().sum::<f64>() / n;
    let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1.0);
    (m, v, n)
}

/// Two-sided p-value for |t| with `df` degrees of freedom:
/// `P(|T| >= t) = I_{df/(df+t²)}(df/2, 1/2)`.
///
/// Crate-visible so the convergence module can invert it into critical
/// values without duplicating the incomplete-beta machinery.
pub(crate) fn student_t_two_sided_p(t_abs: f64, df: f64) -> f64 {
    let x = df / (df + t_abs * t_abs);
    incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz continued
/// fraction (Numerical Recipes §6.4).
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // even step
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // odd step
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        for (n, fact) in [(1.0, 1.0), (2.0, 1.0), (3.0, 2.0), (5.0, 24.0), (7.0, 720.0)] {
            let err: f64 = (ln_gamma(n) - f64::ln(fact)).abs();
            assert!(err < 1e-10, "ln_gamma({n})");
        }
    }

    #[test]
    fn incomplete_beta_known_values() {
        // I_x(1, 1) = x (uniform CDF)
        for x in [0.1, 0.5, 0.9] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
        // I_x(2, 2) = x²(3 - 2x)
        let x: f64 = 0.3;
        let expect = x * x * (3.0 - 2.0 * x);
        assert!((incomplete_beta(2.0, 2.0, x) - expect).abs() < 1e-12);
    }

    #[test]
    fn t_distribution_reference_points() {
        // For df = 10, t = 2.228 gives two-sided p ≈ 0.05 (standard table).
        let p = student_t_two_sided_p(2.228, 10.0);
        assert!((p - 0.05).abs() < 0.001, "p = {p}");
        // df = 1 (Cauchy): t = 1 gives p = 0.5.
        let p = student_t_two_sided_p(1.0, 1.0);
        assert!((p - 0.5).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn identical_samples_have_p_near_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = welch_t_test(&a, &a);
        assert!(r.t.abs() < 1e-12);
        assert!(r.p_value > 0.999);
    }

    #[test]
    fn clearly_different_means_are_significant() {
        let a: Vec<f64> = (0..20).map(|i| 10.0 + (i % 3) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..20).map(|i| 12.0 + (i % 3) as f64 * 0.1).collect();
        let r = welch_t_test(&a, &b);
        assert!(r.p_value < 1e-6);
        assert!(r.t < 0.0); // a < b
    }

    #[test]
    fn overlapping_noisy_samples_are_not_significant() {
        let a = [10.0, 12.0, 9.0, 11.0, 10.5, 9.5];
        let b = [10.2, 11.8, 9.1, 11.2, 10.4, 9.6];
        let r = welch_t_test(&a, &b);
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn constant_identical_samples() {
        let r = welch_t_test(&[5.0, 5.0, 5.0], &[5.0, 5.0, 5.0]);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn constant_different_samples() {
        let r = welch_t_test(&[5.0, 5.0, 5.0], &[6.0, 6.0, 6.0]);
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn welch_df_between_min_and_sum() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 10.0, 3.0, 7.0, 5.0, 2.0, 8.0];
        let r = welch_t_test(&a, &b);
        assert!(r.df >= 4.0 && r.df <= 10.0, "df = {}", r.df);
    }
}
