//! Ordinary least squares on one predictor.

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Regression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Number of points.
    pub n: usize,
}

/// Fits `y ≈ slope·x + intercept` by ordinary least squares.
///
/// The paper uses this to quantify the faults↔runtime relationship: r² over
/// 0.98 on TPC-H, and essentially no correlation on PageRank (Fig. 2/5).
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than 2 points.
///
/// ```rust
/// use pagesim_stats::linear_regression;
/// let r = linear_regression(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
/// assert!((r.slope - 2.0).abs() < 1e-12);
/// assert!((r.r_squared - 1.0).abs() < 1e-12);
/// ```
pub fn linear_regression(x: &[f64], y: &[f64]) -> Regression {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    assert!(x.len() >= 2, "regression needs at least 2 points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    // Degenerate cases: a vertical or fully flat cloud has no meaningful fit.
    let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    let intercept = my - slope * mx;
    let r_squared = if sxx > 0.0 && syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else if syy == 0.0 {
        1.0 // all y identical: any horizontal line fits perfectly
    } else {
        0.0
    };
    Regression {
        slope,
        intercept,
        r_squared,
        n: x.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [5.0, 7.0, 9.0, 11.0];
        let r = linear_regression(&x, &y);
        assert!((r.slope - 2.0).abs() < 1e-12);
        assert!((r.intercept - 5.0).abs() < 1e-12);
        assert!((r.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(r.n, 4);
    }

    #[test]
    fn uncorrelated_cloud_has_low_r2() {
        // Symmetric pattern with zero covariance.
        let x = [1.0, 1.0, -1.0, -1.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        let r = linear_regression(&x, &y);
        assert!(r.r_squared.abs() < 1e-12);
        assert_eq!(r.slope, 0.0);
    }

    #[test]
    fn flat_y_is_perfect_horizontal_fit() {
        let r = linear_regression(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]);
        assert_eq!(r.slope, 0.0);
        assert_eq!(r.intercept, 4.0);
        assert_eq!(r.r_squared, 1.0);
    }

    #[test]
    fn constant_x_does_not_crash() {
        let r = linear_regression(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(r.slope, 0.0);
        assert_eq!(r.r_squared, 0.0);
    }

    #[test]
    fn noisy_line_recovers_slope() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut s = 1u64;
        for i in 0..200 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            x.push(i as f64);
            y.push(3.0 * i as f64 + 10.0 + noise);
        }
        let r = linear_regression(&x, &y);
        assert!((r.slope - 3.0).abs() < 0.01, "slope {}", r.slope);
        assert!(r.r_squared > 0.999);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        linear_regression(&[1.0], &[1.0, 2.0]);
    }
}
