//! Sample summaries and percentiles.

use std::fmt;

/// Five-number-plus summary of a sample.
///
/// Quartiles use linear interpolation between order statistics (the same
/// convention as numpy's default), which is what the paper's box-whisker
/// fault plots (Fig. 7) need.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains NaN.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "summary of empty sample");
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let std = if n >= 2 {
            let ss: f64 = sorted.iter().map(|x| (x - mean) * (x - mean)).sum();
            (ss / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            std,
            min: sorted[0],
            q1: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q3: percentile_sorted(&sorted, 75.0),
            max: sorted[n - 1],
        }
    }

    /// Coefficient of variation (std/mean); `NaN` when the mean is zero.
    pub fn cv(&self) -> f64 {
        self.std / self.mean
    }

    /// Max-to-min ratio — the paper quotes "nearly 3x between the fastest
    /// and slowest execution" style spreads.
    pub fn spread(&self) -> f64 {
        self.max / self.min
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} q1={:.4} med={:.4} q3={:.4} max={:.4}",
            self.n, self.mean, self.std, self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// The `p`-th percentile (0–100) of a sample, with linear interpolation.
///
/// # Panics
///
/// Panics if `xs` is empty, contains NaN, or `p` is outside `[0, 100]`.
///
/// ```rust
/// use pagesim_stats::percentile;
/// assert_eq!(percentile(&[4.0, 1.0, 3.0, 2.0], 50.0), 2.5);
/// assert_eq!(percentile(&[4.0, 1.0, 3.0, 2.0], 100.0), 4.0);
/// ```
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    percentile_sorted(&sorted, p)
}

pub(crate) fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.138089935299395).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn single_element_summary() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.q1, 3.0);
        assert_eq!(s.q3, 3.0);
        assert_eq!(s.spread(), 1.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
        assert!((percentile(&xs, 75.0) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let xs = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0];
        let mut last = f64::NEG_INFINITY;
        for p in 0..=100 {
            let v = percentile(&xs, p as f64);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn iqr_and_spread() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.iqr(), 2.0);
        assert_eq!(s.spread(), 5.0);
        assert!((s.cv() - s.std / 3.0).abs() < 1e-12);
    }
}
