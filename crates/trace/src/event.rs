//! Structured trace events and the bounded ring buffer that stores them.
//!
//! Every event is timestamped in simulated nanoseconds by the kernel at
//! the point it is recorded; the ring never consults any clock of its own
//! (pagesim-lint rule L2). When the ring is full the oldest event is
//! overwritten and a dropped-event counter advances, so a trace of a
//! pathological run stays bounded and the exporter can report the loss.

/// What kind of simulated thread occupied a core or ran a slice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadKind {
    /// An application thread.
    App,
    /// The background reclaim (kswapd-analog) kernel thread.
    Kswapd,
    /// The MG-LRU aging kernel thread.
    Aging,
}

impl ThreadKind {
    /// Stable machine-readable name ("app", "kswapd", "aging").
    pub fn name(self) -> &'static str {
        match self {
            ThreadKind::App => "app",
            ThreadKind::Kswapd => "kswapd",
            ThreadKind::Aging => "aging",
        }
    }
}

/// One structured kernel event. Timestamps live alongside the event in the
/// ring ([`EventRing::push`]), in simulated nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A major fault issued blocking device I/O. Inline completions (ZRAM
    /// decompression on the faulting thread) do not open a span; they are
    /// visible in the sampled fault counters instead.
    FaultBegin {
        /// Faulting thread.
        tid: u32,
        /// Page being faulted in.
        key: u64,
    },
    /// The blocking major fault's I/O completed and the page was mapped.
    FaultEnd {
        /// Faulting thread.
        tid: u32,
        /// Page that became resident.
        key: u64,
    },
    /// One reclaim batch was applied (victims unmapped, swap-out issued).
    ReclaimBatch {
        /// `true` for direct reclaim on a faulting thread, `false` for the
        /// background reclaim thread.
        direct: bool,
        /// Victims the policy selected for this batch.
        victims: u32,
        /// Pages the policy examined to select them.
        scanned: u64,
        /// CPU charged to the reclaiming thread for selection.
        cpu_ns: u64,
    },
    /// The aging thread completed one background-work slice.
    AgingPass {
        /// CPU consumed by the slice.
        cpu_ns: u64,
    },
    /// The OOM killer chose and killed a victim task.
    OomKill {
        /// Victim thread.
        victim: u32,
    },
    /// Fault injection rejected a device operation.
    FaultInjected {
        /// `true` for a rejected swap-out (eviction aborted), `false` for
        /// a rejected swap-in (retry/backoff or task kill).
        write: bool,
    },
    /// Background reclaim paused for write-back throttling.
    Throttle {
        /// Device write backlog that tripped the throttle, in ns.
        backlog_ns: u64,
    },
    /// A scheduler slice retired on a core. `t_ns` in the ring is the
    /// slice *start*; the slice ends at `t_ns + dur_ns`.
    Slice {
        /// Core the slice ran on.
        core: u32,
        /// Thread that ran.
        tid: u32,
        /// Thread kind (drives Chrome track naming).
        kind: ThreadKind,
        /// Slice length in ns.
        dur_ns: u64,
    },
}

impl TraceEvent {
    /// Stable machine-readable kind tag, used by both exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FaultBegin { .. } => "fault_begin",
            TraceEvent::FaultEnd { .. } => "fault_end",
            TraceEvent::ReclaimBatch { .. } => "reclaim_batch",
            TraceEvent::AgingPass { .. } => "aging_pass",
            TraceEvent::OomKill { .. } => "oom_kill",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::Throttle { .. } => "throttle",
            TraceEvent::Slice { .. } => "slice",
        }
    }
}

/// Fixed-capacity ring of timestamped events; overwrites the oldest entry
/// when full and counts what it dropped.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<(u64, TraceEvent)>,
    cap: usize,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> EventRing {
        EventRing {
            buf: Vec::new(),
            cap: cap.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event at simulated time `t_ns`, evicting the oldest
    /// entry if the ring is full.
    pub fn push(&mut self, t_ns: u64, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push((t_ns, ev));
        } else {
            self.buf[self.head] = (t_ns, ev);
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring and returns its events oldest-first.
    pub fn into_ordered(mut self) -> Vec<(u64, TraceEvent)> {
        self.buf.rotate_left(self.head);
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(core: u32) -> TraceEvent {
        TraceEvent::Slice {
            core,
            tid: 0,
            kind: ThreadKind::App,
            dur_ns: 1,
        }
    }

    #[test]
    fn ring_keeps_order_below_capacity() {
        let mut r = EventRing::new(4);
        for i in 0..3 {
            r.push(i, slice(i as u32));
        }
        assert_eq!(r.dropped(), 0);
        let out = r.into_ordered();
        assert_eq!(out.iter().map(|e| e.0).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = EventRing::new(3);
        for i in 0..5 {
            r.push(i, slice(i as u32));
        }
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.len(), 3);
        let out = r.into_ordered();
        assert_eq!(out.iter().map(|e| e.0).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        r.push(1, slice(0));
        r.push(2, slice(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.into_ordered()[0].0, 2);
    }
}
