//! Deterministic tracing and time-series telemetry for pagesim.
//!
//! This crate gives the simulator a temporal record to go with its
//! end-of-run scalars: the paper's headline results — aging-thread CPU
//! contention, refault bursts around working-set shifts, scheduling-phase
//! variance — are all stories about *when* things happen, and `RunMetrics`
//! alone cannot show them.
//!
//! Three pieces:
//!
//! - [`Tracer`] — an interval sampler plus bounded [`EventRing`], driven
//!   entirely by simulated time (never a wall clock; pagesim-lint rule L2
//!   is enforced on this crate). The kernel drains due sample boundaries
//!   before processing each event, so the trace is a pure function of the
//!   trial: byte-identical across hosts and `--jobs` settings.
//! - Exporters — [`TraceData::to_jsonl`] for line-oriented analysis and
//!   [`TraceData::to_chrome_trace`] for the Chrome `trace_event` format
//!   (loadable in Perfetto / `chrome://tracing`, with per-core scheduling
//!   tracks, VM counter tracks, and async major-fault spans).
//! - A validator — [`Schema`] / [`validate_jsonl`] and the
//!   `trace-validate` binary check exported JSONL against the checked-in
//!   schema (`schema/trace-jsonl.schema`) so CI can gate on it.
//!
//! The kernel embeds the tracer behind a `trace` cargo feature in
//! `pagesim` with a runtime on/off guard on top: release figure runs with
//! the feature compiled in but tracing disabled take one branch per hook
//! and stay byte-identical to untraced builds.

mod event;
mod export;
mod json;
mod schema;
mod tracer;

pub use event::{EventRing, ThreadKind, TraceEvent};
pub use export::json_escape;
pub use json::{parse_json, JsonValue};
pub use schema::{validate_jsonl, RecordSpec, Schema, BUILTIN_SCHEMA};
pub use tracer::{CoreOcc, Sample, TraceConfig, TraceData, TraceMeta, Tracer};
