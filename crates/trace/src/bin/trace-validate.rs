//! Validates a pagesim trace JSONL file against a schema.
//!
//! ```text
//! trace-validate <trace.jsonl> [schema]
//! ```
//!
//! With no schema argument the built-in `schema/trace-jsonl.schema` is
//! used. Exit status: 0 valid, 1 validation errors, 2 usage/IO errors.

use std::process::ExitCode;

use pagesim_trace::{validate_jsonl, Schema, BUILTIN_SCHEMA};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, schema_text) = match args.as_slice() {
        [trace] => (trace.clone(), BUILTIN_SCHEMA.to_owned()),
        [trace, schema_path] => match std::fs::read_to_string(schema_path) {
            Ok(text) => (trace.clone(), text),
            Err(e) => {
                eprintln!("trace-validate: cannot read schema {schema_path}: {e}");
                return ExitCode::from(2);
            }
        },
        _ => {
            eprintln!("usage: trace-validate <trace.jsonl> [schema]");
            return ExitCode::from(2);
        }
    };

    let schema = match Schema::parse(&schema_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace-validate: bad schema: {e}");
            return ExitCode::from(2);
        }
    };
    let jsonl = match std::fs::read_to_string(&trace_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace-validate: cannot read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let errors = validate_jsonl(&schema, &jsonl);
    if errors.is_empty() {
        let lines = jsonl.lines().filter(|l| !l.trim().is_empty()).count();
        println!("{trace_path}: valid ({lines} records)");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("{trace_path}: {e}");
        }
        eprintln!("{trace_path}: {} error(s)", errors.len());
        ExitCode::FAILURE
    }
}
