//! A small line-oriented schema language and validator for trace JSONL.
//!
//! The checked-in schema (`schema/trace-jsonl.schema`) is intentionally
//! simple — CI needs "did the exporter emit what it promised", not a full
//! JSON-Schema engine. Format:
//!
//! ```text
//! # comment
//! version 2           — the meta line's schema_version must equal this
//! first meta          — the first line must be a record of this name
//! last end            — the last line must be a record of this name
//! record meta         — begin a record block, matched on the "type" field
//! require ident str   — required field and its type (num/str/bool/arr/obj)
//! ```
//!
//! Records may carry extra fields beyond the required ones (events add
//! kind-specific payloads), but a line whose `type` names no record, a
//! missing required field, or a type mismatch all fail validation.

use crate::json::{parse_json, JsonValue};

/// One record block: a name and its required `(field, type)` pairs.
#[derive(Clone, Debug)]
pub struct RecordSpec {
    /// Record name, matched against each line's `type` field.
    pub name: String,
    /// Required fields and their expected type tags.
    pub required: Vec<(String, String)>,
}

/// A parsed schema.
#[derive(Clone, Debug)]
pub struct Schema {
    /// Expected `schema_version` on the first record, if constrained.
    /// Makes a record-vocabulary change a loud failure instead of lines
    /// silently skipping validation as "unknown extra fields".
    pub version: Option<u64>,
    /// Record the first line must be, if constrained.
    pub first: Option<String>,
    /// Record the last line must be, if constrained.
    pub last: Option<String>,
    /// All record blocks, in declaration order.
    pub records: Vec<RecordSpec>,
}

const TYPE_TAGS: [&str; 5] = ["num", "str", "bool", "arr", "obj"];

impl Schema {
    /// Parses the schema text. Errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Schema, String> {
        let mut schema = Schema {
            version: None,
            first: None,
            last: None,
            records: Vec::new(),
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            let (Some(directive), Some(arg)) = (words.next(), words.next()) else {
                return Err(format!("schema line {lineno}: expected directive and argument"));
            };
            match directive {
                "version" => match arg.parse::<u64>() {
                    Ok(v) => schema.version = Some(v),
                    Err(_) => {
                        return Err(format!(
                            "schema line {lineno}: version needs an integer, got '{arg}'"
                        ));
                    }
                },
                "first" => schema.first = Some(arg.to_owned()),
                "last" => schema.last = Some(arg.to_owned()),
                "record" => schema.records.push(RecordSpec {
                    name: arg.to_owned(),
                    required: Vec::new(),
                }),
                "require" => {
                    let Some(ty) = words.next() else {
                        return Err(format!("schema line {lineno}: require needs field and type"));
                    };
                    if !TYPE_TAGS.contains(&ty) {
                        return Err(format!("schema line {lineno}: unknown type '{ty}'"));
                    }
                    let Some(rec) = schema.records.last_mut() else {
                        return Err(format!("schema line {lineno}: require outside a record"));
                    };
                    rec.required.push((arg.to_owned(), ty.to_owned()));
                }
                other => {
                    return Err(format!("schema line {lineno}: unknown directive '{other}'"));
                }
            }
            if words.next().is_some() {
                return Err(format!("schema line {lineno}: trailing tokens"));
            }
        }
        Ok(schema)
    }

    fn record(&self, name: &str) -> Option<&RecordSpec> {
        self.records.iter().find(|r| r.name == name)
    }
}

/// Validates JSONL text against a schema. Returns every problem found,
/// each prefixed with the 1-based line number; an empty list means valid.
pub fn validate_jsonl(schema: &Schema, jsonl: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let lines: Vec<&str> = jsonl.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        errors.push("line 0: trace is empty".to_owned());
        return errors;
    }
    let mut types = Vec::with_capacity(lines.len());
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let value = match parse_json(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("line {lineno}: invalid json: {e}"));
                types.push(String::new());
                continue;
            }
        };
        let Some(ty) = value.get("type").and_then(JsonValue::as_str) else {
            errors.push(format!("line {lineno}: missing string field 'type'"));
            types.push(String::new());
            continue;
        };
        types.push(ty.to_owned());
        if idx == 0 {
            if let Some(expect) = schema.version {
                let found = value.get("schema_version").and_then(|v| match v {
                    JsonValue::Num(n) => n.parse::<u64>().ok(),
                    _ => None,
                });
                if found != Some(expect) {
                    errors.push(format!(
                        "line 1: schema_version must be {expect} (found {})",
                        found.map_or("none".to_owned(), |v| v.to_string())
                    ));
                }
            }
        }
        let Some(rec) = schema.record(ty) else {
            errors.push(format!("line {lineno}: unknown record type '{ty}'"));
            continue;
        };
        for (field, expect) in &rec.required {
            match value.get(field) {
                None => errors.push(format!(
                    "line {lineno}: record '{ty}' missing required field '{field}'"
                )),
                Some(v) if v.type_name() != expect => errors.push(format!(
                    "line {lineno}: field '{field}' is {}, expected {expect}",
                    v.type_name()
                )),
                Some(_) => {}
            }
        }
    }
    if let Some(first) = &schema.first {
        if types.first().map(String::as_str) != Some(first.as_str()) {
            errors.push(format!("line 1: first record must be '{first}'"));
        }
    }
    if let Some(last) = &schema.last {
        if types.last().map(String::as_str) != Some(last.as_str()) {
            errors.push(format!(
                "line {}: last record must be '{last}'",
                lines.len()
            ));
        }
    }
    errors
}

/// The schema shipped with the repo, used by the `trace-validate` binary
/// and the determinism test.
pub const BUILTIN_SCHEMA: &str = include_str!("../schema/trace-jsonl.schema");

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "\
# demo
first meta
last end
record meta
require ident str
require seed num
record sample
require t_ns num
record end
require samples num
";

    #[test]
    fn parses_and_accepts_valid_lines() {
        let schema = Schema::parse(DEMO).expect("schema parses");
        let good = concat!(
            "{\"type\":\"meta\",\"ident\":\"x\",\"seed\":3}\n",
            "{\"type\":\"sample\",\"t_ns\":10,\"extra\":true}\n",
            "{\"type\":\"end\",\"samples\":1}\n",
        );
        assert_eq!(validate_jsonl(&schema, good), Vec::<String>::new());
    }

    #[test]
    fn reports_structure_violations() {
        let schema = Schema::parse(DEMO).expect("schema parses");
        let bad = concat!(
            "{\"type\":\"sample\",\"t_ns\":\"ten\"}\n",
            "{\"type\":\"mystery\"}\n",
            "{\"type\":\"meta\",\"seed\":1}\n",
        );
        let errors = validate_jsonl(&schema, bad);
        assert!(errors.iter().any(|e| e.contains("expected num")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("unknown record type")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("missing required field 'ident'")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("first record must be")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("last record must be")), "{errors:?}");
    }

    #[test]
    fn rejects_malformed_schema() {
        assert!(Schema::parse("require x num\n").is_err());
        assert!(Schema::parse("record a\nrequire x maybe\n").is_err());
        assert!(Schema::parse("frobnicate y\n").is_err());
        assert!(Schema::parse("version two\n").is_err());
    }

    #[test]
    fn version_mismatch_is_detected() {
        let versioned = format!("version 2\n{DEMO}");
        let schema = Schema::parse(&versioned).expect("schema parses");
        let right = concat!(
            "{\"type\":\"meta\",\"ident\":\"x\",\"seed\":3,\"schema_version\":2}\n",
            "{\"type\":\"end\",\"samples\":0}\n",
        );
        assert_eq!(validate_jsonl(&schema, right), Vec::<String>::new());
        let stale = concat!(
            "{\"type\":\"meta\",\"ident\":\"x\",\"seed\":3,\"schema_version\":1}\n",
            "{\"type\":\"end\",\"samples\":0}\n",
        );
        let errors = validate_jsonl(&schema, stale);
        assert!(
            errors.iter().any(|e| e.contains("schema_version must be 2 (found 1)")),
            "{errors:?}"
        );
        let missing = concat!(
            "{\"type\":\"meta\",\"ident\":\"x\",\"seed\":3}\n",
            "{\"type\":\"end\",\"samples\":0}\n",
        );
        let errors = validate_jsonl(&schema, missing);
        assert!(
            errors.iter().any(|e| e.contains("schema_version must be 2 (found none)")),
            "{errors:?}"
        );
    }

    #[test]
    fn builtin_schema_parses() {
        let schema = Schema::parse(BUILTIN_SCHEMA).expect("builtin schema parses");
        assert_eq!(schema.version, Some(2));
        assert_eq!(schema.first.as_deref(), Some("meta"));
        assert_eq!(schema.last.as_deref(), Some("end"));
        assert!(schema.record("sample").is_some());
        assert!(schema.record("event").is_some());
        assert!(schema.record("workingset").is_some());
        assert!(schema.record("lru_gen").is_some());
    }
}
