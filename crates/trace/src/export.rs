//! Deterministic exporters: JSONL and Chrome `trace_event` JSON.
//!
//! Both formats are emitted by hand (the workspace vendors no
//! serialization crates) with fully deterministic field order and number
//! formatting, so a trace of the same trial is byte-identical across
//! hosts and `--jobs` settings. Timestamps are simulated nanoseconds; the
//! Chrome exporter renders them as microseconds with a fixed three-digit
//! fraction (`ts` is conventionally µs) to stay loadable in Perfetto and
//! `chrome://tracing` without losing ns precision.

use std::fmt::Write as _;

use crate::event::{ThreadKind, TraceEvent};
use crate::tracer::TraceData;

/// Escapes a string for embedding in a JSON document, quotes included.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Simulated ns rendered as Chrome `ts` microseconds with a fixed
/// `.%03u` ns fraction — deterministic, no float formatting involved.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

impl TraceData {
    /// Serializes to JSON Lines: one meta record, then per sample boundary
    /// a `sample` record plus its `workingset` and `lru_gen` companions,
    /// every retained event in time order, and a trailing end record with
    /// totals. This is the format the checked-in schema
    /// (`schema/trace-jsonl.schema`) validates. `schema_version` names the
    /// record vocabulary (bumped to 2 with the workingset/lru_gen records)
    /// so consumers detect the format change instead of silently skipping
    /// unknown lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let m = &self.meta;
        let _ = writeln!(
            out,
            concat!(
                "{{\"type\":\"meta\",\"format_version\":2,\"schema_version\":2,\"ident\":{},",
                "\"content_hash\":\"{:016x}\",\"trial\":{},\"seed\":{},\"cores\":{},",
                "\"sample_interval_ns\":{},\"policy\":{},\"workload\":{}}}"
            ),
            json_escape(&m.ident),
            m.content_hash,
            m.trial,
            m.seed,
            m.cores,
            m.sample_interval_ns,
            json_escape(&m.policy),
            json_escape(&m.workload),
        );
        for s in &self.samples {
            let gens = s
                .gens
                .iter()
                .map(|(seq, pages)| format!("[{seq},{pages}]"))
                .collect::<Vec<_>>()
                .join(",");
            let cores = s
                .cores
                .iter()
                .map(|c| json_escape(&c.label()))
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(
                out,
                concat!(
                    "{{\"type\":\"sample\",\"t_ns\":{},\"major_faults\":{},",
                    "\"refaults\":{},\"evictions\":{},\"direct_reclaims\":{},",
                    "\"kswapd_batches\":{},\"free_frames\":{},\"writeback_frames\":{},",
                    "\"gens\":[{}],\"cores\":[{}]}}"
                ),
                s.t_ns,
                s.major_faults,
                s.refaults,
                s.evictions,
                s.direct_reclaims,
                s.kswapd_batches,
                s.free_frames,
                s.writeback_frames,
                gens,
                cores,
            );
            let _ = writeln!(
                out,
                concat!(
                    "{{\"type\":\"workingset\",\"t_ns\":{},\"refault\":{},",
                    "\"activate\":{},\"restore\":{}}}"
                ),
                s.t_ns,
                s.ws_refault,
                s.ws_activate,
                s.ws_restore,
            );
            let _ = writeln!(
                out,
                "{{\"type\":\"lru_gen\",\"t_ns\":{},\"dump\":{}}}",
                s.t_ns,
                json_escape(&s.lru_gen),
            );
        }
        for (t_ns, ev) in &self.events {
            let _ = writeln!(
                out,
                "{{\"type\":\"event\",\"t_ns\":{},\"kind\":\"{}\"{}}}",
                t_ns,
                ev.kind(),
                event_fields(ev),
            );
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"end\",\"samples\":{},\"events\":{},\"events_dropped\":{}}}",
            self.samples.len(),
            self.events.len(),
            self.dropped_events,
        );
        out
    }

    /// Serializes to Chrome `trace_event` JSON (object format with a
    /// `traceEvents` array), loadable in Perfetto / `chrome://tracing`.
    ///
    /// Track layout:
    /// - pid 0 "cores": one tid per simulated core; complete (`X`) slices
    ///   named after the occupying thread (`app3`, `kswapd`, `aging`).
    /// - pid 1 "vm": counter (`C`) tracks for faults, reclaim, frames and
    ///   MG-LRU generation occupancy, plus instant (`i`) markers for
    ///   reclaim batches, aging passes, OOM kills, injected faults and
    ///   throttles.
    /// - pid 2 "faults": async (`b`/`e`) spans per blocking major fault,
    ///   keyed by page, so overlapping in-flight faults stay distinct.
    pub fn to_chrome_trace(&self) -> String {
        let m = &self.meta;
        let mut ev = Vec::<String>::new();

        // Process and thread naming metadata first, in fixed order.
        ev.push(meta_name("process_name", 0, 0, "cores"));
        for core in 0..m.cores {
            ev.push(meta_name(
                "thread_name",
                0,
                core as u64,
                &format!("core{core}"),
            ));
        }
        ev.push(meta_name("process_name", 1, 0, "vm"));
        ev.push(meta_name("thread_name", 1, 0, "counters"));
        ev.push(meta_name("process_name", 2, 0, "faults"));
        ev.push(meta_name("thread_name", 2, 0, "major faults"));

        for s in &self.samples {
            let ts = micros(s.t_ns);
            ev.push(format!(
                concat!(
                    "{{\"name\":\"faults\",\"ph\":\"C\",\"pid\":1,\"tid\":0,",
                    "\"ts\":{ts},\"args\":{{\"major\":{major},\"refaults\":{refaults}}}}}"
                ),
                ts = ts,
                major = s.major_faults,
                refaults = s.refaults,
            ));
            ev.push(format!(
                concat!(
                    "{{\"name\":\"reclaim\",\"ph\":\"C\",\"pid\":1,\"tid\":0,",
                    "\"ts\":{ts},\"args\":{{\"evictions\":{ev},\"direct\":{direct},",
                    "\"kswapd_batches\":{kb}}}}}"
                ),
                ts = ts,
                ev = s.evictions,
                direct = s.direct_reclaims,
                kb = s.kswapd_batches,
            ));
            ev.push(format!(
                concat!(
                    "{{\"name\":\"frames\",\"ph\":\"C\",\"pid\":1,\"tid\":0,",
                    "\"ts\":{ts},\"args\":{{\"free\":{free},\"writeback\":{wb}}}}}"
                ),
                ts = ts,
                free = s.free_frames,
                wb = s.writeback_frames,
            ));
            if !s.gens.is_empty() {
                let args = s
                    .gens
                    .iter()
                    .map(|(seq, pages)| format!("\"g{seq}\":{pages}"))
                    .collect::<Vec<_>>()
                    .join(",");
                ev.push(format!(
                    concat!(
                        "{{\"name\":\"policy_lists\",\"ph\":\"C\",\"pid\":1,\"tid\":0,",
                        "\"ts\":{ts},\"args\":{{{args}}}}}"
                    ),
                    ts = ts,
                    args = args,
                ));
            }
        }

        for (t_ns, e) in &self.events {
            let ts = micros(*t_ns);
            match e {
                TraceEvent::Slice {
                    core,
                    tid,
                    kind,
                    dur_ns,
                } => {
                    let name = match kind {
                        ThreadKind::App => format!("app{tid}"),
                        ThreadKind::Kswapd => "kswapd".to_owned(),
                        ThreadKind::Aging => "aging".to_owned(),
                    };
                    ev.push(format!(
                        concat!(
                            "{{\"name\":\"{name}\",\"cat\":\"sched\",\"ph\":\"X\",",
                            "\"pid\":0,\"tid\":{core},\"ts\":{ts},\"dur\":{dur},",
                            "\"args\":{{\"tid\":{tid},\"class\":\"{class}\"}}}}"
                        ),
                        name = name,
                        core = core,
                        ts = ts,
                        dur = micros(*dur_ns),
                        tid = tid,
                        class = kind.name(),
                    ));
                }
                TraceEvent::FaultBegin { tid, key } => {
                    ev.push(format!(
                        concat!(
                            "{{\"name\":\"major-fault\",\"cat\":\"vm\",\"ph\":\"b\",",
                            "\"id\":{key},\"pid\":2,\"tid\":{tid},\"ts\":{ts},",
                            "\"args\":{{\"key\":{key}}}}}"
                        ),
                        key = key,
                        tid = tid,
                        ts = ts,
                    ));
                }
                TraceEvent::FaultEnd { tid, key } => {
                    ev.push(format!(
                        concat!(
                            "{{\"name\":\"major-fault\",\"cat\":\"vm\",\"ph\":\"e\",",
                            "\"id\":{key},\"pid\":2,\"tid\":{tid},\"ts\":{ts}}}"
                        ),
                        key = key,
                        tid = tid,
                        ts = ts,
                    ));
                }
                TraceEvent::ReclaimBatch {
                    direct,
                    victims,
                    scanned,
                    cpu_ns,
                } => {
                    let name = if *direct { "direct-reclaim" } else { "kswapd-batch" };
                    ev.push(instant(
                        name,
                        "vm",
                        &ts,
                        &format!(
                            "\"victims\":{victims},\"scanned\":{scanned},\"cpu_ns\":{cpu_ns}"
                        ),
                    ));
                }
                TraceEvent::AgingPass { cpu_ns } => {
                    ev.push(instant("aging-pass", "vm", &ts, &format!("\"cpu_ns\":{cpu_ns}")));
                }
                TraceEvent::OomKill { victim } => {
                    ev.push(instant("oom-kill", "vm", &ts, &format!("\"victim\":{victim}")));
                }
                TraceEvent::FaultInjected { write } => {
                    ev.push(instant(
                        "fault-injected",
                        "faultinj",
                        &ts,
                        &format!("\"write\":{write}"),
                    ));
                }
                TraceEvent::Throttle { backlog_ns } => {
                    ev.push(instant(
                        "throttle",
                        "vm",
                        &ts,
                        &format!("\"backlog_ns\":{backlog_ns}"),
                    ));
                }
            }
        }

        format!(
            concat!(
                "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"ident\":{},",
                "\"content_hash\":\"{:016x}\",\"trial\":{},\"seed\":{},",
                "\"policy\":{},\"workload\":{},\"events_dropped\":{}}},",
                "\"traceEvents\":[\n{}\n]}}\n"
            ),
            json_escape(&m.ident),
            m.content_hash,
            m.trial,
            m.seed,
            json_escape(&m.policy),
            json_escape(&m.workload),
            self.dropped_events,
            ev.join(",\n"),
        )
    }
}

fn meta_name(kind: &str, pid: u32, tid: u64, name: &str) -> String {
    format!(
        concat!(
            "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},",
            "\"args\":{{\"name\":{name}}}}}"
        ),
        kind = kind,
        pid = pid,
        tid = tid,
        name = json_escape(name),
    )
}

fn instant(name: &str, cat: &str, ts: &str, args: &str) -> String {
    format!(
        concat!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"g\",",
            "\"pid\":1,\"tid\":0,\"ts\":{ts},\"args\":{{{args}}}}}"
        ),
        name = name,
        cat = cat,
        ts = ts,
        args = args,
    )
}

/// Kind-specific JSONL fields for one event, with a leading comma.
fn event_fields(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::FaultBegin { tid, key } | TraceEvent::FaultEnd { tid, key } => {
            format!(",\"tid\":{tid},\"key\":{key}")
        }
        TraceEvent::ReclaimBatch {
            direct,
            victims,
            scanned,
            cpu_ns,
        } => format!(
            ",\"direct\":{direct},\"victims\":{victims},\"scanned\":{scanned},\"cpu_ns\":{cpu_ns}"
        ),
        TraceEvent::AgingPass { cpu_ns } => format!(",\"cpu_ns\":{cpu_ns}"),
        TraceEvent::OomKill { victim } => format!(",\"victim\":{victim}"),
        TraceEvent::FaultInjected { write } => format!(",\"write\":{write}"),
        TraceEvent::Throttle { backlog_ns } => format!(",\"backlog_ns\":{backlog_ns}"),
        TraceEvent::Slice {
            core,
            tid,
            kind,
            dur_ns,
        } => format!(
            ",\"core\":{core},\"tid\":{tid},\"class\":\"{}\",\"dur_ns\":{dur_ns}",
            kind.name()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;
    use crate::tracer::{CoreOcc, Sample, TraceMeta, Tracer, TraceConfig};

    fn demo_data() -> TraceData {
        let mut t = Tracer::new(TraceConfig {
            sample_interval: 1000,
            event_capacity: 16,
        });
        t.event(10, TraceEvent::FaultBegin { tid: 0, key: 42 });
        t.event(
            500,
            TraceEvent::Slice {
                core: 1,
                tid: 3,
                kind: ThreadKind::Aging,
                dur_ns: 250,
            },
        );
        t.event(700, TraceEvent::FaultEnd { tid: 0, key: 42 });
        t.event(
            800,
            TraceEvent::ReclaimBatch {
                direct: false,
                victims: 32,
                scanned: 64,
                cpu_ns: 4000,
            },
        );
        t.event(900, TraceEvent::Throttle { backlog_ns: 123 });
        t.note_refault();
        t.push_sample(Sample {
            t_ns: 1000,
            major_faults: 5,
            refaults: 1,
            evictions: 32,
            direct_reclaims: 0,
            kswapd_batches: 1,
            free_frames: 100,
            writeback_frames: 4,
            gens: vec![(2, 50), (3, 70)],
            cores: vec![CoreOcc::App(0), CoreOcc::Aging],
            ws_refault: 1,
            ws_activate: 1,
            ws_restore: 0,
            lru_gen: "policy mglru min_seq 2 max_seq 3 nr_gens 2\n gen 2 age 1\n".to_owned(),
        });
        t.into_data(TraceMeta {
            ident: "tpch/mglru trial \"0\"".to_owned(),
            content_hash: 0x00AB_CDEF_0123_4567,
            trial: 0,
            seed: u64::MAX,
            cores: 2,
            sample_interval_ns: 1000,
            policy: "mglru-gen14".to_owned(),
            workload: "tpch".to_owned(),
        })
    }

    #[test]
    fn jsonl_lines_parse_and_carry_identity() {
        let jsonl = demo_data().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // meta + (sample, workingset, lru_gen) per boundary + events + end.
        assert_eq!(lines.len(), 1 + 3 + 5 + 1);
        let meta = parse_json(lines[0]).expect("meta parses");
        assert_eq!(meta.get("type").and_then(|v| v.as_str()), Some("meta"));
        assert_eq!(
            meta.get("schema_version"),
            Some(&crate::json::JsonValue::Num("2".to_owned()))
        );
        assert_eq!(
            meta.get("content_hash").and_then(|v| v.as_str()),
            Some("00abcdef01234567")
        );
        assert_eq!(
            meta.get("ident").and_then(|v| v.as_str()),
            Some("tpch/mglru trial \"0\"")
        );
        for line in &lines {
            parse_json(line).expect("every line is valid json");
        }
        // Each sample boundary carries its workingset and lru_gen records.
        let ws = parse_json(lines[2]).expect("workingset parses");
        assert_eq!(ws.get("type").and_then(|v| v.as_str()), Some("workingset"));
        let lg = parse_json(lines[3]).expect("lru_gen parses");
        assert_eq!(lg.get("type").and_then(|v| v.as_str()), Some("lru_gen"));
        let dump = lg.get("dump").and_then(|v| v.as_str()).expect("dump str");
        assert!(dump.contains("min_seq 2"), "escaped dump survives: {dump}");
        let end = parse_json(lines[lines.len() - 1]).expect("end parses");
        assert_eq!(end.get("type").and_then(|v| v.as_str()), Some("end"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_tracks() {
        let chrome = demo_data().to_chrome_trace();
        let doc = parse_json(&chrome).expect("chrome trace parses");
        let events = match doc.get("traceEvents") {
            Some(crate::json::JsonValue::Arr(items)) => items.clone(),
            other => panic!("traceEvents missing: {other:?}"),
        };
        // Metadata (3 process + 4 thread names) + 4 counters + 5 events.
        assert_eq!(events.len(), 7 + 4 + 5);
        let slice = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("aging"))
            .expect("aging slice present");
        assert_eq!(slice.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(
            slice.get("ts"),
            Some(&crate::json::JsonValue::Num("0.500".to_owned()))
        );
        assert_eq!(
            slice.get("dur"),
            Some(&crate::json::JsonValue::Num("0.250".to_owned()))
        );
    }

    #[test]
    fn exports_are_deterministic() {
        assert_eq!(demo_data().to_jsonl(), demo_data().to_jsonl());
        assert_eq!(demo_data().to_chrome_trace(), demo_data().to_chrome_trace());
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }
}
