//! The tracer: interval sampler state plus the event ring.
//!
//! Sampling is driven entirely by simulated time. The kernel calls
//! [`Tracer::next_boundary`] before it processes each event: any sample
//! boundaries at or before the event's timestamp are emitted first, with
//! gauges snapshotted from the pre-event simulation state. Because state
//! only changes at events, a lazily-emitted sample carries exactly the
//! state that held at its boundary (to within one scheduling quantum of
//! slice-effect skew), and the trace is a pure function of the trial —
//! independent of host, worker count, and wall-clock time.

use pagesim_engine::{Nanos, MILLISECOND};

use crate::event::{EventRing, TraceEvent};

/// Tracing knobs.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Interval between time-series samples, in simulated ns.
    pub sample_interval: Nanos,
    /// Event ring capacity; the oldest events are dropped beyond this.
    pub event_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            sample_interval: 10 * MILLISECOND,
            event_capacity: 64 * 1024,
        }
    }
}

/// What occupied one core at a sample boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoreOcc {
    /// No thread running.
    Idle,
    /// An application thread (by thread id).
    App(u32),
    /// The background reclaim kernel thread.
    Kswapd,
    /// The MG-LRU aging kernel thread.
    Aging,
}

impl CoreOcc {
    /// Stable label ("idle", "app3", "kswapd", "aging").
    pub fn label(&self) -> String {
        match self {
            CoreOcc::Idle => "idle".to_owned(),
            CoreOcc::App(tid) => format!("app{tid}"),
            CoreOcc::Kswapd => "kswapd".to_owned(),
            CoreOcc::Aging => "aging".to_owned(),
        }
    }
}

/// One interval sample: cumulative counters plus instantaneous gauges at a
/// simulated-time boundary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sample {
    /// Boundary time in simulated ns (`k * sample_interval`).
    pub t_ns: u64,
    /// Cumulative major faults.
    pub major_faults: u64,
    /// Cumulative refaults (major faults on previously-evicted pages).
    pub refaults: u64,
    /// Cumulative evictions.
    pub evictions: u64,
    /// Cumulative direct-reclaim invocations.
    pub direct_reclaims: u64,
    /// Cumulative background reclaim batches.
    pub kswapd_batches: u64,
    /// Free frames right now.
    pub free_frames: u64,
    /// Frames pinned by in-flight write-back right now.
    pub writeback_frames: u64,
    /// Policy list occupancy, oldest first: `(label, pages)`. MG-LRU
    /// reports one entry per live generation labeled by its sequence
    /// number; Clock reports `(0, inactive)` and `(1, active)`.
    pub gens: Vec<(u64, u64)>,
    /// Per-core occupancy, indexed by core id.
    pub cores: Vec<CoreOcc>,
    /// Cumulative working-set refaults (shadow-entry hits).
    pub ws_refault: u64,
    /// Cumulative refaults within one memory-capacity of evictions.
    pub ws_activate: u64,
    /// Cumulative refaults that restored a kept clean swap-cache copy.
    pub ws_restore: u64,
    /// `Policy::introspect` dump at this boundary (`lru_gen` debugfs
    /// analog); multi-line, integers only.
    pub lru_gen: String,
}

/// Identity of the traced trial. Mirrors the sweep executor's cell cache:
/// `content_hash` is the same content-addressed key that names the trial's
/// cache file, so a trace can always be matched to the cached metrics it
/// was captured alongside.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceMeta {
    /// Human-readable cell identity plus trial (e.g. `tpch/mglru/Ssd/r0.50 trial 0`).
    pub ident: String,
    /// Content-addressed trial key (`Bench::trial_content_hash`).
    pub content_hash: u64,
    /// Trial index within the cell.
    pub trial: u32,
    /// Derived trial seed.
    pub seed: u64,
    /// Simulated cores.
    pub cores: u32,
    /// Sample interval used, in simulated ns.
    pub sample_interval_ns: u64,
    /// Policy label (e.g. "mglru-gen14").
    pub policy: String,
    /// Workload label (e.g. "tpch").
    pub workload: String,
}

/// A completed trace: metadata, the time series, and the event log.
#[derive(Clone, Debug)]
pub struct TraceData {
    /// Trial identity.
    pub meta: TraceMeta,
    /// Interval samples in time order.
    pub samples: Vec<Sample>,
    /// Ring contents oldest-first: `(t_ns, event)`.
    pub events: Vec<(u64, TraceEvent)>,
    /// Events the bounded ring overwrote.
    pub dropped_events: u64,
}

/// Collects samples and events during one kernel run.
///
/// The kernel owns a `Tracer` only when tracing was requested; every hook
/// additionally consults [`Tracer::is_enabled`] so a disabled tracer (the
/// release figure path) costs one branch and allocates nothing.
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    enabled: bool,
    refaults: u64,
    next_sample_ns: u64,
    samples: Vec<Sample>,
    ring: EventRing,
}

impl Tracer {
    /// An active tracer. The first sample boundary sits one interval in
    /// (state at t=0 is all zeros by construction).
    pub fn new(cfg: TraceConfig) -> Tracer {
        let interval = cfg.sample_interval.max(1);
        Tracer {
            cfg: TraceConfig {
                sample_interval: interval,
                ..cfg
            },
            enabled: true,
            refaults: 0,
            next_sample_ns: interval,
            samples: Vec::new(),
            ring: EventRing::new(cfg.event_capacity),
        }
    }

    /// An attached-but-disabled tracer: every hook is a no-op. Exists so
    /// the runtime on/off guard can be exercised without rebuilding.
    pub fn off() -> Tracer {
        let mut t = Tracer::new(TraceConfig::default());
        t.enabled = false;
        t
    }

    /// The runtime on/off guard hooks consult before doing any work.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configuration in effect.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Counts a refault (a major fault on a page evicted earlier in this
    /// run). Kept here rather than in `RunMetrics` so tracing cannot
    /// perturb the cached-metrics codec.
    #[inline]
    pub fn note_refault(&mut self) {
        if self.enabled {
            self.refaults += 1;
        }
    }

    /// Cumulative refaults so far.
    pub fn refaults(&self) -> u64 {
        self.refaults
    }

    /// Records an event at simulated time `t_ns`.
    #[inline]
    pub fn event(&mut self, t_ns: u64, ev: TraceEvent) {
        if self.enabled {
            self.ring.push(t_ns, ev);
        }
    }

    /// The next sample boundary at or before `upto_ns`, if one is due.
    /// The kernel answers by snapshotting gauges and calling
    /// [`Tracer::push_sample`], which advances the boundary.
    pub fn next_boundary(&self, upto_ns: u64) -> Option<u64> {
        (self.enabled && self.next_sample_ns <= upto_ns).then_some(self.next_sample_ns)
    }

    /// Appends a sample and advances to the next boundary.
    pub fn push_sample(&mut self, sample: Sample) {
        debug_assert_eq!(sample.t_ns, self.next_sample_ns);
        self.samples.push(sample);
        self.next_sample_ns += self.cfg.sample_interval;
    }

    /// Samples collected so far.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Finishes the trace, attaching the trial identity.
    pub fn into_data(self, meta: TraceMeta) -> TraceData {
        TraceData {
            meta,
            samples: self.samples,
            dropped_events: self.ring.dropped(),
            events: self.ring.into_ordered(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_at(t_ns: u64) -> Sample {
        Sample {
            t_ns,
            major_faults: 0,
            refaults: 0,
            evictions: 0,
            direct_reclaims: 0,
            kswapd_batches: 0,
            free_frames: 0,
            writeback_frames: 0,
            gens: Vec::new(),
            cores: Vec::new(),
            ws_refault: 0,
            ws_activate: 0,
            ws_restore: 0,
            lru_gen: String::new(),
        }
    }

    #[test]
    fn boundaries_advance_by_interval() {
        let mut t = Tracer::new(TraceConfig {
            sample_interval: 100,
            event_capacity: 8,
        });
        assert_eq!(t.next_boundary(99), None);
        assert_eq!(t.next_boundary(100), Some(100));
        t.push_sample(sample_at(100));
        assert_eq!(t.next_boundary(350), Some(200));
        t.push_sample(sample_at(200));
        t.push_sample(sample_at(300));
        assert_eq!(t.next_boundary(350), None);
        assert_eq!(t.sample_count(), 3);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = Tracer::off();
        assert!(!t.is_enabled());
        t.note_refault();
        t.event(5, TraceEvent::AgingPass { cpu_ns: 1 });
        assert_eq!(t.next_boundary(u64::MAX), None);
        let data = t.into_data(test_meta());
        assert!(data.samples.is_empty());
        assert!(data.events.is_empty());
    }

    #[test]
    fn zero_interval_clamps() {
        let t = Tracer::new(TraceConfig {
            sample_interval: 0,
            event_capacity: 1,
        });
        assert_eq!(t.next_boundary(10), Some(1));
    }

    fn test_meta() -> TraceMeta {
        TraceMeta {
            ident: "test trial 0".to_owned(),
            content_hash: 0xABCD,
            trial: 0,
            seed: 7,
            cores: 2,
            sample_interval_ns: 100,
            policy: "clock".to_owned(),
            workload: "tpch".to_owned(),
        }
    }
}
