//! A minimal JSON reader used to validate exported traces.
//!
//! The workspace vendors no serialization crates, so the exporters write
//! JSON by hand and this module checks their output: full syntax
//! validation plus enough structure (objects as ordered key/value lists,
//! numbers kept as source text) for the schema validator to type-check
//! required fields. Numbers stay as strings deliberately — u64 seeds and
//! hashes must not round-trip through `f64`.

/// A parsed JSON value. Object keys keep document order (no hash
/// containers: pagesim-lint rule L1 applies to this crate).
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its source text.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, keys in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object; `None` for other value kinds.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short tag for error messages and schema matching.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "num",
            JsonValue::Str(_) => "str",
            JsonValue::Arr(_) => "arr",
            JsonValue::Obj(_) => "obj",
        }
    }
}

/// Parses one complete JSON document. Trailing content is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

/// Nesting depth guard: exported traces nest three levels at most; a
/// generous cap keeps the recursive parser safe on hostile input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_owned());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_owned());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates never appear in our own exports;
                            // map them to the replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                0x00..=0x1F => return Err(format!("raw control byte at {}", self.pos - 1)),
                _ => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let start = self.pos - 1;
                    let width = utf8_width(b).ok_or("invalid utf-8")?;
                    self.pos = start + width;
                    let chunk = self.bytes.get(start..self.pos).ok_or("truncated utf-8")?;
                    let s = std::str::from_utf8(chunk).map_err(|_| "invalid utf-8")?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        Ok(JsonValue::Num(text.to_owned()))
    }
}

fn utf8_width(first: u8) -> Option<usize> {
    match first {
        0x20..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny"},"d":null,"e":true}"#)
            .expect("valid json");
        assert_eq!(v.get("a"), Some(&JsonValue::Arr(vec![
            JsonValue::Num("1".to_owned()),
            JsonValue::Num("2.5".to_owned()),
            JsonValue::Num("-3e2".to_owned()),
        ])));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(JsonValue::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn big_integers_survive_as_text() {
        let v = parse_json(r#"{"seed":18446744073709551615}"#).expect("valid json");
        assert_eq!(
            v.get("seed"),
            Some(&JsonValue::Num("18446744073709551615".to_owned()))
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{", "[1,", r#"{"a" 1}"#, "tru", "1.", "01x", r#""\q""#, "{} extra",
            "\"unterminated", "[1 2]",
        ] {
            assert!(parse_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn unicode_and_escapes_roundtrip() {
        let v = parse_json(r#""café — ✓""#).expect("valid json");
        assert_eq!(v.as_str(), Some("café — ✓"));
    }
}
