//! Global page identity.
//!
//! Every mapped virtual page in the simulation gets a dense [`PageKey`] so
//! replacement policies can keep per-page metadata in flat arrays instead of
//! hash maps. Keys are handed out when an address space registers its pages
//! and are never reused.

use crate::{AsId, Vpn};

/// Dense global identifier of a virtual page.
pub type PageKey = u32;

/// How compressible a page's contents are — consumed by the ZRAM swap
/// device. Classes correspond to representative datacenter page contents.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum EntropyClass {
    /// All-zero page (freshly touched heap); compresses almost completely.
    Zero,
    /// Text-like, highly repetitive data (≈4:1 under LZO-class codecs).
    #[default]
    Text,
    /// Binary structured records, moderate repetition (≈2.5:1).
    Structured,
    /// High-entropy data (already-compressed values, hashes); ≈1:1.
    Random,
}

/// Identity and static attributes of a page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageInfo {
    /// Owning address space.
    pub as_id: AsId,
    /// Virtual page number within the space.
    pub vpn: Vpn,
    /// Whether the page is accessed through file descriptors (buffered
    /// I/O). File-backed pages are the ones MG-LRU's tier/PID machinery
    /// treats specially.
    pub file_backed: bool,
    /// Content class for compression modeling.
    pub entropy: EntropyClass,
}

/// Allocator and registry of [`PageKey`]s.
#[derive(Debug, Default)]
pub struct PageArena {
    pages: Vec<PageInfo>,
}

impl PageArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `count` pages for space `as_id` starting at vpn 0 and
    /// returns the key of vpn 0; keys for the range are contiguous.
    pub fn register_space(&mut self, as_id: AsId, count: u32) -> PageKey {
        let base = self.pages.len() as PageKey;
        self.pages.extend((0..count).map(|vpn| PageInfo {
            as_id,
            vpn,
            file_backed: false,
            entropy: EntropyClass::default(),
        }));
        base
    }

    /// Number of registered pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no pages are registered.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Identity of page `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` was never allocated.
    pub fn info(&self, key: PageKey) -> PageInfo {
        self.pages[key as usize]
    }

    /// Marks a contiguous key range as file-backed (a "file mapping").
    pub fn set_file_backed(&mut self, first: PageKey, count: u32) {
        for k in first..first + count {
            self.pages[k as usize].file_backed = true;
        }
    }

    /// Sets the entropy class for a contiguous key range.
    pub fn set_entropy(&mut self, first: PageKey, count: u32, class: EntropyClass) {
        for k in first..first + count {
            self.pages[k as usize].entropy = class;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_dense_and_contiguous() {
        let mut a = PageArena::new();
        let base0 = a.register_space(AsId(0), 10);
        let base1 = a.register_space(AsId(1), 5);
        assert_eq!(base0, 0);
        assert_eq!(base1, 10);
        assert_eq!(a.len(), 15);
        assert_eq!(a.info(3).vpn, 3);
        assert_eq!(a.info(12).as_id, AsId(1));
        assert_eq!(a.info(12).vpn, 2);
    }

    #[test]
    fn attributes_apply_to_ranges() {
        let mut a = PageArena::new();
        a.register_space(AsId(0), 8);
        a.set_file_backed(2, 3);
        a.set_entropy(4, 2, EntropyClass::Random);
        assert!(!a.info(1).file_backed);
        assert!(a.info(2).file_backed && a.info(4).file_backed);
        assert!(!a.info(5).file_backed);
        assert_eq!(a.info(4).entropy, EntropyClass::Random);
        assert_eq!(a.info(3).entropy, EntropyClass::Text);
    }

    #[test]
    fn empty_arena() {
        let a = PageArena::new();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }
}
