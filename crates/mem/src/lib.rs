//! # pagesim-mem
//!
//! The simulated memory substrate beneath the `pagesim` replacement-policy
//! study: page-table entries with hardware-maintained accessed/dirty bits,
//! per-address-space leaf page tables with x86-64 leaf geometry, a physical
//! frame pool with Linux-style watermarks, and reverse-map ownership.
//!
//! ## Geometry
//!
//! The paper's MG-LRU results hinge on page-table *shape*: the aging thread
//! scans leaf page tables linearly, the bloom filter works at PMD-region
//! granularity (512 PTEs), and "hot" regions are defined in units of PTE
//! cache lines (8 PTEs per 64-byte line). Those three constants are
//! preserved exactly ([`PAGE_SIZE`], [`PTES_PER_LINE`], [`PTES_PER_REGION`]).
//!
//! ## Example
//!
//! ```rust
//! use pagesim_mem::{AddressSpace, AsId, PageArena, PhysMem, Watermarks};
//!
//! let mut arena = PageArena::new();
//! let mut space = AddressSpace::new(AsId(0), 1024, &mut arena);
//! let mut phys = PhysMem::new(512, Watermarks::for_capacity(512));
//!
//! let frame = phys.allocate(space.key_of(3)).unwrap();
//! space.map(3, frame);
//! space.mark_accessed(3, false);
//! assert!(space.pte(3).accessed());
//! ```


mod addrspace;
mod arena;
mod phys;
mod pte;

pub use addrspace::{AddressSpace, CoherenceError, CoherenceKind};
pub use arena::{EntropyClass, PageArena, PageInfo, PageKey};
pub use phys::{FrameId, FrameState, PhysMem, Watermarks};
pub use pte::Pte;

/// Bytes per page (4 KiB, matching the paper's testbed).
pub const PAGE_SIZE: usize = 4096;

/// PTEs per 64-byte cache line (8 × 8-byte entries). MG-LRU's default
/// bloom-filter admission rule is "at least one accessed PTE per cache
/// line" of a region.
pub const PTES_PER_LINE: usize = 8;

/// PTEs per PMD region (one leaf page table page: 512 entries covering
/// 2 MiB). This is the granularity at which MG-LRU's bloom filter filters
/// aging scans.
pub const PTES_PER_REGION: usize = 512;

/// Cache lines per PMD region.
pub const LINES_PER_REGION: usize = PTES_PER_REGION / PTES_PER_LINE;

/// PTEs covered by one word of the sidecar accessed/present bitmaps.
pub const PTES_PER_WORD: usize = 64;

/// Bitmap words per PMD region — a cold region costs this many word loads
/// to scan instead of [`PTES_PER_REGION`] branchy PTE reads.
pub const WORDS_PER_REGION: usize = PTES_PER_REGION / PTES_PER_WORD;

/// Identifies a simulated address space (process).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AsId(pub u16);

/// A virtual page number within an address space.
pub type Vpn = u32;

/// Index of a PTE cache line within an address space (`vpn / 8`).
pub type LineIdx = u32;

/// Index of a PMD region within an address space (`vpn / 512`).
pub type RegionIdx = u32;

/// The cache line containing `vpn`.
pub const fn line_of(vpn: Vpn) -> LineIdx {
    vpn / PTES_PER_LINE as u32
}

/// The PMD region containing `vpn`.
pub const fn region_of(vpn: Vpn) -> RegionIdx {
    vpn / PTES_PER_REGION as u32
}

/// The bitmap word index and bit mask covering `vpn`.
pub const fn word_bit_of(vpn: Vpn) -> (usize, u64) {
    (
        (vpn / PTES_PER_WORD as u32) as usize,
        1u64 << (vpn % PTES_PER_WORD as u32),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(PTES_PER_REGION % PTES_PER_LINE, 0);
        assert_eq!(LINES_PER_REGION, 64);
        assert_eq!(PAGE_SIZE / 8, PTES_PER_REGION);
        assert_eq!(WORDS_PER_REGION, 8);
        assert_eq!(PTES_PER_WORD % PTES_PER_LINE, 0);
    }

    #[test]
    fn word_bit_mapping() {
        assert_eq!(word_bit_of(0), (0, 1));
        assert_eq!(word_bit_of(63), (0, 1 << 63));
        assert_eq!(word_bit_of(64), (1, 1));
        assert_eq!(word_bit_of(511), (7, 1 << 63));
        assert_eq!(word_bit_of(512), (8, 1));
    }

    #[test]
    fn line_and_region_mapping() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(7), 0);
        assert_eq!(line_of(8), 1);
        assert_eq!(region_of(511), 0);
        assert_eq!(region_of(512), 1);
        assert_eq!(region_of(1024), 2);
    }
}
