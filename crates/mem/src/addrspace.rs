//! Per-process leaf page tables.

use crate::arena::{PageArena, PageKey};
use crate::phys::FrameId;
use crate::pte::Pte;
use crate::{line_of, region_of, AsId, LineIdx, RegionIdx, Vpn, PTES_PER_LINE, PTES_PER_REGION};

/// A simulated address space: a flat array of leaf PTEs with x86-64 leaf
/// geometry, plus the dense [`PageKey`] range identifying its pages
/// globally.
///
/// Only the leaf level is materialized — upper levels of a real 4-level
/// table matter for walk cost, which the cost model charges, not for
/// policy-visible state.
#[derive(Debug)]
pub struct AddressSpace {
    id: AsId,
    base_key: PageKey,
    ptes: Vec<Pte>,
}

impl AddressSpace {
    /// Creates a space with `pages` virtual pages and registers them in
    /// `arena`.
    pub fn new(id: AsId, pages: u32, arena: &mut PageArena) -> Self {
        let base_key = arena.register_space(id, pages);
        AddressSpace {
            id,
            base_key,
            ptes: vec![Pte::empty(); pages as usize],
        }
    }

    /// This space's id.
    pub fn id(&self) -> AsId {
        self.id
    }

    /// Number of virtual pages.
    pub fn pages(&self) -> u32 {
        self.ptes.len() as u32
    }

    /// Global key of `vpn`.
    pub fn key_of(&self, vpn: Vpn) -> PageKey {
        debug_assert!((vpn as usize) < self.ptes.len());
        self.base_key + vpn
    }

    /// Vpn of a key belonging to this space.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the key is outside this space's range.
    pub fn vpn_of(&self, key: PageKey) -> Vpn {
        debug_assert!(key >= self.base_key && key < self.base_key + self.pages());
        key - self.base_key
    }

    /// First key of this space (keys are contiguous).
    pub fn base_key(&self) -> PageKey {
        self.base_key
    }

    /// Read-only view of a PTE.
    pub fn pte(&self, vpn: Vpn) -> Pte {
        self.ptes[vpn as usize]
    }

    /// Mutable access to a PTE (policy scan primitives).
    pub fn pte_mut(&mut self, vpn: Vpn) -> &mut Pte {
        &mut self.ptes[vpn as usize]
    }

    /// Installs a mapping after a fault.
    pub fn map(&mut self, vpn: Vpn, frame: FrameId) {
        self.ptes[vpn as usize].set_mapped(frame);
    }

    /// MMU touch: sets accessed (and dirty for stores).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the page is not present — callers must fault first.
    pub fn mark_accessed(&mut self, vpn: Vpn, write: bool) {
        let pte = &mut self.ptes[vpn as usize];
        pte.set_accessed();
        if write {
            pte.set_dirty();
        }
    }

    /// Number of PTE cache lines.
    pub fn lines(&self) -> u32 {
        self.ptes.len().div_ceil(PTES_PER_LINE) as u32
    }

    /// Number of PMD regions.
    pub fn regions(&self) -> u32 {
        self.ptes.len().div_ceil(PTES_PER_REGION) as u32
    }

    /// The vpn range covered by cache line `line`, clamped to the space.
    pub fn line_vpns(&self, line: LineIdx) -> std::ops::Range<Vpn> {
        let start = line * PTES_PER_LINE as u32;
        let end = (start + PTES_PER_LINE as u32).min(self.pages());
        start..end
    }

    /// The vpn range covered by PMD region `region`, clamped to the space.
    pub fn region_vpns(&self, region: RegionIdx) -> std::ops::Range<Vpn> {
        let start = region * PTES_PER_REGION as u32;
        let end = (start + PTES_PER_REGION as u32).min(self.pages());
        start..end
    }

    /// Test-and-clear accessed bits over one cache line; pushes the vpn of
    /// each present+accessed PTE into `out` and returns how many PTEs were
    /// examined (for cost accounting).
    pub fn scan_line(&mut self, line: LineIdx, out: &mut Vec<Vpn>) -> u32 {
        let range = self.line_vpns(line);
        let mut examined = 0;
        for vpn in range {
            examined += 1;
            let pte = &mut self.ptes[vpn as usize];
            if pte.present() && pte.test_and_clear_accessed() {
                out.push(vpn);
            }
        }
        examined
    }

    /// Counts present PTEs in a region (used to skip unmapped table areas
    /// during linear walks).
    pub fn region_present_count(&self, region: RegionIdx) -> u32 {
        self.region_vpns(region)
            .filter(|&vpn| self.ptes[vpn as usize].present())
            .count() as u32
    }

    /// Number of resident pages in the whole space.
    pub fn resident_pages(&self) -> u32 {
        self.ptes.iter().filter(|p| p.present()).count() as u32
    }

    /// The region containing `vpn` (convenience re-export of
    /// [`region_of`]).
    pub fn region_containing(&self, vpn: Vpn) -> RegionIdx {
        region_of(vpn)
    }

    /// The cache line containing `vpn`.
    pub fn line_containing(&self, vpn: Vpn) -> LineIdx {
        line_of(vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(pages: u32) -> (AddressSpace, PageArena) {
        let mut arena = PageArena::new();
        let s = AddressSpace::new(AsId(3), pages, &mut arena);
        (s, arena)
    }

    #[test]
    fn key_mapping_roundtrips() {
        let mut arena = PageArena::new();
        let _other = AddressSpace::new(AsId(0), 100, &mut arena);
        let s = AddressSpace::new(AsId(1), 50, &mut arena);
        assert_eq!(s.base_key(), 100);
        assert_eq!(s.key_of(7), 107);
        assert_eq!(s.vpn_of(107), 7);
        assert_eq!(arena.info(107).as_id, AsId(1));
    }

    #[test]
    fn geometry_counts() {
        let (s, _) = space(1025);
        assert_eq!(s.pages(), 1025);
        assert_eq!(s.lines(), 129); // ceil(1025/8)
        assert_eq!(s.regions(), 3); // ceil(1025/512)
        assert_eq!(s.region_vpns(2), 1024..1025);
        assert_eq!(s.line_vpns(128), 1024..1025);
    }

    #[test]
    fn scan_line_clears_and_reports() {
        let (mut s, _) = space(16);
        for vpn in [0u32, 2, 9] {
            s.map(vpn, vpn as FrameId + 100);
            s.mark_accessed(vpn, false);
        }
        let mut out = Vec::new();
        let examined = s.scan_line(0, &mut out);
        assert_eq!(examined, 8);
        assert_eq!(out, vec![0, 2]);
        assert!(!s.pte(0).accessed());
        // second scan finds nothing
        out.clear();
        s.scan_line(0, &mut out);
        assert!(out.is_empty());
        // line 1 still has vpn 9 accessed
        s.scan_line(1, &mut out);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn region_present_count_tracks_mappings() {
        let (mut s, _) = space(1024);
        assert_eq!(s.region_present_count(0), 0);
        for vpn in 0..10 {
            s.map(vpn, vpn as FrameId);
        }
        s.map(600, 99);
        assert_eq!(s.region_present_count(0), 10);
        assert_eq!(s.region_present_count(1), 1);
        assert_eq!(s.resident_pages(), 11);
    }

    #[test]
    fn write_sets_dirty() {
        let (mut s, _) = space(4);
        s.map(1, 7);
        s.mark_accessed(1, true);
        assert!(s.pte(1).dirty());
        assert!(s.pte(1).accessed());
        s.mark_accessed(1, false);
        assert!(s.pte(1).dirty(), "reads must not clear dirty");
    }
}
