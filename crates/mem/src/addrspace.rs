//! Per-process leaf page tables.

use crate::arena::{PageArena, PageKey};
use crate::phys::FrameId;
use crate::pte::Pte;
use crate::{
    line_of, region_of, word_bit_of, AsId, LineIdx, RegionIdx, Vpn, PTES_PER_LINE,
    PTES_PER_REGION, PTES_PER_WORD, WORDS_PER_REGION,
};

/// First mismatch found by [`AddressSpace::check_bitmap_coherence`].
///
/// Carries indices only (`Copy`, no heap) so the coherence sweep never
/// allocates on the reclaim path; the human-readable message is produced
/// lazily by the `Display` impl, which only runs when a sanitize panic is
/// already underway.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoherenceError {
    /// Space the mismatch was found in.
    pub space: AsId,
    /// What disagreed.
    pub kind: CoherenceKind,
}

/// The specific bitmap/PTE disagreement behind a [`CoherenceError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoherenceKind {
    /// `present` bitmap bit disagrees with `Pte::present()`.
    PresentBit {
        /// Page whose bit disagrees.
        vpn: Vpn,
        /// The bitmap's value (the PTE holds the opposite).
        bitmap: bool,
    },
    /// `accessed` bitmap bit disagrees with `Pte::accessed()`.
    AccessedBit {
        /// Page whose bit disagrees.
        vpn: Vpn,
        /// The bitmap's value (the PTE holds the opposite).
        bitmap: bool,
    },
    /// Bits set past the last page in the final partial word.
    TailBits,
    /// Region present-count out of sync with the bitmap popcount.
    RegionPresent {
        /// Region whose counter disagrees.
        region: RegionIdx,
        /// Popcount of the region's bitmap words.
        bits: u32,
        /// Incrementally maintained counter value.
        count: u32,
    },
    /// Region young-count out of sync with the bitmap popcount.
    RegionYoung {
        /// Region whose counter disagrees.
        region: RegionIdx,
        /// Popcount of the region's bitmap words.
        bits: u32,
        /// Incrementally maintained counter value.
        count: u32,
    },
}

impl std::fmt::Display for CoherenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let space = self.space;
        match self.kind {
            CoherenceKind::PresentBit { vpn, bitmap } => write!(
                f,
                "space {space:?} vpn {vpn}: present bit {bitmap} but PTE present {}",
                !bitmap
            ),
            CoherenceKind::AccessedBit { vpn, bitmap } => write!(
                f,
                "space {space:?} vpn {vpn}: accessed bit {bitmap} but PTE accessed {}",
                !bitmap
            ),
            CoherenceKind::TailBits => {
                write!(f, "space {space:?}: bitmap bits set beyond the last page")
            }
            CoherenceKind::RegionPresent { region, bits, count } => write!(
                f,
                "space {space:?} region {region}: {bits} present bits but count {count}"
            ),
            CoherenceKind::RegionYoung { region, bits, count } => write!(
                f,
                "space {space:?} region {region}: {bits} accessed bits but count {count}"
            ),
        }
    }
}

/// A simulated address space: a flat array of leaf PTEs with x86-64 leaf
/// geometry, plus the dense [`PageKey`] range identifying its pages
/// globally.
///
/// Only the leaf level is materialized — upper levels of a real 4-level
/// table matter for walk cost, which the cost model charges, not for
/// policy-visible state.
///
/// ## Sidecar bitmaps
///
/// Next to the `Vec<Pte>` the space keeps packed `present` and `accessed`
/// bitmaps (one bit per PTE, 64 PTEs per `u64` word) plus per-PMD-region
/// population counts of present and accessed ("young") PTEs. The `Vec<Pte>`
/// stays authoritative; every mutation goes through methods on this type so
/// the bitmaps never diverge (the real kernel's sparse accessed-bit
/// harvesting plays the same trick). Scans then cost 8 word loads per
/// 512-PTE region when cold — or one counter load when the region has no
/// young pages at all — instead of 512 branchy PTE reads, while producing
/// byte-identical results and visit order.
#[derive(Debug)]
pub struct AddressSpace {
    id: AsId,
    base_key: PageKey,
    ptes: Vec<Pte>,
    /// Bit `vpn % 64` of word `vpn / 64` mirrors `ptes[vpn].present()`.
    present: Vec<u64>,
    /// Bit `vpn % 64` of word `vpn / 64` mirrors `ptes[vpn].accessed()`.
    accessed: Vec<u64>,
    /// Present PTEs per PMD region (`popcount` of the region's `present`
    /// words, maintained incrementally).
    region_present: Vec<u32>,
    /// Accessed PTEs per PMD region — zero lets a scan skip the whole
    /// region without touching the bitmap.
    region_young: Vec<u32>,
}

impl AddressSpace {
    /// Creates a space with `pages` virtual pages and registers them in
    /// `arena`.
    pub fn new(id: AsId, pages: u32, arena: &mut PageArena) -> Self {
        let base_key = arena.register_space(id, pages);
        let words = (pages as usize).div_ceil(PTES_PER_WORD);
        let regions = (pages as usize).div_ceil(PTES_PER_REGION);
        AddressSpace {
            id,
            base_key,
            ptes: vec![Pte::empty(); pages as usize],
            present: vec![0; words],
            accessed: vec![0; words],
            region_present: vec![0; regions],
            region_young: vec![0; regions],
        }
    }

    /// This space's id.
    pub fn id(&self) -> AsId {
        self.id
    }

    /// Number of virtual pages.
    pub fn pages(&self) -> u32 {
        self.ptes.len() as u32
    }

    /// Global key of `vpn`.
    pub fn key_of(&self, vpn: Vpn) -> PageKey {
        debug_assert!((vpn as usize) < self.ptes.len());
        self.base_key + vpn
    }

    /// Vpn of a key belonging to this space.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the key is outside this space's range.
    pub fn vpn_of(&self, key: PageKey) -> Vpn {
        debug_assert!(key >= self.base_key && key < self.base_key + self.pages());
        key - self.base_key
    }

    /// First key of this space (keys are contiguous).
    pub fn base_key(&self) -> PageKey {
        self.base_key
    }

    /// Read-only view of a PTE.
    pub fn pte(&self, vpn: Vpn) -> Pte {
        self.ptes[vpn as usize]
    }

    /// Installs a mapping after a fault.
    pub fn map(&mut self, vpn: Vpn, frame: FrameId) {
        let (w, b) = word_bit_of(vpn);
        if self.accessed[w] & b != 0 {
            self.accessed[w] &= !b;
            self.region_young[region_of(vpn) as usize] -= 1;
        }
        if self.present[w] & b == 0 {
            self.present[w] |= b;
            self.region_present[region_of(vpn) as usize] += 1;
        }
        self.ptes[vpn as usize].set_mapped(frame);
    }

    /// Unmaps the page into swap slot `slot`.
    pub fn set_swapped(&mut self, vpn: Vpn, slot: u32) {
        self.drop_bits(vpn);
        self.ptes[vpn as usize].set_swapped(slot);
    }

    /// Clears the mapping entirely (page discarded without a swap slot,
    /// e.g. a clean file page, or a dying thread's table).
    pub fn clear_mapping(&mut self, vpn: Vpn) {
        self.drop_bits(vpn);
        self.ptes[vpn as usize].clear();
    }

    /// Drops the sidecar present/accessed bits of `vpn` ahead of a PTE
    /// write that clears its hardware bits.
    fn drop_bits(&mut self, vpn: Vpn) {
        let (w, b) = word_bit_of(vpn);
        if self.accessed[w] & b != 0 {
            self.accessed[w] &= !b;
            self.region_young[region_of(vpn) as usize] -= 1;
        }
        if self.present[w] & b != 0 {
            self.present[w] &= !b;
            self.region_present[region_of(vpn) as usize] -= 1;
        }
    }

    /// MMU touch: sets accessed (and dirty for stores).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the page is not present — callers must fault first.
    pub fn mark_accessed(&mut self, vpn: Vpn, write: bool) {
        let pte = &mut self.ptes[vpn as usize];
        pte.set_accessed();
        if write {
            pte.set_dirty();
        }
        let (w, b) = word_bit_of(vpn);
        if self.accessed[w] & b == 0 {
            self.accessed[w] |= b;
            self.region_young[region_of(vpn) as usize] += 1;
        }
    }

    /// Sets the dirty bit without touching accessed state (fd writes that
    /// land via the page cache rather than the MMU).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the page is not present.
    pub fn set_dirty(&mut self, vpn: Vpn) {
        self.ptes[vpn as usize].set_dirty();
    }

    /// Reverse-map probe: test-and-clear the accessed bit of one PTE.
    /// Bitmap-first — a cold page answers from the sidecar word without
    /// touching the PTE array.
    pub fn test_and_clear_accessed(&mut self, vpn: Vpn) -> bool {
        let (w, b) = word_bit_of(vpn);
        if self.accessed[w] & b == 0 {
            return false;
        }
        self.accessed[w] &= !b;
        self.region_young[region_of(vpn) as usize] -= 1;
        self.ptes[vpn as usize].test_and_clear_accessed()
    }

    /// Number of PTE cache lines.
    pub fn lines(&self) -> u32 {
        self.ptes.len().div_ceil(PTES_PER_LINE) as u32
    }

    /// Number of PMD regions.
    pub fn regions(&self) -> u32 {
        self.ptes.len().div_ceil(PTES_PER_REGION) as u32
    }

    /// The vpn range covered by cache line `line`, clamped to the space.
    pub fn line_vpns(&self, line: LineIdx) -> std::ops::Range<Vpn> {
        let start = line * PTES_PER_LINE as u32;
        let end = (start + PTES_PER_LINE as u32).min(self.pages());
        start..end
    }

    /// The vpn range covered by PMD region `region`, clamped to the space.
    pub fn region_vpns(&self, region: RegionIdx) -> std::ops::Range<Vpn> {
        let start = region * PTES_PER_REGION as u32;
        let end = (start + PTES_PER_REGION as u32).min(self.pages());
        start..end
    }

    /// Test-and-clear accessed bits over one whole PMD region. Fills
    /// `words` with the harvested accessed masks (bit `i` of word `w` =
    /// vpn `region*512 + w*64 + i` was present and accessed; all bits are
    /// cleared) and returns how many PTEs were examined (for cost
    /// accounting — clamped region size, identical to a per-PTE walk).
    pub fn scan_region(&mut self, region: RegionIdx, words: &mut [u64; WORDS_PER_REGION]) -> u32 {
        let range = self.region_vpns(region);
        let examined = range.end - range.start;
        if self.region_young[region as usize] == 0 {
            // No young PTEs anywhere in the region: 1 counter load.
            *words = [0; WORDS_PER_REGION];
            return examined;
        }
        let first_word = range.start as usize / PTES_PER_WORD;
        for (i, slot) in words.iter_mut().enumerate() {
            let Some(word) = self.accessed.get_mut(first_word + i) else {
                *slot = 0;
                continue;
            };
            let mask = std::mem::take(word);
            *slot = mask;
            // Keep the authoritative PTE flags coherent: only the set
            // bits cost a PTE write.
            let mut bits = mask;
            while bits != 0 {
                let vpn = range.start + i as u32 * PTES_PER_WORD as u32 + bits.trailing_zeros();
                bits &= bits - 1;
                self.ptes[vpn as usize].test_and_clear_accessed();
            }
        }
        self.region_young[region as usize] = 0;
        examined
    }

    /// Test-and-clear accessed bits over one PTE cache line, returning
    /// `(mask, examined)`: bit `i` of `mask` = vpn `line*8 + i` was present
    /// and accessed (now cleared), `examined` the PTE count for cost
    /// accounting.
    pub fn scan_line_mask(&mut self, line: LineIdx) -> (u8, u32) {
        let range = self.line_vpns(line);
        if range.is_empty() {
            return (0, 0);
        }
        let examined = range.end - range.start;
        let (w, _) = word_bit_of(range.start);
        let shift = range.start % PTES_PER_WORD as u32;
        let mask = ((self.accessed[w] >> shift) & 0xFF) as u8;
        if mask != 0 {
            self.accessed[w] &= !((mask as u64) << shift);
            self.region_young[region_of(range.start) as usize] -= mask.count_ones();
            let mut bits = mask;
            while bits != 0 {
                let vpn = range.start + bits.trailing_zeros();
                bits &= bits - 1;
                self.ptes[vpn as usize].test_and_clear_accessed();
            }
        }
        (mask, examined)
    }

    /// Present PTEs in a region (lets linear walks skip unmapped table
    /// areas). O(1): maintained incrementally by the mapping paths.
    pub fn region_present_count(&self, region: RegionIdx) -> u32 {
        self.region_present[region as usize]
    }

    /// Accessed PTEs in a region since the last scan. O(1).
    pub fn region_young_count(&self, region: RegionIdx) -> u32 {
        self.region_young[region as usize]
    }

    /// Number of resident pages in the whole space.
    pub fn resident_pages(&self) -> u32 {
        self.region_present.iter().sum()
    }

    /// Verifies the sidecar bitmaps and region counters against the
    /// authoritative `Vec<Pte>`. Cold diagnostic for the sanitize invariant
    /// sweep and property tests; returns the first mismatch. Allocation-free:
    /// the error carries indices only and formats lazily via `Display`, so
    /// the sweep itself stays clean under the hot-path lint.
    pub fn check_bitmap_coherence(&self) -> Result<(), CoherenceError> {
        for vpn in 0..self.pages() {
            let pte = self.ptes[vpn as usize];
            let (w, b) = word_bit_of(vpn);
            let bit = self.present[w] & b != 0;
            if bit != pte.present() {
                return Err(CoherenceError { space: self.id, kind: CoherenceKind::PresentBit { vpn, bitmap: bit } });
            }
            let bit = self.accessed[w] & b != 0;
            if bit != pte.accessed() {
                return Err(CoherenceError { space: self.id, kind: CoherenceKind::AccessedBit { vpn, bitmap: bit } });
            }
        }
        let tail = self.pages() as usize % PTES_PER_WORD;
        if tail != 0 {
            let last = self.present.len() - 1;
            let beyond = !((1u64 << tail) - 1);
            if self.present[last] & beyond != 0 || self.accessed[last] & beyond != 0 {
                return Err(CoherenceError { space: self.id, kind: CoherenceKind::TailBits });
            }
        }
        for region in 0..self.regions() {
            let first_word = region as usize * WORDS_PER_REGION;
            let words = &self.present[first_word..self.present.len().min(first_word + WORDS_PER_REGION)];
            let bits: u32 = words.iter().map(|w| w.count_ones()).sum();
            let count = self.region_present[region as usize];
            if bits != count {
                return Err(CoherenceError { space: self.id, kind: CoherenceKind::RegionPresent { region, bits, count } });
            }
            let words = &self.accessed[first_word..self.accessed.len().min(first_word + WORDS_PER_REGION)];
            let bits: u32 = words.iter().map(|w| w.count_ones()).sum();
            let count = self.region_young[region as usize];
            if bits != count {
                return Err(CoherenceError { space: self.id, kind: CoherenceKind::RegionYoung { region, bits, count } });
            }
        }
        Ok(())
    }

    /// The region containing `vpn` (convenience re-export of
    /// [`region_of`]).
    pub fn region_containing(&self, vpn: Vpn) -> RegionIdx {
        region_of(vpn)
    }

    /// The cache line containing `vpn`.
    pub fn line_containing(&self, vpn: Vpn) -> LineIdx {
        line_of(vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(pages: u32) -> (AddressSpace, PageArena) {
        let mut arena = PageArena::new();
        let s = AddressSpace::new(AsId(3), pages, &mut arena);
        (s, arena)
    }

    /// Vpns of the set bits in a line mask, in ascending order.
    fn line_hits(line: LineIdx, mask: u8) -> Vec<Vpn> {
        (0..8)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| line * PTES_PER_LINE as u32 + i)
            .collect()
    }

    /// Vpns of the set bits in region scan words, in ascending order.
    fn region_hits(region: RegionIdx, words: &[u64; WORDS_PER_REGION]) -> Vec<Vpn> {
        let base = region * PTES_PER_REGION as u32;
        let mut out = Vec::new();
        for (w, &word) in words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                out.push(base + w as u32 * PTES_PER_WORD as u32 + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        out
    }

    #[test]
    fn key_mapping_roundtrips() {
        let mut arena = PageArena::new();
        let _other = AddressSpace::new(AsId(0), 100, &mut arena);
        let s = AddressSpace::new(AsId(1), 50, &mut arena);
        assert_eq!(s.base_key(), 100);
        assert_eq!(s.key_of(7), 107);
        assert_eq!(s.vpn_of(107), 7);
        assert_eq!(arena.info(107).as_id, AsId(1));
    }

    #[test]
    fn geometry_counts() {
        let (s, _) = space(1025);
        assert_eq!(s.pages(), 1025);
        assert_eq!(s.lines(), 129); // ceil(1025/8)
        assert_eq!(s.regions(), 3); // ceil(1025/512)
        assert_eq!(s.region_vpns(2), 1024..1025);
        assert_eq!(s.line_vpns(128), 1024..1025);
    }

    #[test]
    fn scan_line_mask_clears_and_reports() {
        let (mut s, _) = space(16);
        for vpn in [0u32, 2, 9] {
            s.map(vpn, vpn as FrameId + 100);
            s.mark_accessed(vpn, false);
        }
        let (mask, examined) = s.scan_line_mask(0);
        assert_eq!(examined, 8);
        assert_eq!(line_hits(0, mask), vec![0, 2]);
        assert!(!s.pte(0).accessed());
        // second scan finds nothing
        let (mask, _) = s.scan_line_mask(0);
        assert_eq!(mask, 0);
        // line 1 still has vpn 9 accessed
        let (mask, _) = s.scan_line_mask(1);
        assert_eq!(line_hits(1, mask), vec![9]);
        s.check_bitmap_coherence().unwrap();
    }

    #[test]
    fn scan_region_clears_and_reports() {
        let (mut s, _) = space(1200);
        for vpn in [0u32, 2, 63, 64, 300, 511, 512, 1199] {
            s.map(vpn, vpn as FrameId + 7);
            s.mark_accessed(vpn, false);
        }
        let mut words = [0u64; WORDS_PER_REGION];
        let examined = s.scan_region(0, &mut words);
        assert_eq!(examined, 512);
        assert_eq!(region_hits(0, &words), vec![0, 2, 63, 64, 300, 511]);
        assert_eq!(s.region_young_count(0), 0);
        assert!(!s.pte(0).accessed());
        // a second scan over a now-cold region reports nothing
        let examined = s.scan_region(0, &mut words);
        assert_eq!((examined, words), (512, [0u64; WORDS_PER_REGION]));
        // the partial trailing region clamps examined to the space
        let examined = s.scan_region(2, &mut words);
        assert_eq!(examined, 1200 - 1024);
        assert_eq!(region_hits(2, &words), vec![1199]);
        // region 1 untouched by the other scans
        let examined = s.scan_region(1, &mut words);
        assert_eq!(examined, 512);
        assert_eq!(region_hits(1, &words), vec![512]);
        s.check_bitmap_coherence().unwrap();
    }

    #[test]
    fn region_present_count_tracks_mappings() {
        let (mut s, _) = space(1024);
        assert_eq!(s.region_present_count(0), 0);
        for vpn in 0..10 {
            s.map(vpn, vpn as FrameId);
        }
        s.map(600, 99);
        assert_eq!(s.region_present_count(0), 10);
        assert_eq!(s.region_present_count(1), 1);
        assert_eq!(s.resident_pages(), 11);
        s.set_swapped(600, 5);
        assert_eq!(s.region_present_count(1), 0);
        s.clear_mapping(3);
        assert_eq!(s.region_present_count(0), 9);
        assert_eq!(s.resident_pages(), 9);
        s.check_bitmap_coherence().unwrap();
    }

    #[test]
    fn unmap_paths_drop_young_bits() {
        let (mut s, _) = space(64);
        for vpn in 0..4 {
            s.map(vpn, vpn as FrameId);
            s.mark_accessed(vpn, true);
        }
        assert_eq!(s.region_young_count(0), 4);
        s.set_swapped(0, 1);
        s.clear_mapping(1);
        s.map(2, 77); // remap clears hardware bits
        assert_eq!(s.region_young_count(0), 1);
        let (mask, _) = s.scan_line_mask(0);
        assert_eq!(line_hits(0, mask), vec![3]);
        s.check_bitmap_coherence().unwrap();
    }

    #[test]
    fn rmap_probe_is_bitmap_first() {
        let (mut s, _) = space(8);
        s.map(5, 1);
        assert!(!s.test_and_clear_accessed(5));
        s.mark_accessed(5, false);
        assert!(s.test_and_clear_accessed(5));
        assert!(!s.test_and_clear_accessed(5));
        assert!(!s.pte(5).accessed());
        s.check_bitmap_coherence().unwrap();
    }

    #[test]
    fn write_sets_dirty() {
        let (mut s, _) = space(4);
        s.map(1, 7);
        s.mark_accessed(1, true);
        assert!(s.pte(1).dirty());
        assert!(s.pte(1).accessed());
        s.mark_accessed(1, false);
        assert!(s.pte(1).dirty(), "reads must not clear dirty");
        s.set_dirty(1);
        assert!(s.pte(1).dirty());
        s.check_bitmap_coherence().unwrap();
    }
}
