//! The physical frame pool.

use crate::arena::PageKey;

/// Identifies a physical frame.
pub type FrameId = u32;

/// Lifecycle of a frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameState {
    /// On the free list.
    Free,
    /// Holds a mapped page.
    InUse,
    /// Eviction chose the page and its dirty contents are being written to
    /// swap; the frame cannot be reused until the write-back completes.
    /// This is the state that makes demand faults wait on swap-out under
    /// thrashing (§VI-A of the paper).
    Writeback,
}

/// Linux-style reclaim watermarks, in frames.
///
/// * free < `low`  → background reclaim (the kswapd analog) wakes.
/// * free > `high` → background reclaim goes back to sleep.
/// * allocation with free ≤ `min` fails → the faulting thread must run
///   direct reclaim itself.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Watermarks {
    /// Reserve below which allocations fail over to direct reclaim.
    pub min: usize,
    /// Background-reclaim wake threshold.
    pub low: usize,
    /// Background-reclaim sleep threshold.
    pub high: usize,
}

impl Watermarks {
    /// Default watermarks for a pool of `capacity` frames: 1% / 2% / 4%
    /// with small-pool floors, mirroring the proportions Linux derives from
    /// `min_free_kbytes`.
    pub fn for_capacity(capacity: usize) -> Watermarks {
        let pct = |p: usize| (capacity * p / 100).max(4);
        let min = pct(1);
        let low = (pct(2)).max(min + 1);
        let high = (pct(4)).max(low + 1);
        Watermarks { min, low, high }
    }

    fn validate(&self, capacity: usize) {
        assert!(
            self.min < self.low && self.low < self.high && self.high < capacity,
            "watermarks must satisfy min < low < high < capacity"
        );
    }
}

/// A pool of physical frames with ownership (the reverse map) and reclaim
/// watermarks.
///
/// ```rust
/// use pagesim_mem::{PhysMem, Watermarks};
/// let mut pm = PhysMem::new(64, Watermarks::for_capacity(64));
/// let f = pm.allocate(7).unwrap();
/// assert_eq!(pm.owner(f), Some(7));
/// pm.free(f);
/// assert_eq!(pm.owner(f), None);
/// ```
#[derive(Debug)]
pub struct PhysMem {
    owner: Vec<Option<PageKey>>,
    state: Vec<FrameState>,
    free: Vec<FrameId>,
    watermarks: Watermarks,
    writeback_count: usize,
    alloc_count: u64,
}

impl PhysMem {
    /// Creates a pool of `capacity` frames, all free.
    ///
    /// # Panics
    ///
    /// Panics if the watermarks are not strictly ordered below `capacity`.
    pub fn new(capacity: usize, watermarks: Watermarks) -> Self {
        watermarks.validate(capacity);
        PhysMem {
            owner: vec![None; capacity],
            state: vec![FrameState::Free; capacity],
            // Hand out low frame numbers first (cosmetic, deterministic).
            free: (0..capacity as FrameId).rev().collect(),
            watermarks,
            writeback_count: 0,
            alloc_count: 0,
        }
    }

    /// Total frames.
    pub fn capacity(&self) -> usize {
        self.owner.len()
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Frames pinned by in-flight write-back.
    pub fn writeback_frames(&self) -> usize {
        self.writeback_count
    }

    /// The configured watermarks.
    pub fn watermarks(&self) -> Watermarks {
        self.watermarks
    }

    /// Whether free memory is below the background-reclaim wake threshold.
    pub fn below_low(&self) -> bool {
        self.free.len() < self.watermarks.low
    }

    /// Whether free memory has recovered above the sleep threshold.
    pub fn above_high(&self) -> bool {
        self.free.len() > self.watermarks.high
    }

    /// Whether an allocation right now would dip into the reserve
    /// (requiring direct reclaim).
    pub fn at_min(&self) -> bool {
        self.free.len() <= self.watermarks.min
    }

    /// Allocates a frame for page `key`. Returns `None` when only the
    /// reserve is left — the caller must reclaim first.
    pub fn allocate(&mut self, key: PageKey) -> Option<FrameId> {
        if self.at_min() {
            return None;
        }
        self.allocate_from_reserve(key)
    }

    /// Allocates even from the reserve (used by reclaim itself and by
    /// tests). Returns `None` only when truly empty.
    pub fn allocate_from_reserve(&mut self, key: PageKey) -> Option<FrameId> {
        let frame = self.free.pop()?;
        debug_assert_eq!(self.state[frame as usize], FrameState::Free);
        self.owner[frame as usize] = Some(key);
        self.state[frame as usize] = FrameState::InUse;
        self.alloc_count += 1;
        Some(frame)
    }

    /// The reverse map: which page owns `frame`.
    pub fn owner(&self, frame: FrameId) -> Option<PageKey> {
        self.owner[frame as usize]
    }

    /// Frame lifecycle state.
    pub fn state(&self, frame: FrameId) -> FrameState {
        self.state[frame as usize]
    }

    /// Releases a clean frame back to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not in use.
    pub fn free(&mut self, frame: FrameId) {
        assert_eq!(
            self.state[frame as usize],
            FrameState::InUse,
            "freeing frame not in use"
        );
        self.owner[frame as usize] = None;
        self.state[frame as usize] = FrameState::Free;
        self.free.push(frame);
    }

    /// Moves a frame into the write-back state: its page is gone from the
    /// page table but the frame stays pinned until
    /// [`writeback_done`](Self::writeback_done).
    pub fn begin_writeback(&mut self, frame: FrameId) {
        assert_eq!(
            self.state[frame as usize],
            FrameState::InUse,
            "writeback of frame not in use"
        );
        self.owner[frame as usize] = None;
        self.state[frame as usize] = FrameState::Writeback;
        self.writeback_count += 1;
    }

    /// Completes a write-back, returning the frame to the free list.
    pub fn writeback_done(&mut self, frame: FrameId) {
        assert_eq!(
            self.state[frame as usize],
            FrameState::Writeback,
            "writeback_done on frame not in writeback"
        );
        self.state[frame as usize] = FrameState::Free;
        self.writeback_count -= 1;
        self.free.push(frame);
    }

    /// Total successful allocations (demand + reserve).
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }
}

/// DEBUG_VM-style frame-accounting sanitizer (the `sanitize` feature).
/// Compiled out of release figure runs; exercised by
/// `cargo test --workspace --features sanitize`.
#[cfg(feature = "sanitize")]
impl PhysMem {
    /// Verifies the **frame-accounting** invariant: the free list, the
    /// per-frame states, the reverse map, and the write-back counter must
    /// tell one consistent story.
    ///
    /// # Panics
    ///
    /// Panics with a `sanitize: frame-accounting:` message on any
    /// inconsistency.
    pub fn check_invariants(&self) {
        let mut free_states = 0usize;
        let mut writeback_states = 0usize;
        for (f, &st) in self.state.iter().enumerate() {
            match st {
                FrameState::Free => {
                    free_states += 1;
                    assert!(
                        self.owner[f].is_none(),
                        "sanitize: frame-accounting: free frame {f} has owner {:?}",
                        self.owner[f]
                    );
                }
                FrameState::InUse => {
                    assert!(
                        self.owner[f].is_some(),
                        "sanitize: frame-accounting: in-use frame {f} has no owner"
                    );
                }
                FrameState::Writeback => {
                    writeback_states += 1;
                    assert!(
                        self.owner[f].is_none(),
                        "sanitize: frame-accounting: writeback frame {f} has owner {:?}",
                        self.owner[f]
                    );
                }
            }
        }
        assert_eq!(
            self.free.len(),
            free_states,
            "sanitize: frame-accounting: free list holds {} frames but {} frames are in state Free",
            self.free.len(),
            free_states
        );
        assert_eq!(
            self.writeback_count, writeback_states,
            "sanitize: frame-accounting: writeback counter {} vs {} frames in state Writeback",
            self.writeback_count, writeback_states
        );
        let mut on_free_list = vec![false; self.owner.len()];
        for &f in &self.free {
            let fi = f as usize;
            assert!(
                fi < self.owner.len(),
                "sanitize: frame-accounting: free list entry {f} out of range"
            );
            assert!(
                !on_free_list[fi],
                "sanitize: frame-accounting: frame {f} on the free list twice"
            );
            on_free_list[fi] = true;
            assert_eq!(
                self.state[fi],
                FrameState::Free,
                "sanitize: frame-accounting: frame {f} on the free list in state {:?}",
                self.state[fi]
            );
        }
    }

    /// Deliberately breaks frame accounting (marks an in-use frame `Free`
    /// without returning it to the free list), so tests can prove the
    /// sanitizer trips. Test-only by construction: it corrupts the pool.
    ///
    /// # Panics
    ///
    /// Panics if no frame is currently in use.
    pub fn corrupt_frame_accounting_for_test(&mut self) {
        let f = (0..self.capacity())
            .find(|&f| self.state[f] == FrameState::InUse)
            .expect("corrupt_frame_accounting_for_test needs an allocated frame");
        self.state[f] = FrameState::Free;
        self.owner[f] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> PhysMem {
        PhysMem::new(cap, Watermarks { min: 2, low: 4, high: 8, })
    }

    #[test]
    fn allocate_respects_min_watermark() {
        let mut pm = pool(16);
        let mut got = Vec::new();
        while let Some(f) = pm.allocate(0) {
            got.push(f);
        }
        // stops when free == min == 2
        assert_eq!(pm.free_frames(), 2);
        assert_eq!(got.len(), 14);
        // reserve allocation still works
        assert!(pm.allocate_from_reserve(1).is_some());
        assert_eq!(pm.free_frames(), 1);
    }

    #[test]
    fn watermark_predicates() {
        let mut pm = pool(16);
        assert!(!pm.below_low());
        assert!(pm.above_high());
        for _ in 0..13 {
            pm.allocate(0).unwrap();
        }
        assert!(pm.below_low());
        assert!(!pm.above_high());
        assert!(!pm.at_min());
        pm.allocate(0).unwrap();
        assert!(pm.at_min());
    }

    #[test]
    fn free_roundtrip_restores_capacity() {
        let mut pm = pool(16);
        let f = pm.allocate(42).unwrap();
        assert_eq!(pm.owner(f), Some(42));
        assert_eq!(pm.state(f), FrameState::InUse);
        pm.free(f);
        assert_eq!(pm.owner(f), None);
        assert_eq!(pm.state(f), FrameState::Free);
        assert_eq!(pm.free_frames(), 16);
    }

    #[test]
    fn writeback_pins_frame() {
        let mut pm = pool(16);
        let f = pm.allocate(1).unwrap();
        pm.begin_writeback(f);
        assert_eq!(pm.writeback_frames(), 1);
        assert_eq!(pm.owner(f), None);
        assert_eq!(pm.free_frames(), 15); // not yet reusable
        pm.writeback_done(f);
        assert_eq!(pm.writeback_frames(), 0);
        assert_eq!(pm.free_frames(), 16);
    }

    #[test]
    #[should_panic(expected = "not in use")]
    fn double_free_panics() {
        let mut pm = pool(16);
        let f = pm.allocate(1).unwrap();
        pm.free(f);
        pm.free(f);
    }

    #[test]
    fn default_watermarks_scale() {
        let w = Watermarks::for_capacity(10_000);
        assert_eq!(w.min, 100);
        assert_eq!(w.low, 200);
        assert_eq!(w.high, 400);
        // tiny pools keep strict ordering
        let w = Watermarks::for_capacity(64);
        assert!(w.min < w.low && w.low < w.high && w.high < 64);
    }

    #[test]
    fn alloc_count_increments() {
        let mut pm = pool(16);
        pm.allocate(0).unwrap();
        pm.allocate_from_reserve(1).unwrap();
        assert_eq!(pm.alloc_count(), 2);
    }
}
