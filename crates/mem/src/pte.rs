//! Page-table entries.

use crate::phys::FrameId;

const FLAG_PRESENT: u64 = 1 << 0;
const FLAG_ACCESSED: u64 = 1 << 1;
const FLAG_DIRTY: u64 = 1 << 2;
const FLAG_SWAPPED: u64 = 1 << 3;
const PAYLOAD_SHIFT: u32 = 8;
const PAYLOAD_MASK: u64 = 0xFFFF_FFFF << PAYLOAD_SHIFT;

/// A simulated page-table entry.
///
/// Mirrors the bits the studied policies actually consume: *present*,
/// *accessed* (set by the simulated MMU on every touch, cleared by policy
/// scans), *dirty* (set on stores, decides whether eviction needs a
/// write-back), plus a payload holding either the backing frame (present)
/// or the swap slot (swapped out).
///
/// ```rust
/// use pagesim_mem::Pte;
/// let mut pte = Pte::empty();
/// assert!(!pte.present());
/// pte.set_mapped(42);
/// pte.set_accessed();
/// assert_eq!(pte.frame(), Some(42));
/// assert!(pte.test_and_clear_accessed());
/// assert!(!pte.accessed());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pte(u64);

impl Pte {
    /// An entry that maps nothing: not present, not swapped.
    pub const fn empty() -> Pte {
        Pte(0)
    }

    /// Whether the page is resident in a physical frame.
    pub const fn present(self) -> bool {
        self.0 & FLAG_PRESENT != 0
    }

    /// Whether the hardware accessed bit is set.
    pub const fn accessed(self) -> bool {
        self.0 & FLAG_ACCESSED != 0
    }

    /// Whether the page has been written since the last clean.
    pub const fn dirty(self) -> bool {
        self.0 & FLAG_DIRTY != 0
    }

    /// Whether the page lives in a swap slot.
    pub const fn swapped(self) -> bool {
        self.0 & FLAG_SWAPPED != 0
    }

    /// The backing frame if present.
    pub fn frame(self) -> Option<FrameId> {
        self.present().then_some(((self.0 & PAYLOAD_MASK) >> PAYLOAD_SHIFT) as FrameId)
    }

    /// The swap slot if swapped out.
    pub fn swap_slot(self) -> Option<u32> {
        self.swapped()
            .then_some(((self.0 & PAYLOAD_MASK) >> PAYLOAD_SHIFT) as u32)
    }

    /// Maps the page to `frame`, clearing any swap state. Accessed and
    /// dirty bits start clear (the faulting access will set them).
    pub fn set_mapped(&mut self, frame: FrameId) {
        self.0 = FLAG_PRESENT | ((frame as u64) << PAYLOAD_SHIFT);
    }

    /// Unmaps the page into swap slot `slot`, clearing all hardware bits.
    pub fn set_swapped(&mut self, slot: u32) {
        self.0 = FLAG_SWAPPED | ((slot as u64) << PAYLOAD_SHIFT);
    }

    /// Clears the mapping entirely (page discarded without a swap slot,
    /// e.g. a clean file page).
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Hardware sets the accessed bit on a touch.
    pub fn set_accessed(&mut self) {
        debug_assert!(self.present(), "accessed bit on non-present PTE");
        self.0 |= FLAG_ACCESSED;
    }

    /// Hardware sets the dirty bit on a store.
    pub fn set_dirty(&mut self) {
        debug_assert!(self.present(), "dirty bit on non-present PTE");
        self.0 |= FLAG_DIRTY;
    }

    /// Policy scan primitive: reads and clears the accessed bit.
    pub fn test_and_clear_accessed(&mut self) -> bool {
        let was = self.accessed();
        self.0 &= !FLAG_ACCESSED;
        was
    }

    /// Clears the dirty bit (after a successful write-back).
    pub fn clear_dirty(&mut self) {
        self.0 &= !FLAG_DIRTY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pte_maps_nothing() {
        let p = Pte::empty();
        assert!(!p.present() && !p.swapped() && !p.accessed() && !p.dirty());
        assert_eq!(p.frame(), None);
        assert_eq!(p.swap_slot(), None);
    }

    #[test]
    fn map_swap_roundtrip() {
        let mut p = Pte::empty();
        p.set_mapped(0xABCD);
        assert_eq!(p.frame(), Some(0xABCD));
        assert_eq!(p.swap_slot(), None);
        p.set_swapped(0x1234);
        assert!(!p.present());
        assert_eq!(p.swap_slot(), Some(0x1234));
        assert_eq!(p.frame(), None);
    }

    #[test]
    fn mapping_clears_hardware_bits() {
        let mut p = Pte::empty();
        p.set_mapped(1);
        p.set_accessed();
        p.set_dirty();
        p.set_mapped(2);
        assert!(!p.accessed());
        assert!(!p.dirty());
        assert_eq!(p.frame(), Some(2));
    }

    #[test]
    fn test_and_clear_semantics() {
        let mut p = Pte::empty();
        p.set_mapped(9);
        assert!(!p.test_and_clear_accessed());
        p.set_accessed();
        assert!(p.test_and_clear_accessed());
        assert!(!p.test_and_clear_accessed());
    }

    #[test]
    fn dirty_survives_accessed_clear() {
        let mut p = Pte::empty();
        p.set_mapped(3);
        p.set_dirty();
        p.set_accessed();
        p.test_and_clear_accessed();
        assert!(p.dirty());
        p.clear_dirty();
        assert!(!p.dirty());
    }

    #[test]
    fn max_frame_id_roundtrips() {
        let mut p = Pte::empty();
        p.set_mapped(u32::MAX as FrameId);
        assert_eq!(p.frame(), Some(u32::MAX as FrameId));
    }
}
