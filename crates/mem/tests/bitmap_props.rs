//! Property tests for the sidecar accessed/present bitmaps: under
//! arbitrary mutation sequences the word-level scans must stay
//! observationally identical to a naive per-PTE walk over the
//! authoritative `Vec<Pte>`, and [`AddressSpace::check_bitmap_coherence`]
//! must hold after every single operation.

use proptest::prelude::*;

use pagesim_mem::{
    AddressSpace, AsId, PageArena, PTES_PER_LINE, PTES_PER_REGION, PTES_PER_WORD,
    WORDS_PER_REGION,
};

/// Reference model: one (present, accessed) pair per page, mutated with
/// the plain-English semantics each `AddressSpace` method documents.
#[derive(Clone, Copy, Default)]
struct ModelPte {
    present: bool,
    accessed: bool,
}

/// A deliberately awkward page count: spans multiple regions, ends
/// mid-word and mid-line so the tail-clamping paths run every time.
const PAGES: u32 = 2 * PTES_PER_REGION as u32 + 3 * PTES_PER_WORD as u32 + 13;

fn check_mirror(space: &AddressSpace, model: &[ModelPte]) -> Result<(), String> {
    space
        .check_bitmap_coherence()
        .map_err(|e| format!("coherence: {e}"))?;
    for (vpn, m) in model.iter().enumerate() {
        let pte = space.pte(vpn as u32);
        prop_assert_eq!(pte.present(), m.present, "present mismatch at vpn {}", vpn);
        prop_assert_eq!(pte.accessed(), m.accessed, "accessed mismatch at vpn {}", vpn);
    }
    let resident = model.iter().filter(|m| m.present).count() as u32;
    prop_assert_eq!(space.resident_pages(), resident);
    Ok(())
}

proptest! {
    /// Random op soup: every mutator keeps the bitmaps, the region
    /// counters, and the PTE flags in lockstep with the model.
    #[test]
    fn bitmaps_mirror_ptes_under_random_ops(
        ops in prop::collection::vec((0u8..7, 0u32..PAGES), 1..400),
    ) {
        let mut arena = PageArena::new();
        let mut space = AddressSpace::new(AsId(0), PAGES, &mut arena);
        let mut model = vec![ModelPte::default(); PAGES as usize];

        for (op, vpn) in ops {
            let m = &mut model[vpn as usize];
            match op {
                0 => {
                    // Fault in (mapping an already-mapped page is a remap:
                    // hardware bits reset like a fresh install).
                    space.map(vpn, vpn);
                    *m = ModelPte { present: true, accessed: false };
                }
                1 => {
                    if m.present {
                        space.set_swapped(vpn, vpn);
                        *m = ModelPte::default();
                    }
                }
                2 => {
                    space.clear_mapping(vpn);
                    *m = ModelPte::default();
                }
                3 => {
                    if m.present {
                        space.mark_accessed(vpn, vpn % 2 == 0);
                        m.accessed = true;
                    }
                }
                4 => {
                    // rmap probe: returns exactly the model's accessed bit
                    // and clears it.
                    let was = space.test_and_clear_accessed(vpn);
                    prop_assert_eq!(was, m.accessed, "t&c at vpn {}", vpn);
                    m.accessed = false;
                }
                5 => {
                    if m.present {
                        space.set_dirty(vpn);
                    }
                }
                _ => {
                    // Aging-walk step over the region containing vpn: the
                    // harvested words must equal the model's accessed bits
                    // in ascending-vpn bit order, and clear them.
                    let region = space.region_containing(vpn);
                    let mut words = [0u64; WORDS_PER_REGION];
                    let examined = space.scan_region(region, &mut words);
                    let range = space.region_vpns(region);
                    prop_assert_eq!(examined, range.end - range.start);
                    let mut expect = [0u64; WORDS_PER_REGION];
                    for v in range.clone() {
                        if model[v as usize].accessed {
                            let off = (v - range.start) as usize;
                            expect[off / PTES_PER_WORD] |= 1 << (off % PTES_PER_WORD);
                        }
                    }
                    prop_assert_eq!(words, expect, "region {} scan mask", region);
                    for v in range {
                        model[v as usize].accessed = false;
                    }
                }
            }
            check_mirror(&space, &model)?;
        }
    }

    /// The spatial line probe is the per-PTE walk in miniature: for any
    /// state, `scan_line_mask(line)` returns exactly the bits a naive
    /// 8-PTE read-and-clear loop would, for every line in the space.
    #[test]
    fn line_masks_match_naive_walk(
        touched in prop::collection::vec((0u32..PAGES, any::<bool>()), 1..200),
    ) {
        let mut arena = PageArena::new();
        let mut space = AddressSpace::new(AsId(0), PAGES, &mut arena);
        let mut model = vec![ModelPte::default(); PAGES as usize];
        for (vpn, touch) in touched {
            space.map(vpn, vpn);
            model[vpn as usize] = ModelPte { present: true, accessed: false };
            if touch {
                space.mark_accessed(vpn, false);
                model[vpn as usize].accessed = true;
            }
        }
        for line in 0..space.lines() {
            let range = space.line_vpns(line);
            let mut expect = 0u8;
            for v in range.clone() {
                if model[v as usize].accessed {
                    expect |= 1 << (v - range.start);
                    model[v as usize].accessed = false;
                }
            }
            let (mask, examined) = space.scan_line_mask(line);
            prop_assert_eq!(mask, expect, "line {} mask", line);
            prop_assert_eq!(examined, range.end - range.start);
            prop_assert_eq!(
                examined,
                PTES_PER_LINE.min(PAGES as usize - range.start as usize) as u32
            );
        }
        // Everything harvested: a second pass over every line is all-zero
        // and the young counters agree.
        for line in 0..space.lines() {
            prop_assert_eq!(space.scan_line_mask(line).0, 0);
        }
        for region in 0..space.regions() {
            prop_assert_eq!(space.region_young_count(region), 0);
        }
        check_mirror(&space, &model)?;
    }

    /// `scan_region` visits set bits in ascending vpn order — the exact
    /// order the old per-PTE loop produced — when decoded with the same
    /// `trailing_zeros` idiom the consumers use.
    #[test]
    fn word_decode_order_is_ascending(
        touched in prop::collection::vec(0u32..PAGES, 1..128),
    ) {
        let mut arena = PageArena::new();
        let mut space = AddressSpace::new(AsId(0), PAGES, &mut arena);
        let mut expect: Vec<u32> = Vec::new();
        for &vpn in &touched {
            space.map(vpn, vpn);
            space.mark_accessed(vpn, false);
        }
        let mut sorted: Vec<u32> = touched.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut visited: Vec<u32> = Vec::new();
        for region in 0..space.regions() {
            let range = space.region_vpns(region);
            let mut words = [0u64; WORDS_PER_REGION];
            space.scan_region(region, &mut words);
            for (i, &word) in words.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let vpn =
                        range.start + i as u32 * PTES_PER_WORD as u32 + bits.trailing_zeros();
                    bits &= bits - 1;
                    visited.push(vpn);
                }
            }
            expect.extend(sorted.iter().copied().filter(|v| range.contains(v)));
        }
        prop_assert_eq!(visited, expect);
    }
}
