//! Negative test for the DEBUG_VM-style sanitizer: deliberately corrupted
//! frame accounting must trip the named invariant, and a healthy pool must
//! not.

#![cfg(feature = "sanitize")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use pagesim_mem::{PhysMem, Watermarks};

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

#[test]
fn healthy_pool_passes_through_lifecycle() {
    let mut pm = PhysMem::new(32, Watermarks::for_capacity(32));
    pm.check_invariants();
    let a = pm.allocate(3).expect("frames available");
    let b = pm.allocate(4).expect("frames available");
    pm.check_invariants();
    pm.begin_writeback(a);
    pm.check_invariants();
    pm.writeback_done(a);
    pm.free(b);
    pm.check_invariants();
}

#[test]
fn corrupted_frame_accounting_trips_named_invariant() {
    let mut pm = PhysMem::new(32, Watermarks::for_capacity(32));
    pm.allocate(3).expect("frames available");
    pm.check_invariants();
    pm.corrupt_frame_accounting_for_test();
    let payload = catch_unwind(AssertUnwindSafe(|| pm.check_invariants()))
        .expect_err("sanitizer must trip on a leaked frame");
    let msg = panic_message(payload);
    assert!(
        msg.contains("sanitize: frame-accounting"),
        "panic must name the violated invariant, got: {msg}"
    );
}
