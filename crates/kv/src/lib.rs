//! # pagesim-kv
//!
//! A memcached-like in-memory key-value store that lives inside a
//! *simulated* address space. It is the substrate for the paper's YCSB
//! experiments: the store does not hold real values — it maintains the
//! real *placement* data structures (a chained hash table plus slab-style
//! item allocation) and answers requests with the exact sequence of page
//! touches a real memcached would make, so the paging simulator above it
//! sees realistic access patterns.
//!
//! Layout within the address space (in pages):
//!
//! ```text
//! [ hash-table bucket pages | slab pages holding items ]
//! ```
//!
//! A GET touches the key's bucket page, then each item page along the
//! collision chain until the key matches. An UPDATE does the same and
//! writes the item's page(s). Values default to ~1.2 KiB, the per-item
//! footprint implied by the paper's setup (11 M items in 12–16 GB).
//!
//! ```rust
//! use pagesim_kv::{KvConfig, KvStore};
//! let store = KvStore::build(KvConfig { items: 1000, value_size: 1200, ..KvConfig::default() });
//! let plan = store.get_plan(42);
//! assert!(plan.touches.len() >= 2); // bucket page + item page(s)
//! assert!(!plan.touches[0].write);
//! ```


use pagesim_mem::{Vpn, PAGE_SIZE};

/// Configuration of a [`KvStore`].
#[derive(Clone, Copy, Debug)]
pub struct KvConfig {
    /// Number of items loaded into the cache.
    pub items: u32,
    /// Value size in bytes (key + metadata included).
    pub value_size: u32,
    /// Average items per hash bucket (controls chain length).
    pub load_factor: f64,
    /// Hash seed.
    pub seed: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            items: 100_000,
            value_size: 1200,
            load_factor: 1.0,
            seed: 0x5EED_CAFE,
        }
    }
}

/// One page touch in an access plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Touch {
    /// Virtual page touched.
    pub vpn: Vpn,
    /// Whether the touch is a store.
    pub write: bool,
}

/// The page touches and CPU work of one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessPlan {
    /// Ordered page touches.
    pub touches: Vec<Touch>,
    /// Base CPU cost in nanoseconds (hashing, memcmp, protocol work),
    /// excluding memory-access costs the simulator charges per touch.
    pub cpu_ns: u64,
}

/// Base CPU cost of serving one request (protocol parse + hash).
const REQUEST_CPU_NS: u64 = 120_000;
/// Extra CPU per chain element compared (memcmp of keys).
const CHAIN_CPU_NS: u64 = 400;

/// The store: item placement plus a real chained hash table.
#[derive(Debug)]
pub struct KvStore {
    cfg: KvConfig,
    buckets: Vec<Vec<u32>>, // bucket -> item ids (chain order)
    bucket_pages: u32,
    item_pages_each: u32,
    items_per_page: u32,
    total_pages: u32,
}

impl KvStore {
    /// Builds the store and "loads" all items (computes placement).
    ///
    /// # Panics
    ///
    /// Panics if `items == 0` or `value_size == 0`.
    pub fn build(cfg: KvConfig) -> KvStore {
        assert!(cfg.items > 0, "empty store");
        assert!(cfg.value_size > 0, "zero-size values");
        let nbuckets = ((cfg.items as f64 / cfg.load_factor).ceil() as u32).max(1);
        // 8 bytes per bucket head pointer.
        let bucket_pages = (nbuckets as u64 * 8).div_ceil(PAGE_SIZE as u64) as u32;
        let (items_per_page, item_pages_each) = if cfg.value_size as usize <= PAGE_SIZE {
            ((PAGE_SIZE as u32 / cfg.value_size).max(1), 1)
        } else {
            (1, (cfg.value_size as usize).div_ceil(PAGE_SIZE) as u32)
        };
        let slab_pages = if item_pages_each > 1 {
            cfg.items * item_pages_each
        } else {
            cfg.items.div_ceil(items_per_page)
        };

        let mut buckets = vec![Vec::new(); nbuckets as usize];
        for item in 0..cfg.items {
            let b = Self::hash(cfg.seed, item) % nbuckets as u64;
            buckets[b as usize].push(item);
        }

        KvStore {
            cfg,
            buckets,
            bucket_pages,
            item_pages_each,
            items_per_page,
            total_pages: bucket_pages + slab_pages,
        }
    }

    fn hash(seed: u64, item: u32) -> u64 {
        // fmix64 from MurmurHash3.
        let mut h = seed ^ (item as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        h
    }

    /// Total pages the store occupies (size the address space with this).
    pub fn total_pages(&self) -> u32 {
        self.total_pages
    }

    /// Pages used by the hash-table buckets.
    pub fn bucket_pages(&self) -> u32 {
        self.bucket_pages
    }

    /// Number of items.
    pub fn items(&self) -> u32 {
        self.cfg.items
    }

    fn bucket_of(&self, item: u32) -> u32 {
        (Self::hash(self.cfg.seed, item) % self.buckets.len() as u64) as u32
    }

    fn bucket_page(&self, bucket: u32) -> Vpn {
        (bucket as u64 * 8 / PAGE_SIZE as u64) as Vpn
    }

    /// First page of an item's value.
    pub fn item_page(&self, item: u32) -> Vpn {
        debug_assert!(item < self.cfg.items);
        if self.item_pages_each > 1 {
            self.bucket_pages + item * self.item_pages_each
        } else {
            self.bucket_pages + item / self.items_per_page
        }
    }

    fn plan(&self, item: u32, write: bool) -> AccessPlan {
        debug_assert!(item < self.cfg.items, "unknown item {item}");
        let bucket = self.bucket_of(item);
        let mut touches = vec![Touch {
            vpn: self.bucket_page(bucket),
            write: false,
        }];
        let mut cpu_ns = REQUEST_CPU_NS;
        // Walk the chain: every element before ours costs a page touch of
        // that item's header plus a key compare.
        for &chained in &self.buckets[bucket as usize] {
            cpu_ns += CHAIN_CPU_NS;
            if chained == item {
                break;
            }
            touches.push(Touch {
                vpn: self.item_page(chained),
                write: false,
            });
        }
        // Finally the item's own page(s).
        for p in 0..self.item_pages_each {
            touches.push(Touch {
                vpn: self.item_page(item) + p,
                write,
            });
        }
        AccessPlan { touches, cpu_ns }
    }

    /// Page touches for a GET of `item`.
    pub fn get_plan(&self, item: u32) -> AccessPlan {
        self.plan(item, false)
    }

    /// Page touches for an UPDATE of `item` (read-modify-write).
    pub fn update_plan(&self, item: u32) -> AccessPlan {
        self.plan(item, true)
    }

    /// Mean collision-chain length (diagnostics; should be ≈ load factor).
    pub fn mean_chain_len(&self) -> f64 {
        self.cfg.items as f64 / self.buckets.len() as f64
    }

    /// Longest collision chain (tail-latency contributor).
    pub fn max_chain_len(&self) -> usize {
        self.buckets.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> KvStore {
        KvStore::build(KvConfig {
            items: 10_000,
            value_size: 1200,
            load_factor: 1.0,
            seed: 42,
        })
    }

    #[test]
    fn layout_is_sized_correctly() {
        let s = small();
        // 10k buckets * 8B = 80kB -> 20 bucket pages
        assert_eq!(s.bucket_pages(), 20);
        // 3 items of 1200B per 4096B page -> ceil(10000/3) slab pages
        assert_eq!(s.total_pages(), 20 + 3334);
    }

    #[test]
    fn get_touches_bucket_then_item() {
        let s = small();
        let plan = s.get_plan(123);
        assert!(plan.touches.len() >= 2);
        assert!(plan.touches[0].vpn < s.bucket_pages(), "bucket page first");
        let last = plan.touches.last().unwrap();
        assert_eq!(last.vpn, s.item_page(123));
        assert!(!last.write);
        assert!(plan.cpu_ns >= REQUEST_CPU_NS);
    }

    #[test]
    fn update_writes_item_page_only() {
        let s = small();
        let plan = s.update_plan(7);
        let writes: Vec<_> = plan.touches.iter().filter(|t| t.write).collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].vpn, s.item_page(7));
        assert!(!plan.touches[0].write, "bucket page is never written");
    }

    #[test]
    fn chains_are_short_at_unit_load() {
        let s = small();
        assert!((s.mean_chain_len() - 1.0).abs() < 0.05);
        assert!(s.max_chain_len() < 12, "max chain {}", s.max_chain_len());
    }

    #[test]
    fn chain_position_affects_plan_length() {
        let s = small();
        // Find a bucket with >= 2 items; the second item's plan must touch
        // the first item's page on the way.
        let (bucket, chain) = s
            .buckets
            .iter()
            .enumerate()
            .find(|(_, c)| c.len() >= 2)
            .map(|(b, c)| (b as u32, c.clone()))
            .expect("10k items must collide somewhere");
        let first = chain[0];
        let second = chain[1];
        let p1 = s.get_plan(first);
        let p2 = s.get_plan(second);
        assert_eq!(p1.touches.len(), 2);
        assert_eq!(p2.touches.len(), 3);
        assert_eq!(p2.touches[1].vpn, s.item_page(first));
        assert_eq!(s.bucket_of(second), bucket);
        assert!(p2.cpu_ns > p1.cpu_ns);
    }

    #[test]
    fn multipage_values_touch_every_page() {
        let s = KvStore::build(KvConfig {
            items: 100,
            value_size: 10_000, // 3 pages
            load_factor: 1.0,
            seed: 1,
        });
        let plan = s.get_plan(50);
        let item_touches = plan
            .touches
            .iter()
            .filter(|t| t.vpn >= s.item_page(50) && t.vpn < s.item_page(50) + 3)
            .count();
        assert_eq!(item_touches, 3);
        assert_eq!(s.total_pages(), s.bucket_pages() + 300);
    }

    #[test]
    fn placement_is_deterministic() {
        let a = small();
        let b = small();
        for item in (0..10_000).step_by(997) {
            assert_eq!(a.get_plan(item), b.get_plan(item));
        }
    }

    #[test]
    fn all_items_fit_inside_declared_pages() {
        let s = small();
        for item in 0..s.items() {
            let plan = s.get_plan(item);
            for t in &plan.touches {
                assert!(t.vpn < s.total_pages(), "touch outside space");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty store")]
    fn zero_items_rejected() {
        KvStore::build(KvConfig {
            items: 0,
            ..KvConfig::default()
        });
    }
}
