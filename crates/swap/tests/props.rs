//! Property tests for the swap substrate.

use proptest::prelude::*;

use pagesim_engine::SimTime;
use pagesim_mem::EntropyClass;
use pagesim_swap::{compress, decompress, SlotAllocator, SwapDevice, ZramDevice};

proptest! {
    /// RLE compression round-trips arbitrary byte streams.
    #[test]
    fn rle_roundtrip(data in prop::collection::vec(any::<u8>(), 0..8192)) {
        let enc = compress(&data);
        prop_assert_eq!(decompress(&enc), data);
    }

    /// Compression never inflates beyond 2x (each run costs 2 bytes).
    #[test]
    fn rle_worst_case_bound(data in prop::collection::vec(any::<u8>(), 1..4096)) {
        prop_assert!(compress(&data).len() <= 2 * data.len());
    }

    /// Run-heavy data compresses.
    #[test]
    fn rle_compresses_runs(byte in any::<u8>(), len in 64usize..4096) {
        let data = vec![byte; len];
        prop_assert!(compress(&data).len() <= 2 * len.div_ceil(255));
    }

    /// The slot allocator never hands out the same live slot twice.
    #[test]
    fn slots_are_unique_while_live(ops in prop::collection::vec(any::<bool>(), 1..500)) {
        let mut a = SlotAllocator::new();
        let mut live = std::collections::HashSet::new();
        for alloc in ops {
            if alloc {
                let s = a.allocate();
                prop_assert!(live.insert(s), "slot {s} double-allocated");
            } else if let Some(&s) = live.iter().next() {
                live.remove(&s);
                a.release(s);
            }
            prop_assert_eq!(a.live() as usize, live.len());
        }
    }

    /// ZRAM pool accounting returns to zero when everything is released,
    /// for any write/release interleaving.
    #[test]
    fn zram_pool_balances(ops in prop::collection::vec((any::<bool>(), 0u8..4), 1..300)) {
        let mut z = ZramDevice::with_paper_costs();
        let mut live: Vec<u32> = Vec::new();
        let classes = [
            EntropyClass::Zero,
            EntropyClass::Text,
            EntropyClass::Structured,
            EntropyClass::Random,
        ];
        for (write, class) in ops {
            if write {
                let slot = z.allocate_slot();
                z.write(SimTime::ZERO, slot, classes[class as usize])
                    .expect("unbounded pool accepts every write");
                live.push(slot);
            } else if let Some(slot) = live.pop() {
                z.release(slot);
            }
        }
        for slot in live.drain(..) {
            z.release(slot);
        }
        prop_assert_eq!(z.used_bytes(), 0, "pool leaked");
    }
}
