//! Swap device models.

use pagesim_engine::faults::{FaultInjector, IoError};
use pagesim_engine::{Nanos, QueuedDevice, SimTime, MICROSECOND, MILLISECOND};

use pagesim_mem::{EntropyClass, PAGE_SIZE};

use crate::compress::CompressionModel;
use crate::slots::{SlotAllocator, SwapSlot};

/// Which medium a device models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwapKind {
    /// Asynchronous block storage with a request queue.
    Ssd,
    /// Compressed RAM; synchronous CPU-bound operations.
    Zram,
}

/// Cost of one swap operation, split the way the simulator charges it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IoOutcome {
    /// CPU time charged to the calling thread (fault/reclaim path,
    /// compression work).
    pub cpu_ns: Nanos,
    /// Instant the operation's data is available (read) or durable
    /// (write). For CPU-bound media this is `now + cpu_ns`; for queued
    /// media it includes queueing delay.
    pub done_at: SimTime,
}

/// A failed device operation: the error plus the CPU the attempt still
/// consumed on the calling thread (submit bookkeeping, the attempted
/// compression). A rejected ZRAM write costs the same CPU as storing the
/// page uncompressed would — the compressor ran, the result was discarded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FailedIo {
    /// Why the operation failed.
    pub error: IoError,
    /// CPU charged to the caller despite the failure.
    pub cpu_ns: Nanos,
}

/// Result of a fallible swap operation.
pub type SwapResult = Result<IoOutcome, FailedIo>;

/// Aggregate device counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SwapStats {
    /// 4 KiB reads served (swap-ins).
    pub reads: u64,
    /// 4 KiB writes served (swap-outs).
    pub writes: u64,
    /// Total time read requests spent queued (SSD only).
    pub read_queue_ns: Nanos,
    /// Total time write requests spent queued (SSD only).
    pub write_queue_ns: Nanos,
    /// Operations rejected with an injected I/O error.
    pub io_errors: u64,
    /// ZRAM writes rejected because the compressed pool was at capacity.
    pub pool_rejections: u64,
    /// Total delay added by injected device-stall windows.
    pub stall_delay_ns: Nanos,
}

/// A swap medium: allocates slots, stores/loads pages, reports costs.
///
/// The two implementations differ in *where* the cost lands, which is the
/// crux of the paper's §V-D/§VI-B findings: SSD costs are mostly
/// asynchronous wait, ZRAM costs are synchronous CPU work.
///
/// All I/O methods are fallible: a device carrying a fault plan can reject
/// an operation with a typed error ([`FailedIo`]), and a bounded ZRAM pool
/// rejects writes at capacity. Devices without faults never fail.
pub trait SwapDevice {
    /// Medium kind.
    fn kind(&self) -> SwapKind;
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
    /// Allocates a slot for an outgoing page.
    fn allocate_slot(&mut self) -> SwapSlot;
    /// Writes a page (swap-out). The page's entropy class drives
    /// compression accounting on ZRAM.
    fn write(&mut self, now: SimTime, slot: SwapSlot, class: EntropyClass) -> SwapResult;
    /// Reads a page back (swap-in).
    fn read(&mut self, now: SimTime, slot: SwapSlot) -> SwapResult;
    /// Releases a slot after its page is read back in and remapped.
    fn release(&mut self, slot: SwapSlot);
    /// Reads one page of a backing file. Files live on the same simulated
    /// device as swap (a documented substitution — the simulator has one
    /// storage device).
    fn file_read(&mut self, now: SimTime) -> SwapResult;
    /// Writes back one dirty file page.
    fn file_write(&mut self, now: SimTime) -> SwapResult;
    /// Bytes currently stored (compressed bytes for ZRAM, slot bytes for
    /// SSD).
    fn used_bytes(&self) -> u64;
    /// How long the device needs to drain its current queue, from `now`.
    /// Zero for synchronous media. Used for write-back throttling.
    fn backlog(&self, now: SimTime) -> pagesim_engine::Nanos;
    /// Counters.
    fn stats(&self) -> SwapStats;
    /// Sanitize probe: whether `slot` currently holds written page data
    /// (allocated, written, not yet released).
    #[cfg(feature = "sanitize")]
    fn sanitize_slot_stored(&self, slot: SwapSlot) -> bool;
    /// Sanitize sweep: verifies the device's internal slot/pool accounting
    /// and returns the live slot count for kernel-side cross-checks.
    ///
    /// # Panics
    ///
    /// Panics with a `sanitize: swap-slot:` message on any inconsistency.
    #[cfg(feature = "sanitize")]
    fn sanitize_check(&self) -> u64;
}

/// SSD swap: a FIFO request queue in front of `parallelism` flash channels.
///
/// The default service time reproduces the paper's measured ~7.5 ms for a
/// loaded 4 KiB operation.
#[derive(Debug)]
pub struct SsdDevice {
    queue: QueuedDevice,
    slots: SlotAllocator,
    stored: std::collections::HashMap<SwapSlot, EntropyClass>,
    read_service: Nanos,
    write_service: Nanos,
    submit_cpu: Nanos,
    stats: SwapStats,
}

impl SsdDevice {
    /// Creates an SSD with explicit service times and parallelism.
    pub fn new(read_service: Nanos, write_service: Nanos, parallelism: usize) -> Self {
        SsdDevice {
            queue: QueuedDevice::new(parallelism),
            slots: SlotAllocator::new(),
            stored: std::collections::HashMap::new(),
            read_service,
            write_service,
            submit_cpu: 2 * MICROSECOND,
            stats: SwapStats::default(),
        }
    }

    /// The paper's SSD: ~7.5 ms per 4 KiB read and write under load.
    /// Modeled as 7.5 ms service at the device with two channels.
    pub fn with_paper_costs() -> Self {
        Self::new(7 * MILLISECOND + 500 * MICROSECOND, 7 * MILLISECOND + 500 * MICROSECOND, 2)
    }

    /// Attaches a fault injector to the device queue.
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.queue.set_faults(injector);
        self
    }

    fn fail(&mut self, error: IoError) -> FailedIo {
        self.stats.io_errors += 1;
        FailedIo {
            error,
            cpu_ns: self.submit_cpu,
        }
    }
}

impl SwapDevice for SsdDevice {
    fn kind(&self) -> SwapKind {
        SwapKind::Ssd
    }

    fn name(&self) -> &'static str {
        "ssd"
    }

    fn allocate_slot(&mut self) -> SwapSlot {
        self.slots.allocate()
    }

    fn write(&mut self, now: SimTime, slot: SwapSlot, class: EntropyClass) -> SwapResult {
        let done_at = match self.queue.submit(now, self.write_service) {
            Ok(t) => t,
            Err(e) => return Err(self.fail(e)),
        };
        self.stored.insert(slot, class);
        self.stats.writes += 1;
        self.stats.write_queue_ns += done_at.saturating_since(now) - self.write_service;
        Ok(IoOutcome {
            cpu_ns: self.submit_cpu,
            done_at,
        })
    }

    fn read(&mut self, now: SimTime, slot: SwapSlot) -> SwapResult {
        debug_assert!(self.stored.contains_key(&slot), "read of empty slot");
        let done_at = match self.queue.submit(now, self.read_service) {
            Ok(t) => t,
            Err(e) => return Err(self.fail(e)),
        };
        self.stats.reads += 1;
        self.stats.read_queue_ns += done_at.saturating_since(now) - self.read_service;
        Ok(IoOutcome {
            cpu_ns: self.submit_cpu,
            done_at,
        })
    }

    fn release(&mut self, slot: SwapSlot) {
        self.stored.remove(&slot);
        self.slots.release(slot);
    }

    fn file_read(&mut self, now: SimTime) -> SwapResult {
        let done_at = match self.queue.submit(now, self.read_service) {
            Ok(t) => t,
            Err(e) => return Err(self.fail(e)),
        };
        self.stats.reads += 1;
        self.stats.read_queue_ns += done_at.saturating_since(now) - self.read_service;
        Ok(IoOutcome {
            cpu_ns: self.submit_cpu,
            done_at,
        })
    }

    fn file_write(&mut self, now: SimTime) -> SwapResult {
        let done_at = match self.queue.submit(now, self.write_service) {
            Ok(t) => t,
            Err(e) => return Err(self.fail(e)),
        };
        self.stats.writes += 1;
        self.stats.write_queue_ns += done_at.saturating_since(now) - self.write_service;
        Ok(IoOutcome {
            cpu_ns: self.submit_cpu,
            done_at,
        })
    }

    fn used_bytes(&self) -> u64 {
        self.slots.live() * PAGE_SIZE as u64
    }

    fn backlog(&self, now: SimTime) -> Nanos {
        self.queue.drained_at().saturating_since(now)
    }

    fn stats(&self) -> SwapStats {
        SwapStats {
            stall_delay_ns: self.queue.fault_stats().stall_delay_ns,
            ..self.stats
        }
    }

    #[cfg(feature = "sanitize")]
    fn sanitize_slot_stored(&self, slot: SwapSlot) -> bool {
        self.stored.contains_key(&slot)
    }

    #[cfg(feature = "sanitize")]
    fn sanitize_check(&self) -> u64 {
        let live = self.slots.check_invariants();
        assert_eq!(
            self.stored.len() as u64,
            live,
            "sanitize: swap-slot: ssd stores {} slots but {} are live",
            self.stored.len(),
            live
        );
        live
    }
}

/// ZRAM swap: compressed RAM. All cost is CPU time on the calling thread;
/// pool usage is tracked with real per-class compressed sizes. The pool may
/// be bounded ([`with_capacity`](ZramDevice::with_capacity)): writes that
/// would exceed the bound are rejected with [`IoError::PoolFull`], charging
/// the same CPU as a successful (uncompressed) store.
#[derive(Debug)]
pub struct ZramDevice {
    slots: SlotAllocator,
    stored: std::collections::HashMap<SwapSlot, usize>,
    model: CompressionModel,
    read_cpu: Nanos,
    write_cpu: Nanos,
    pool_bytes: u64,
    pool_high_water: u64,
    capacity: Option<u64>,
    faults: Option<FaultInjector>,
    stats: SwapStats,
}

impl ZramDevice {
    /// Creates a ZRAM device with explicit per-op CPU costs.
    pub fn new(read_cpu: Nanos, write_cpu: Nanos) -> Self {
        ZramDevice {
            slots: SlotAllocator::new(),
            stored: std::collections::HashMap::new(),
            model: CompressionModel::build(),
            read_cpu,
            write_cpu,
            pool_bytes: 0,
            pool_high_water: 0,
            capacity: None,
            faults: None,
            stats: SwapStats::default(),
        }
    }

    /// The paper's ZRAM with LZO-RLE: 20 µs reads, 35 µs writes.
    pub fn with_paper_costs() -> Self {
        Self::new(20 * MICROSECOND, 35 * MICROSECOND)
    }

    /// Bounds the compressed pool to `bytes`; writes that would exceed the
    /// bound are rejected.
    pub fn with_capacity(mut self, bytes: u64) -> Self {
        self.capacity = Some(bytes);
        self
    }

    /// Attaches a fault injector (error rolls only — ZRAM is synchronous,
    /// so stall windows do not apply).
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.faults = Some(injector);
        self
    }

    /// Peak compressed-pool usage over the device's lifetime.
    pub fn pool_high_water(&self) -> u64 {
        self.pool_high_water
    }

    /// The configured pool bound, if any.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// The compression model in use.
    pub fn compression(&self) -> &CompressionModel {
        &self.model
    }

    fn check_faults(&mut self, now: SimTime, cpu_ns: Nanos) -> Result<(), FailedIo> {
        if let Some(f) = self.faults.as_mut() {
            if let Err(error) = f.check(now) {
                self.stats.io_errors += 1;
                return Err(FailedIo { error, cpu_ns });
            }
        }
        Ok(())
    }
}

impl SwapDevice for ZramDevice {
    fn kind(&self) -> SwapKind {
        SwapKind::Zram
    }

    fn name(&self) -> &'static str {
        "zram"
    }

    fn allocate_slot(&mut self) -> SwapSlot {
        self.slots.allocate()
    }

    fn write(&mut self, now: SimTime, slot: SwapSlot, class: EntropyClass) -> SwapResult {
        self.check_faults(now, self.write_cpu)?;
        let size = self.model.stored_size(class);
        let replaced = self.stored.get(&slot).copied().unwrap_or(0) as u64;
        let new_pool = self.pool_bytes - replaced + size as u64;
        if let Some(cap) = self.capacity {
            if new_pool > cap {
                // Pool exhausted: the write is rejected. The compression
                // attempt still cost a full write's CPU.
                self.stats.io_errors += 1;
                self.stats.pool_rejections += 1;
                return Err(FailedIo {
                    error: IoError::PoolFull,
                    cpu_ns: self.write_cpu,
                });
            }
        }
        self.stored.insert(slot, size);
        self.pool_bytes = new_pool;
        self.pool_high_water = self.pool_high_water.max(self.pool_bytes);
        self.stats.writes += 1;
        Ok(IoOutcome {
            cpu_ns: self.write_cpu,
            done_at: now + self.write_cpu,
        })
    }

    fn read(&mut self, now: SimTime, slot: SwapSlot) -> SwapResult {
        debug_assert!(self.stored.contains_key(&slot), "read of empty slot");
        self.check_faults(now, self.read_cpu)?;
        self.stats.reads += 1;
        Ok(IoOutcome {
            cpu_ns: self.read_cpu,
            done_at: now + self.read_cpu,
        })
    }

    fn release(&mut self, slot: SwapSlot) {
        if let Some(size) = self.stored.remove(&slot) {
            self.pool_bytes -= size as u64;
        }
        self.slots.release(slot);
    }

    fn file_read(&mut self, now: SimTime) -> SwapResult {
        // Files are not in ZRAM; charge a ZRAM-speed read as the closest
        // single-device model (see trait docs).
        self.check_faults(now, self.read_cpu)?;
        self.stats.reads += 1;
        Ok(IoOutcome {
            cpu_ns: self.read_cpu,
            done_at: now + self.read_cpu,
        })
    }

    fn file_write(&mut self, now: SimTime) -> SwapResult {
        self.check_faults(now, self.write_cpu)?;
        self.stats.writes += 1;
        Ok(IoOutcome {
            cpu_ns: self.write_cpu,
            done_at: now + self.write_cpu,
        })
    }

    fn used_bytes(&self) -> u64 {
        self.pool_bytes
    }

    fn backlog(&self, _now: SimTime) -> Nanos {
        0
    }

    fn stats(&self) -> SwapStats {
        self.stats
    }

    #[cfg(feature = "sanitize")]
    fn sanitize_slot_stored(&self, slot: SwapSlot) -> bool {
        self.stored.contains_key(&slot)
    }

    #[cfg(feature = "sanitize")]
    fn sanitize_check(&self) -> u64 {
        let live = self.slots.check_invariants();
        assert_eq!(
            self.stored.len() as u64,
            live,
            "sanitize: swap-slot: zram stores {} slots but {} are live",
            self.stored.len(),
            live
        );
        // lint: allow(hash-iter) order-independent sum over stored sizes
        let stored_bytes: u64 = self.stored.values().map(|&s| s as u64).sum();
        assert_eq!(
            self.pool_bytes, stored_bytes,
            "sanitize: swap-slot: zram pool counter {} vs {} bytes actually stored",
            self.pool_bytes, stored_bytes
        );
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagesim_engine::faults::FaultPlan;

    #[test]
    fn ssd_costs_are_queued() {
        let mut ssd = SsdDevice::new(100, 100, 1);
        let t0 = SimTime::ZERO;
        let slot_a = ssd.allocate_slot();
        let a = ssd.write(t0, slot_a, EntropyClass::Text).unwrap();
        let slot_b = ssd.allocate_slot();
        ssd.write(t0, slot_b, EntropyClass::Text).unwrap();
        let b = ssd.read(t0, slot_b).unwrap();
        assert_eq!(a.done_at.as_ns(), 100);
        // read waits behind two writes: this is the §VI-A pile-up behaviour
        assert_eq!(b.done_at.as_ns(), 300);
        let st = ssd.stats();
        assert_eq!(st.writes, 2);
        assert_eq!(st.reads, 1);
        assert_eq!(st.read_queue_ns, 200);
    }

    #[test]
    fn ssd_paper_costs_land_at_7_5ms() {
        let mut ssd = SsdDevice::with_paper_costs();
        let s = ssd.allocate_slot();
        let w = ssd.write(SimTime::ZERO, s, EntropyClass::Text).unwrap();
        assert_eq!(w.done_at.as_ns(), 7_500_000);
    }

    #[test]
    fn zram_costs_are_cpu_bound() {
        let mut z = ZramDevice::with_paper_costs();
        let s = z.allocate_slot();
        let w = z.write(SimTime::from_ns(1000), s, EntropyClass::Text).unwrap();
        assert_eq!(w.cpu_ns, 35_000);
        assert_eq!(w.done_at.as_ns(), 1000 + 35_000);
        let r = z.read(SimTime::from_ns(50_000), s).unwrap();
        assert_eq!(r.cpu_ns, 20_000);
        assert_eq!(r.done_at.as_ns(), 70_000);
    }

    #[test]
    fn zram_pool_accounting_tracks_entropy() {
        let mut z = ZramDevice::with_paper_costs();
        let s1 = z.allocate_slot();
        let s2 = z.allocate_slot();
        z.write(SimTime::ZERO, s1, EntropyClass::Random).unwrap();
        let after_random = z.used_bytes();
        z.write(SimTime::ZERO, s2, EntropyClass::Zero).unwrap();
        let after_zero = z.used_bytes() - after_random;
        assert!(after_random > PAGE_SIZE as u64, "raw + header");
        assert!(after_zero < 64, "zero page nearly free: {after_zero}");
        z.release(s1);
        z.release(s2);
        assert_eq!(z.used_bytes(), 0);
        assert!(z.pool_high_water() >= after_random);
    }

    #[test]
    fn ssd_used_bytes_counts_slots() {
        let mut ssd = SsdDevice::new(10, 10, 1);
        let s = ssd.allocate_slot();
        ssd.write(SimTime::ZERO, s, EntropyClass::Random).unwrap();
        assert_eq!(ssd.used_bytes(), PAGE_SIZE as u64);
        ssd.release(s);
        assert_eq!(ssd.used_bytes(), 0);
    }

    #[test]
    fn rewrite_same_slot_replaces_bytes() {
        let mut z = ZramDevice::with_paper_costs();
        let s = z.allocate_slot();
        z.write(SimTime::ZERO, s, EntropyClass::Random).unwrap();
        let big = z.used_bytes();
        z.write(SimTime::ZERO, s, EntropyClass::Zero).unwrap();
        assert!(z.used_bytes() < big);
    }

    #[test]
    fn kinds_and_names() {
        assert_eq!(SsdDevice::with_paper_costs().kind(), SwapKind::Ssd);
        assert_eq!(ZramDevice::with_paper_costs().kind(), SwapKind::Zram);
        assert_eq!(SsdDevice::with_paper_costs().name(), "ssd");
        assert_eq!(ZramDevice::with_paper_costs().name(), "zram");
    }

    #[test]
    fn bounded_pool_rejects_at_capacity_and_high_water_respects_bound() {
        // Random pages store PAGE_SIZE + header each; cap the pool at two.
        let per_page = CompressionModel::build().stored_size(EntropyClass::Random) as u64;
        let cap = 2 * per_page;
        let mut z = ZramDevice::with_paper_costs().with_capacity(cap);
        let s1 = z.allocate_slot();
        let s2 = z.allocate_slot();
        let s3 = z.allocate_slot();
        z.write(SimTime::ZERO, s1, EntropyClass::Random).unwrap();
        z.write(SimTime::ZERO, s2, EntropyClass::Random).unwrap();
        let rejected = z.write(SimTime::ZERO, s3, EntropyClass::Random).unwrap_err();
        assert_eq!(rejected.error, IoError::PoolFull);
        // The failed compression still costs a full write of CPU.
        assert_eq!(rejected.cpu_ns, 35_000);
        assert!(z.pool_high_water() <= cap, "high water exceeded capacity");
        assert_eq!(z.stats().pool_rejections, 1);
        assert_eq!(z.stats().io_errors, 1);
        assert_eq!(z.stats().writes, 2, "rejected write must not count");
        // Once space is released, a small page fits again.
        z.release(s1);
        z.write(SimTime::ZERO, s3, EntropyClass::Zero).unwrap();
        assert!(z.pool_high_water() <= cap);
    }

    #[test]
    fn unbounded_pool_never_rejects() {
        let mut z = ZramDevice::with_paper_costs();
        for _ in 0..64 {
            let s = z.allocate_slot();
            z.write(SimTime::ZERO, s, EntropyClass::Random).unwrap();
        }
        assert_eq!(z.stats().pool_rejections, 0);
    }

    #[test]
    fn ssd_with_permanent_failure_errors_and_counts() {
        let mut ssd = SsdDevice::new(100, 100, 1).with_faults(FaultInjector::new(
            FaultPlan {
                fail_permanently_at: Some(0),
                ..FaultPlan::none()
            },
            7,
        ));
        let s = ssd.allocate_slot();
        let err = ssd.write(SimTime::ZERO, s, EntropyClass::Text).unwrap_err();
        assert_eq!(err.error, IoError::Permanent);
        assert_eq!(err.cpu_ns, 2 * MICROSECOND);
        assert_eq!(ssd.stats().io_errors, 1);
        assert_eq!(ssd.stats().writes, 0, "failed write must not count");
    }

    #[test]
    fn zram_with_error_rate_one_rejects_reads() {
        let mut z = ZramDevice::with_paper_costs();
        let s = z.allocate_slot();
        z.write(SimTime::ZERO, s, EntropyClass::Text).unwrap();
        let mut z = ZramDevice::with_paper_costs().with_faults(FaultInjector::new(
            FaultPlan {
                error_rate: 1.0,
                ..FaultPlan::none()
            },
            7,
        ));
        let s = z.allocate_slot();
        let err = z.write(SimTime::ZERO, s, EntropyClass::Text).unwrap_err();
        assert_eq!(err.error, IoError::Transient);
        assert_eq!(z.stats().io_errors, 1);
    }
}
