//! Byte-RLE page compression.
//!
//! ZRAM in the paper uses LZO-RLE. On the synthetic page contents this
//! simulator generates, the run-length stage dominates, so we implement a
//! real byte-RLE codec and derive per-class compression ratios by actually
//! compressing representative 4 KiB pages. Incompressible pages are stored
//! raw plus a header, exactly like zram does.

use pagesim_mem::{EntropyClass, PAGE_SIZE};

/// Encoded-stream tokens: `(run_len, byte)` pairs, `run_len` in `1..=255`.
const MAX_RUN: usize = 255;

/// Compresses `input` with byte-level run-length encoding.
///
/// The output alternates `[len, byte]` pairs. Compression is effective
/// whenever average run length exceeds 2.
///
/// ```rust
/// use pagesim_swap::{compress, decompress};
/// let data = vec![7u8; 1000];
/// let enc = compress(&data);
/// assert!(enc.len() < 20);
/// assert_eq!(decompress(&enc), data);
/// ```
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4);
    let mut i = 0;
    while i < input.len() {
        let byte = input[i];
        let mut run = 1;
        while i + run < input.len() && input[i + run] == byte && run < MAX_RUN {
            run += 1;
        }
        out.push(run as u8);
        out.push(byte);
        i += run;
    }
    out
}

/// Inverse of [`compress`].
///
/// # Panics
///
/// Panics if the stream is malformed (odd length or zero-length run).
pub fn decompress(encoded: &[u8]) -> Vec<u8> {
    assert!(encoded.len().is_multiple_of(2), "malformed RLE stream");
    let mut out = Vec::with_capacity(encoded.len() * 4);
    for pair in encoded.chunks_exact(2) {
        let (len, byte) = (pair[0], pair[1]);
        assert!(len > 0, "zero-length run");
        out.extend(std::iter::repeat_n(byte, len as usize));
    }
    out
}

/// Generates a representative 4 KiB page for an entropy class.
///
/// The generator is deterministic in `seed` so compression ratios are
/// stable across runs. Run-length structure per class:
///
/// * `Zero` — all zeroes.
/// * `Text` — word-like runs of 6–14 identical bytes (≈4:1 under RLE).
/// * `Structured` — record-like runs of 3–7 bytes (≈2.5:1).
/// * `Random` — no runs; incompressible.
pub fn page_for_class(class: EntropyClass, seed: u64) -> Vec<u8> {
    let mut page = Vec::with_capacity(PAGE_SIZE);
    let mut state = seed | 1;
    let mut next = || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    match class {
        EntropyClass::Zero => page.resize(PAGE_SIZE, 0),
        EntropyClass::Text => {
            while page.len() < PAGE_SIZE {
                let r = next();
                let run = 6 + (r % 9) as usize; // 6..=14
                let byte = (r >> 32) as u8;
                let run = run.min(PAGE_SIZE - page.len());
                page.extend(std::iter::repeat_n(byte, run));
            }
        }
        EntropyClass::Structured => {
            while page.len() < PAGE_SIZE {
                let r = next();
                let run = 3 + (r % 5) as usize; // 3..=7
                let byte = (r >> 32) as u8;
                let run = run.min(PAGE_SIZE - page.len());
                page.extend(std::iter::repeat_n(byte, run));
            }
        }
        EntropyClass::Random => {
            while page.len() < PAGE_SIZE {
                page.push((next() >> 24) as u8);
            }
        }
    }
    page
}

/// Per-slot storage overhead for raw (incompressible) pages, matching
/// zram's object header.
const RAW_HEADER: usize = 16;

/// Cached per-class compressed sizes, derived by running the real codec on
/// representative pages. Used by [`ZramDevice`](crate::ZramDevice) for
/// pool-capacity accounting without compressing on every swap-out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressionModel {
    sizes: [usize; 4],
}

impl CompressionModel {
    /// Builds the model by compressing one representative page per class.
    pub fn build() -> CompressionModel {
        let mut sizes = [0usize; 4];
        for (i, class) in [
            EntropyClass::Zero,
            EntropyClass::Text,
            EntropyClass::Structured,
            EntropyClass::Random,
        ]
        .into_iter()
        .enumerate()
        {
            let page = page_for_class(class, 0x5EED_0000 + i as u64);
            let encoded = compress(&page);
            // zram stores pages that don't compress as raw + header.
            sizes[i] = encoded.len().clamp(2, PAGE_SIZE + RAW_HEADER);
            if encoded.len() >= PAGE_SIZE {
                sizes[i] = PAGE_SIZE + RAW_HEADER;
            }
        }
        CompressionModel { sizes }
    }

    /// Stored bytes for one page of the given class.
    pub fn stored_size(&self, class: EntropyClass) -> usize {
        self.sizes[class as usize]
    }

    /// Compression ratio (original / stored) for a class.
    pub fn ratio(&self, class: EntropyClass) -> f64 {
        PAGE_SIZE as f64 / self.stored_size(class) as f64
    }
}

impl Default for CompressionModel {
    fn default() -> Self {
        Self::build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_classes() {
        for class in [
            EntropyClass::Zero,
            EntropyClass::Text,
            EntropyClass::Structured,
            EntropyClass::Random,
        ] {
            let page = page_for_class(class, 42);
            assert_eq!(page.len(), PAGE_SIZE);
            let enc = compress(&page);
            assert_eq!(decompress(&enc), page, "roundtrip failed for {class:?}");
        }
    }

    #[test]
    fn ratios_are_ordered_by_entropy() {
        let m = CompressionModel::build();
        assert!(m.ratio(EntropyClass::Zero) > m.ratio(EntropyClass::Text));
        assert!(m.ratio(EntropyClass::Text) > m.ratio(EntropyClass::Structured));
        assert!(m.ratio(EntropyClass::Structured) > m.ratio(EntropyClass::Random));
    }

    #[test]
    fn text_ratio_is_lzo_like() {
        // LZO-RLE on textual datacenter pages lands around 3-5x.
        let m = CompressionModel::build();
        let r = m.ratio(EntropyClass::Text);
        assert!((3.0..6.0).contains(&r), "text ratio {r}");
        let r = m.ratio(EntropyClass::Structured);
        assert!((2.0..3.5).contains(&r), "structured ratio {r}");
    }

    #[test]
    fn random_pages_are_stored_raw() {
        let m = CompressionModel::build();
        assert_eq!(m.stored_size(EntropyClass::Random), PAGE_SIZE + RAW_HEADER);
        assert!(m.ratio(EntropyClass::Random) < 1.0);
    }

    #[test]
    fn zero_page_compresses_to_nothing() {
        let enc = compress(&page_for_class(EntropyClass::Zero, 1));
        assert!(enc.len() <= 34); // ceil(4096/255) pairs
    }

    #[test]
    fn empty_input() {
        assert!(compress(&[]).is_empty());
        assert!(decompress(&[]).is_empty());
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(
            page_for_class(EntropyClass::Text, 7),
            page_for_class(EntropyClass::Text, 7)
        );
        assert_ne!(
            page_for_class(EntropyClass::Text, 7),
            page_for_class(EntropyClass::Text, 8)
        );
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn odd_stream_rejected() {
        decompress(&[3]);
    }

    #[test]
    fn compress_respects_max_run() {
        let data = vec![9u8; 1000];
        let enc = compress(&data);
        // ceil(1000/255) = 4 runs
        assert_eq!(enc.len(), 8);
        assert_eq!(decompress(&enc).len(), 1000);
    }
}
