//! Swap-slot allocation.

/// Identifies a 4 KiB slot on a swap device.
pub type SwapSlot = u32;

/// A free-list slot allocator.
///
/// Slots are recycled LIFO so long runs keep hitting the same device
/// region, and allocation is O(1).
///
/// ```rust
/// use pagesim_swap::SlotAllocator;
/// let mut a = SlotAllocator::new();
/// let s0 = a.allocate();
/// let s1 = a.allocate();
/// assert_ne!(s0, s1);
/// a.release(s0);
/// assert_eq!(a.allocate(), s0); // recycled
/// ```
#[derive(Debug, Default)]
pub struct SlotAllocator {
    next_fresh: SwapSlot,
    free: Vec<SwapSlot>,
    live: u64,
}

impl SlotAllocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a slot.
    pub fn allocate(&mut self) -> SwapSlot {
        self.live += 1;
        if let Some(s) = self.free.pop() {
            s
        } else {
            let s = self.next_fresh;
            self.next_fresh += 1;
            s
        }
    }

    /// Releases a slot for reuse.
    pub fn release(&mut self, slot: SwapSlot) {
        debug_assert!(slot < self.next_fresh, "releasing unallocated slot");
        self.live -= 1;
        self.free.push(slot);
    }

    /// Slots currently in use.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// High-water mark of distinct slots ever allocated.
    pub fn high_water(&self) -> u32 {
        self.next_fresh
    }
}

/// DEBUG_VM-style slot-accounting sanitizer (the `sanitize` feature).
#[cfg(feature = "sanitize")]
impl SlotAllocator {
    /// Verifies the **swap-slot** accounting invariant: every slot ever
    /// minted is either live or on the free list, exactly once. Returns
    /// the live count for cross-checks against kernel-side references.
    ///
    /// # Panics
    ///
    /// Panics with a `sanitize: swap-slot:` message on any inconsistency.
    pub fn check_invariants(&self) -> u64 {
        let mut on_free = vec![false; self.next_fresh as usize];
        for &s in &self.free {
            assert!(
                s < self.next_fresh,
                "sanitize: swap-slot: freed slot {s} was never allocated (high water {})",
                self.next_fresh
            );
            assert!(
                !on_free[s as usize],
                "sanitize: swap-slot: slot {s} on the free list twice"
            );
            on_free[s as usize] = true;
        }
        assert_eq!(
            self.live,
            self.next_fresh as u64 - self.free.len() as u64,
            "sanitize: swap-slot: live count {} vs {} minted - {} free",
            self.live,
            self.next_fresh,
            self.free.len()
        );
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_slots_are_sequential() {
        let mut a = SlotAllocator::new();
        assert_eq!(a.allocate(), 0);
        assert_eq!(a.allocate(), 1);
        assert_eq!(a.allocate(), 2);
        assert_eq!(a.live(), 3);
        assert_eq!(a.high_water(), 3);
    }

    #[test]
    fn release_recycles_lifo() {
        let mut a = SlotAllocator::new();
        let s0 = a.allocate();
        let s1 = a.allocate();
        a.release(s0);
        a.release(s1);
        assert_eq!(a.allocate(), s1);
        assert_eq!(a.allocate(), s0);
        assert_eq!(a.high_water(), 2);
    }

    #[test]
    fn live_count_tracks() {
        let mut a = SlotAllocator::new();
        let s = a.allocate();
        assert_eq!(a.live(), 1);
        a.release(s);
        assert_eq!(a.live(), 0);
    }
}
