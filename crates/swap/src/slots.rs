//! Swap-slot allocation.

/// Identifies a 4 KiB slot on a swap device.
pub type SwapSlot = u32;

/// A free-list slot allocator.
///
/// Slots are recycled LIFO so long runs keep hitting the same device
/// region, and allocation is O(1).
///
/// ```rust
/// use pagesim_swap::SlotAllocator;
/// let mut a = SlotAllocator::new();
/// let s0 = a.allocate();
/// let s1 = a.allocate();
/// assert_ne!(s0, s1);
/// a.release(s0);
/// assert_eq!(a.allocate(), s0); // recycled
/// ```
#[derive(Debug, Default)]
pub struct SlotAllocator {
    next_fresh: SwapSlot,
    free: Vec<SwapSlot>,
    live: u64,
}

impl SlotAllocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a slot.
    pub fn allocate(&mut self) -> SwapSlot {
        self.live += 1;
        if let Some(s) = self.free.pop() {
            s
        } else {
            let s = self.next_fresh;
            self.next_fresh += 1;
            s
        }
    }

    /// Releases a slot for reuse.
    pub fn release(&mut self, slot: SwapSlot) {
        debug_assert!(slot < self.next_fresh, "releasing unallocated slot");
        self.live -= 1;
        self.free.push(slot);
    }

    /// Slots currently in use.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// High-water mark of distinct slots ever allocated.
    pub fn high_water(&self) -> u32 {
        self.next_fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_slots_are_sequential() {
        let mut a = SlotAllocator::new();
        assert_eq!(a.allocate(), 0);
        assert_eq!(a.allocate(), 1);
        assert_eq!(a.allocate(), 2);
        assert_eq!(a.live(), 3);
        assert_eq!(a.high_water(), 3);
    }

    #[test]
    fn release_recycles_lifo() {
        let mut a = SlotAllocator::new();
        let s0 = a.allocate();
        let s1 = a.allocate();
        a.release(s0);
        a.release(s1);
        assert_eq!(a.allocate(), s1);
        assert_eq!(a.allocate(), s0);
        assert_eq!(a.high_water(), 2);
    }

    #[test]
    fn live_count_tracks() {
        let mut a = SlotAllocator::new();
        let s = a.allocate();
        assert_eq!(a.live(), 1);
        a.release(s);
        assert_eq!(a.live(), 0);
    }
}
