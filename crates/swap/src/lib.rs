//! # pagesim-swap
//!
//! Swap media for the `pagesim` paging simulator. The paper evaluates two
//! media whose *cost structure* differs in kind, not just degree:
//!
//! * **SSD** ([`SsdDevice`]) — asynchronous block I/O: a small CPU setup
//!   cost on the submitting thread, then a queued device with bounded
//!   parallelism. Loaded 4 KiB operations take ~7.5 ms, matching the
//!   paper's measurement. Under thrashing the FIFO queue backs up and
//!   demand reads wait behind evicted-page write-backs.
//! * **ZRAM** ([`ZramDevice`]) — compressed in-memory swap: the entire
//!   cost is CPU time on the faulting/reclaiming thread (20 µs reads,
//!   35 µs writes per the paper), there is no queue, and capacity usage
//!   depends on how well each page compresses.
//!
//! Compression is real: [`compress`]/[`decompress`] implement a byte-RLE
//! codec (the RLE family is what LZO-RLE degenerates to on the synthetic
//! page contents we generate), and per-[`EntropyClass`](pagesim_mem::EntropyClass) ratios are derived
//! by actually compressing representative pages.
//!
//! ```rust
//! use pagesim_swap::{SwapDevice, ZramDevice};
//! use pagesim_engine::SimTime;
//! use pagesim_mem::EntropyClass;
//!
//! let mut zram = ZramDevice::with_paper_costs();
//! let slot = zram.allocate_slot();
//! let w = zram.write(SimTime::ZERO, slot, EntropyClass::Text).unwrap();
//! assert!(w.cpu_ns >= 35_000); // paper's 35us write, CPU-bound
//! assert!(zram.used_bytes() > 0);
//! ```


mod compress;
mod device;
mod slots;

pub use compress::{compress, decompress, page_for_class, CompressionModel};
pub use device::{FailedIo, IoOutcome, SsdDevice, SwapDevice, SwapKind, SwapResult, SwapStats, ZramDevice};
pub use slots::{SlotAllocator, SwapSlot};
