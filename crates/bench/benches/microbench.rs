//! Criterion micro-benchmarks of the simulator's core data structures and
//! hot paths: the per-operation costs that determine how fast the figure
//! sweeps run, plus the policy primitives whose *modeled* costs the study
//! is about.

// Bench targets are not public API; the criterion_group! expansion has no
// place to hang a doc comment.
#![allow(missing_docs)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pagesim::{Experiment, PolicyChoice, SwapChoice, SystemConfig};
use pagesim_engine::{EventQueue, SimTime};
use pagesim_mem::{AsId, EntropyClass};
use pagesim_policy::memview::tests_support::FakeMem;
use pagesim_policy::{BloomFilter, ClockLru, CostModel, Links, MgLru, MgLruConfig, PageList, Policy};
use pagesim_stats::LatencyHistogram;
use pagesim_swap::{compress, page_for_class};
use pagesim_workloads::tpch::{TpchConfig, TpchWorkload};
use pagesim_workloads::zipf::ScrambledZipfian;

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    let mut filter = BloomFilter::new(15);
    for r in 0..512u32 {
        filter.insert(AsId(0), r);
    }
    g.bench_function("insert", |b| {
        let mut f = BloomFilter::new(15);
        let mut r = 0u32;
        b.iter(|| {
            f.insert(AsId(0), black_box(r));
            r = r.wrapping_add(1);
        });
    });
    g.bench_function("contains_hit", |b| {
        let mut r = 0u32;
        b.iter(|| {
            r = (r + 1) % 512;
            black_box(filter.contains(AsId(0), black_box(r)))
        });
    });
    g.bench_function("contains_miss", |b| {
        let mut r = 100_000u32;
        b.iter(|| {
            r += 1;
            black_box(filter.contains(AsId(0), black_box(r)))
        });
    });
    g.finish();
}

fn bench_page_list(c: &mut Criterion) {
    c.bench_function("page_list/push_pop_cycle", |b| {
        let mut nodes = vec![Links::default(); 4096];
        let mut list = PageList::new();
        for k in 0..4096u32 {
            list.push_front(&mut nodes, k);
        }
        b.iter(|| {
            let k = list.pop_back(&mut nodes).unwrap();
            list.push_front(&mut nodes, black_box(k));
        });
    });
}

fn bench_zipf(c: &mut Criterion) {
    c.bench_function("zipf/scrambled_draw", |b| {
        let mut z = ScrambledZipfian::new(1_000_000, 7);
        b.iter(|| black_box(z.next_item()));
    });
}

fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("rle");
    for class in [EntropyClass::Text, EntropyClass::Random] {
        let page = page_for_class(class, 3);
        g.bench_function(format!("compress_{class:?}"), |b| {
            b.iter(|| black_box(compress(black_box(&page))))
        });
    }
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    g.bench_function("record", |b| {
        let mut h = LatencyHistogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 32));
        });
    });
    g.bench_function("p9999", |b| {
        let mut h = LatencyHistogram::new();
        let mut v = 1u64;
        for _ in 0..100_000 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(v >> 32);
        }
        b.iter(|| black_box(h.value_at_percentile(99.99)));
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop", |b| {
        let mut q = EventQueue::new();
        for i in 0..1024u64 {
            q.push(SimTime::from_ns(i * 7 % 911), i);
        }
        let mut t = 1024u64;
        b.iter(|| {
            let (at, _) = q.pop().unwrap();
            t += 1;
            q.push(at + 13, black_box(t));
        });
    });
}

/// The two policies' reclaim paths on a half-hot page pool.
fn bench_reclaim(c: &mut Criterion) {
    let pages = 8192u32;
    let mut g = c.benchmark_group("reclaim");
    g.bench_function("clock_batch32", |b| {
        b.iter_batched(
            || {
                let mut mem = FakeMem::new(pages);
                let mut p = ClockLru::new(pages, CostModel::default());
                for k in 0..pages {
                    mem.set_resident(k, true);
                    p.on_page_resident(k, false, &mut mem);
                    if k % 2 == 0 {
                        mem.set_accessed(k, true);
                    }
                }
                (p, mem)
            },
            |(mut p, mut mem)| black_box(p.reclaim(32, &mut mem)),
            BatchSize::LargeInput,
        );
    });
    g.bench_function("mglru_batch32", |b| {
        b.iter_batched(
            || {
                let mut mem = FakeMem::new(pages);
                let mut p = MgLru::new(pages, MgLruConfig::kernel_default(), CostModel::default());
                for k in 0..pages {
                    mem.set_resident(k, true);
                    p.on_page_resident(k, false, &mut mem);
                    if k % 2 == 0 {
                        mem.set_accessed(k, true);
                    }
                }
                p.age_once(&mut mem);
                (p, mem)
            },
            |(mut p, mut mem)| black_box(p.reclaim(32, &mut mem)),
            BatchSize::LargeInput,
        );
    });
    g.bench_function("mglru_aging_pass", |b| {
        b.iter_batched(
            || {
                let mut mem = FakeMem::new(pages);
                let mut p = MgLru::new(pages, MgLruConfig::scan_all(), CostModel::default());
                for k in 0..pages {
                    mem.set_resident(k, true);
                    p.on_page_resident(k, false, &mut mem);
                    mem.set_accessed(k, true);
                }
                (p, mem)
            },
            |(mut p, mut mem)| black_box(p.age_once(&mut mem)),
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

/// End-to-end: one tiny workload execution (the unit of every figure).
fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let workload = TpchWorkload::new(TpchConfig::tiny());
    for (name, policy) in [
        ("tpch_tiny_clock_zram", PolicyChoice::Clock),
        ("tpch_tiny_mglru_zram", PolicyChoice::MgLruDefault),
    ] {
        let config = SystemConfig::new(policy, SwapChoice::Zram)
            .capacity_ratio(0.5)
            .cores(4);
        let exp = Experiment::new(config);
        let mut seed = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                seed += 1;
                black_box(exp.run(&workload, seed))
            })
        });
    }
    g.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_bloom, bench_page_list, bench_zipf, bench_compress,
              bench_histogram, bench_event_queue, bench_reclaim, bench_end_to_end
}
criterion_main!(benches);
