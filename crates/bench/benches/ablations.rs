//! Ablation benchmarks for the MG-LRU design choices DESIGN.md calls out:
//! bloom-filter sizing, the eviction lookaround, generation count, and the
//! bloom-insert threshold. Each point runs a small end-to-end execution so
//! the measured quantity is the *whole-system* cost of the design choice,
//! and prints the fault count alongside (criterion measures host time; the
//! fault counts are the decision-quality signal).

// Bench targets are not public API; the criterion_group! expansion has no
// place to hang a doc comment.
#![allow(missing_docs)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pagesim::{Experiment, PolicyChoice, SwapChoice, SystemConfig};
use pagesim_policy::{MgLruConfig, ScanMode};
use pagesim_workloads::tpch::{TpchConfig, TpchWorkload};

fn run_once(cfg: MgLruConfig, seed: u64) -> pagesim::RunMetrics {
    let workload = TpchWorkload::new(TpchConfig::tiny());
    let config = SystemConfig::new(PolicyChoice::MgLruCustom(cfg), SwapChoice::Zram)
        .capacity_ratio(0.5)
        .cores(4);
    Experiment::new(config).run(&workload, seed)
}

fn bench_bloom_shift(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bloom_shift");
    g.sample_size(10);
    for shift in [10u32, 12, 15] {
        let cfg = MgLruConfig {
            bloom_shift: shift,
            ..MgLruConfig::kernel_default()
        };
        let m = run_once(cfg, 1);
        println!(
            "# bloom_shift={shift}: majors={} regions walked={} skipped={}",
            m.major_faults, m.policy.regions_walked, m.policy.regions_skipped
        );
        let mut seed = 0u64;
        g.bench_function(format!("shift_{shift}"), |b| {
            b.iter(|| {
                seed += 1;
                black_box(run_once(cfg, seed))
            })
        });
    }
    g.finish();
}

fn bench_spatial_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_eviction_lookaround");
    g.sample_size(10);
    for (name, spatial) in [("on", true), ("off", false)] {
        let cfg = MgLruConfig {
            spatial_scan: spatial,
            ..MgLruConfig::scan_none() // lookaround is the only scan source here
        };
        let m = run_once(cfg, 1);
        println!(
            "# lookaround={name}: majors={} rmap walks={} pte scans={}",
            m.major_faults, m.policy.rmap_walks, m.policy.pte_scans
        );
        let mut seed = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                seed += 1;
                black_box(run_once(cfg, seed))
            })
        });
    }
    g.finish();
}

fn bench_generation_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_generations");
    g.sample_size(10);
    for gens in [4u32, 64, 1 << 14] {
        let cfg = MgLruConfig {
            max_gens: gens,
            ..MgLruConfig::kernel_default()
        };
        let m = run_once(cfg, 1);
        println!(
            "# max_gens={gens}: majors={} aging passes={}",
            m.major_faults, m.policy.aging_passes
        );
        let mut seed = 0u64;
        g.bench_function(format!("gens_{gens}"), |b| {
            b.iter(|| {
                seed += 1;
                black_box(run_once(cfg, seed))
            })
        });
    }
    g.finish();
}

fn bench_insert_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bloom_threshold");
    g.sample_size(10);
    // The kernel's rule is >= 1 accessed PTE per cache line (1.0); sweep
    // looser and stricter admission.
    for (name, thr) in [("quarter", 0.25), ("kernel", 1.0), ("strict", 4.0)] {
        let cfg = MgLruConfig {
            insert_threshold_per_line: thr,
            ..MgLruConfig::kernel_default()
        };
        let m = run_once(cfg, 1);
        println!(
            "# threshold={thr}: majors={} regions walked={} skipped={}",
            m.major_faults, m.policy.regions_walked, m.policy.regions_skipped
        );
        let mut seed = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                seed += 1;
                black_box(run_once(cfg, seed))
            })
        });
    }
    g.finish();
}

fn bench_scan_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scan_mode");
    g.sample_size(10);
    for (name, mode) in [
        ("bloom", ScanMode::Bloom),
        ("all", ScanMode::All),
        ("none", ScanMode::None),
        ("rand50", ScanMode::Rand(0.5)),
    ] {
        let cfg = MgLruConfig {
            scan_mode: mode,
            ..MgLruConfig::kernel_default()
        };
        let mut seed = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                seed += 1;
                black_box(run_once(cfg, seed))
            })
        });
    }
    g.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = ablations;
    config = configured();
    targets = bench_bloom_shift, bench_spatial_scan, bench_generation_count,
              bench_insert_threshold, bench_scan_mode
}
criterion_main!(ablations);
