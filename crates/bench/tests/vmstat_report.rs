//! Determinism tests for the `repro vmstat` observability report.
//!
//! The report annotates golden-diffed figures, so it inherits their
//! contract: byte-identical output whether cells were computed lazily by
//! the drivers, by a cold parallel sweep, or replayed from a warm cache
//! under `--resume` — and identical sweep-summary observability counters
//! (`shadow=`, `ws_refault=`) either way.

use std::path::PathBuf;

use pagesim::experiments::{Bench, Scale};
use pagesim_bench::sweep::{run_sweep, SweepOptions};
use pagesim_bench::vmstat::vmstat_report;

fn tiny_bench() -> Bench {
    Bench::new(Scale {
        trials: 2,
        footprint: 0.12,
        seed: 7,
        page_compression: None,
    })
}

/// A unique scratch cache directory per test (no tempfile crate in the
/// offline build).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pagesim-vmstat-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn vmstat_report_is_identical_across_jobs_and_warm_resume() {
    let fig = "fig1";
    let figs = vec![fig.to_string()];
    let dir = scratch_dir("resume");

    // Lazy path: vmstat_report computes cells on demand via Bench::query.
    let golden = vmstat_report(&tiny_bench(), fig);
    assert!(golden.contains("workingset_refault "));

    // Cold parallel sweep into a journalled cache.
    let bench = tiny_bench();
    let opts = SweepOptions {
        jobs: 4,
        cache_dir: Some(dir.clone()),
        journal: Some(dir.join("journal.jsonl")),
        ..SweepOptions::default()
    };
    let cold = run_sweep(&bench, &figs, &opts);
    assert_eq!(cold.cache_misses, cold.trials, "cold cache");
    assert!(cold.shadow > 0, "evictions must leave shadow entries");
    assert!(cold.ws_refault > 0, "50% capacity must refault");
    assert_eq!(vmstat_report(&bench, fig), golden, "cold jobs=4");

    // Serial warm resume: every trial replays from the cache + journal.
    let bench = tiny_bench();
    let warm_opts = SweepOptions {
        jobs: 1,
        resume: true,
        ..opts
    };
    let warm = run_sweep(&bench, &figs, &warm_opts);
    assert_eq!(warm.cache_hits, warm.trials, "warm cache");
    assert!(warm.resumed > 0, "journal must mark trials resumed");
    // The observability counters flow through the cache codec unchanged.
    assert_eq!((warm.shadow, warm.ws_refault), (cold.shadow, cold.ws_refault));
    assert_eq!(vmstat_report(&bench, fig), golden, "warm resume jobs=1");

    let _ = std::fs::remove_dir_all(&dir);
}
