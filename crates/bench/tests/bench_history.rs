//! The bench history file's durability contract (ISSUE 7 satellite):
//! parse → re-serialize is byte-identical, appending preserves earlier
//! entries untouched, a torn final entry is quarantined rather than parsed
//! or overwritten, and the `--check` gate's exit codes are what CI keys on
//! (0 pass, 2 unusable baseline, 5 regression).

use std::path::PathBuf;
use std::process::Command;

use pagesim_bench::repro_bench::history::{
    self, BenchEntry, BenchHistory, Direction, MetricRecord,
};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pagesim-benchhist-{}-{}", name, std::process::id()))
}

fn record(name: &str, mean: f64) -> MetricRecord {
    MetricRecord {
        name: name.to_string(),
        unit: "u".to_string(),
        direction: Direction::Higher,
        mean,
        stddev: mean * 0.01,
        stderr: mean * 0.005,
        min: mean * 0.98,
        max: mean * 1.02,
        samples: 5,
        ci_lo: mean * 0.985,
        ci_hi: mean * 1.015,
        ci_width_ratio: 0.03,
        converged: true,
    }
}

fn entry(commit: &str, metrics: Vec<MetricRecord>) -> BenchEntry {
    BenchEntry {
        commit: commit.to_string(),
        timestamp_unix: 1_754_700_000,
        bench_scale: "quick".to_string(),
        seed: 0xC0FFEE,
        counters_enabled: false,
        metrics,
    }
}

#[test]
fn append_preserves_earlier_entries_byte_for_byte() {
    let path = tmp("append");
    let _ = std::fs::remove_file(&path);

    let mut commits = Vec::new();
    for i in 0..4 {
        let loaded = history::load(&path);
        assert!(loaded.quarantined.is_none());
        let mut hist = loaded.history;
        assert_eq!(hist.entries.len(), i);
        let before = hist.serialize();
        hist.entries
            .push(entry(&format!("commit-{i}"), vec![record("m", 100.0 + i as f64)]));
        history::save(&hist, &path).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        // The old document is a strict prefix-shape of the new one: every
        // earlier entry's serialized form appears unchanged.
        let reread = BenchHistory::parse(&text).unwrap();
        assert_eq!(reread.serialize(), text, "roundtrip not byte-identical");
        for (j, e) in reread.entries.iter().take(i).enumerate() {
            let mut solo_old = BenchHistory::default();
            solo_old.entries.push(BenchHistory::parse(&before).unwrap().entries[j].clone());
            let mut solo_new = BenchHistory::default();
            solo_new.entries.push(e.clone());
            assert_eq!(
                solo_old.serialize(),
                solo_new.serialize(),
                "append changed earlier entry {j}"
            );
        }
        commits.push(format!("commit-{i}"));
    }
    let final_hist = history::load(&path).history;
    let got: Vec<&str> = final_hist.entries.iter().map(|e| e.commit.as_str()).collect();
    assert_eq!(got, commits.iter().map(String::as_str).collect::<Vec<_>>());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_final_entry_is_quarantined_not_parsed() {
    let path = tmp("torn");
    let _ = std::fs::remove_file(&path);
    let hist = BenchHistory {
        entries: vec![
            entry("ok-1", vec![record("m", 100.0)]),
            entry("ok-2", vec![record("m", 101.0)]),
        ],
    };
    history::save(&hist, &path).unwrap();
    // Tear the file mid-final-entry, as a crash during a non-atomic write
    // would.
    let text = std::fs::read_to_string(&path).unwrap();
    let cut = text.rfind("\"commit\": \"ok-2\"").unwrap() + 20;
    std::fs::write(&path, &text[..cut]).unwrap();

    let loaded = history::load(&path);
    let qpath = loaded.quarantined.expect("torn file must be quarantined");
    assert!(qpath.to_string_lossy().ends_with(".quarantine"));
    assert!(qpath.exists(), "quarantined bytes must survive for forensics");
    assert!(loaded.history.entries.is_empty(), "no partial parse");
    assert!(!path.exists(), "original must have been moved aside");
    // The quarantined bytes are exactly the torn content — nothing lost.
    assert_eq!(std::fs::read_to_string(&qpath).unwrap(), text[..cut]);
    let _ = std::fs::remove_file(&qpath);
}

#[test]
fn missing_file_loads_empty_without_quarantine() {
    let path = tmp("missing");
    let _ = std::fs::remove_file(&path);
    let loaded = history::load(&path);
    assert!(loaded.quarantined.is_none());
    assert!(loaded.history.entries.is_empty());
}

/// Full gate cycle through the binary: a quick run appends a parseable
/// entry; `--check` against that same file passes (exit 0); `--check`
/// against a hand-regressed baseline fails with the gate's distinct exit
/// code 5; an unusable baseline is a usage error (exit 2).
#[test]
fn check_gate_exit_codes_through_the_binary() {
    let dir = tmp("gate");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let hist_file = dir.join("BENCH.json");

    let quick = |extra: &[&str]| {
        let mut cmd = repro();
        cmd.args([
            "bench",
            "--bench-scale",
            "quick",
            "--min-samples",
            "2",
            "--max-samples",
            "2",
            "--commit",
            "gate-test",
        ]);
        cmd.args(extra);
        cmd.output().expect("spawn repro")
    };

    // 1. Baseline run appends a schema-valid entry.
    let out = quick(&["--out", hist_file.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let hist = BenchHistory::parse(&std::fs::read_to_string(&hist_file).unwrap()).unwrap();
    assert_eq!(hist.entries.len(), 1);
    assert_eq!(hist.entries[0].commit, "gate-test");
    assert!(!hist.entries[0].metrics.is_empty());
    assert!(hist.entries[0]
        .metrics
        .iter()
        .all(|m| m.ci_lo <= m.mean && m.mean <= m.ci_hi));

    // 2. Same-commit re-run with a generous slack passes: exit 0, and the
    //    history file is left unmodified by a check run.
    let before = std::fs::read_to_string(&hist_file).unwrap();
    let out = quick(&["--check", hist_file.to_str().unwrap(), "--gate-slack", "2.0"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("bench check passed"));
    assert_eq!(std::fs::read_to_string(&hist_file).unwrap(), before);

    // 3. Regressed baseline: inflate a higher-is-better baseline mean so
    //    far that no noise band can cover the shortfall.
    let mut regressed = hist.clone();
    {
        let m = &mut regressed.entries[0].metrics[0];
        m.mean *= 1000.0;
        m.ci_lo = m.mean * 0.99;
        m.ci_hi = m.mean * 1.01;
    }
    let regressed_file = dir.join("regressed.json");
    history::save(&regressed, &regressed_file).unwrap();
    let out = quick(&["--check", regressed_file.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(5),
        "regression must exit 5, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("# REGRESSION"));

    // 4. Unusable baselines are usage errors (exit 2), reported before
    //    any sampling happens.
    let out = quick(&["--check", dir.join("nonexistent.json").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let empty_file = dir.join("empty.json");
    history::save(&BenchHistory::default(), &empty_file).unwrap();
    let out = quick(&["--check", empty_file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A baseline metric silently missing from the current matrix fails the
/// gate: dropping a tracked metric must be an explicit decision.
#[test]
fn check_fails_when_a_tracked_metric_vanishes() {
    let base = entry("base", vec![record("pages_per_sec/tpch/clock", 1e6), record("ghost", 1.0)]);
    let cur = entry("cur", vec![record("pages_per_sec/tpch/clock", 1e6)]);
    let regs = history::check(&base, &cur, 10.0);
    assert_eq!(regs.len(), 1);
    assert_eq!(regs[0].name, "ghost");
    assert_eq!(regs[0].current_mean, None);
}
