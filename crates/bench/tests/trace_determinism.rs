//! Tracing must be a pure observer: the trace for a trial is a function of
//! the trial alone (not of worker count or cache state), and attaching a
//! tracer must not perturb the simulation it observes.

use pagesim::experiments::{self, Bench, Scale};
use pagesim_bench::sweep::{run_sweep_traced, SweepOptions, TraceRequest};
use pagesim_trace::{validate_jsonl, Schema, TraceConfig, TraceData, BUILTIN_SCHEMA};

fn smoke_bench() -> Bench {
    Bench::new(Scale::smoke())
}

/// fig1 cell 1 is tpch under default MG-LRU — a cell with real reclaim,
/// aging and kswapd activity even at smoke scale.
fn traced_cell() -> TraceRequest {
    let cells = experiments::figure_cells("fig1");
    TraceRequest {
        query: cells[1].clone(),
        trial: 0,
        config: TraceConfig::default(),
    }
}

fn trace_with_jobs(jobs: usize) -> TraceData {
    let opts = SweepOptions {
        jobs,
        cache_dir: None,
        trace: Some(traced_cell()),
        ..SweepOptions::default()
    };
    let (_, trace) = run_sweep_traced(&smoke_bench(), &["fig1".to_owned()], &opts);
    trace.expect("a trace was requested")
}

#[test]
fn trace_is_byte_identical_across_worker_counts() {
    let a = trace_with_jobs(1);
    let b = trace_with_jobs(4);
    assert_eq!(a.to_jsonl(), b.to_jsonl());
    assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
    assert!(a.samples.len() > 1, "sampler produced no series");
    assert!(!a.events.is_empty(), "ring captured no events");
}

#[test]
fn tracing_does_not_perturb_metrics() {
    let bench = smoke_bench();
    let req = traced_cell();
    let untraced = bench.run_trial(&req.query, req.trial);
    let (traced, _) = bench.run_trial_traced(&req.query, req.trial, req.config);
    assert_eq!(
        format!("{untraced:?}"),
        format!("{traced:?}"),
        "attaching a tracer changed the simulation"
    );
}

#[test]
fn jsonl_export_satisfies_the_builtin_schema() {
    let schema = Schema::parse(BUILTIN_SCHEMA).expect("builtin schema parses");
    let jsonl = trace_with_jobs(2).to_jsonl();
    let errors = validate_jsonl(&schema, &jsonl);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
}
