//! Cache-key soundness at the sweep level: a cached trial may only be
//! reused for the *exact* experiment that produced it. Any meaningful
//! change — a policy knob, the master seed, the crate version, the scale
//! footprint, the fault plan — must read as a miss; unrelated experiments
//! sharing cells must read as hits.

use std::path::PathBuf;

use pagesim::experiments::{Bench, CellQuery, CellSpec, Scale, Wl};
use pagesim::{PolicyChoice, SwapChoice};
use pagesim_bench::sweep::{plan_cells, run_sweep, SweepOptions};
use pagesim_policy::MgLruConfig;

fn bench_with(seed: u64) -> Bench {
    Bench::new(Scale {
        trials: 2,
        footprint: 0.12,
        seed,
        page_compression: None,
    })
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pagesim-inval-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &std::path::Path) -> SweepOptions {
    SweepOptions {
        jobs: 2,
        cache_dir: Some(dir.to_path_buf()),
        trace: None,
        ..SweepOptions::default()
    }
}

#[test]
fn policy_knob_flip_changes_every_trial_key() {
    let bench = bench_with(7);
    let base = CellQuery::healthy(Wl::Tpch, PolicyChoice::MgLruDefault, SwapChoice::Ssd, 0.5);

    let mut tweaked_cfg = MgLruConfig::kernel_default();
    tweaked_cfg.bloom_shift += 1;
    let tweaked = CellQuery::healthy(
        Wl::Tpch,
        PolicyChoice::MgLruCustom(tweaked_cfg),
        SwapChoice::Ssd,
        0.5,
    );
    // Same resolved config through a different constructor: *same* key.
    let aliased = CellQuery::healthy(
        Wl::Tpch,
        PolicyChoice::MgLruCustom(MgLruConfig::kernel_default()),
        SwapChoice::Ssd,
        0.5,
    );

    for trial in 0..2 {
        let h = bench.trial_content_hash(&base, trial);
        assert_ne!(
            h,
            bench.trial_content_hash(&tweaked, trial),
            "one flipped MG-LRU knob must invalidate trial {trial}"
        );
        assert_eq!(
            h,
            bench.trial_content_hash(&aliased, trial),
            "an identical resolved config must share trial {trial}'s entry"
        );
    }
}

#[test]
fn seed_footprint_version_and_trial_change_the_key() {
    let q = CellQuery::healthy(Wl::YcsbA, PolicyChoice::Clock, SwapChoice::Ssd, 0.5);
    let base = bench_with(7).trial_content_hash(&q, 0);

    assert_ne!(
        base,
        bench_with(8).trial_content_hash(&q, 0),
        "master seed must enter the key"
    );
    assert_ne!(
        base,
        bench_with(7).trial_content_hash(&q, 1),
        "trial index must enter the key"
    );
    assert_ne!(
        base,
        Bench::new(Scale {
            trials: 2,
            footprint: 0.2,
            seed: 7,
            page_compression: None,
        })
        .trial_content_hash(&q, 0),
        "workload footprint must enter the key"
    );
    assert_ne!(
        base,
        bench_with(7).trial_content_hash_versioned(&q, 0, "some-future-version"),
        "crate version must enter the key"
    );
}

#[test]
fn fault_plan_enters_the_key() {
    let bench = bench_with(7);
    let healthy = CellQuery::healthy(Wl::Tpch, PolicyChoice::Clock, SwapChoice::Ssd, 0.5);
    let faulted = CellQuery::faulted(
        Wl::Tpch,
        PolicyChoice::Clock,
        SwapChoice::Ssd,
        0.5,
        pagesim::FaultConfig::stalling_ssd(),
    );
    assert_ne!(
        bench.trial_content_hash(&healthy, 0),
        bench.trial_content_hash(&faulted, 0)
    );
}

/// An unrelated figure whose grid is a subset of an already-swept one must
/// be served entirely from cache; a different-seed sweep over the same
/// grid must not hit at all.
#[test]
fn cross_figure_hits_and_cross_seed_misses() {
    let dir = scratch_dir("cross");

    // fig1's grid strictly contains fig2's (all workloads vs TPC-H and
    // PageRank only, same policies/swap/ratio).
    let cold = run_sweep(&bench_with(7), &["fig1".to_string()], &opts(&dir));
    assert_eq!(cold.cache_hits, 0);

    let fig2 = run_sweep(&bench_with(7), &["fig2".to_string()], &opts(&dir));
    assert_eq!(
        fig2.cache_hits, fig2.trials,
        "every fig2 cell was already swept for fig1"
    );
    assert_eq!(fig2.cache_misses, 0);
    assert!(fig2.hit_rate() >= 0.95);

    let reseeded = run_sweep(&bench_with(99), &["fig2".to_string()], &opts(&dir));
    assert_eq!(
        reseeded.cache_hits, 0,
        "a different master seed must never reuse cached trials"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted or truncated cache entry reads as a miss and is rebuilt,
/// never served.
#[test]
fn corrupt_cache_entries_are_recomputed() {
    let dir = scratch_dir("corrupt");
    let figs = vec!["fig2".to_string()];

    let cold = run_sweep(&bench_with(7), &figs, &opts(&dir));
    assert!(cold.trials > 0);

    // Mangle every cached entry a different way: truncate, garble the
    // identity header, and inject a non-numeric field value.
    for (i, entry) in std::fs::read_dir(&dir).unwrap().enumerate() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        let mangled = match i % 3 {
            0 => text[..text.len() / 2].to_string(),
            1 => text.replacen("pagesim-cell", "pagesim-cell-not", 1),
            _ => text.replacen("runtime_ns ", "runtime_ns x", 1),
        };
        std::fs::write(&path, mangled).unwrap();
    }

    let warm_bench = bench_with(7);
    let warm = run_sweep(&warm_bench, &figs, &opts(&dir));
    assert_eq!(
        warm.cache_hits, 0,
        "corrupted entries must read as misses, not parse as metrics"
    );

    // And the rebuilt entries must round-trip again.
    let again = run_sweep(&bench_with(7), &figs, &opts(&dir));
    assert_eq!(again.cache_hits, again.trials);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The planner dedups shared cells across figures and skips resident ones.
#[test]
fn planner_dedups_and_skips_resident_cells() {
    let bench = bench_with(7);
    let figs: Vec<String> = ["fig1", "fig2"].iter().map(|s| s.to_string()).collect();
    let plan = plan_cells(&bench, &figs);
    // fig2 ⊂ fig1: 5 workloads × 2 policies, nothing more.
    assert_eq!(plan.len(), 10, "fig2's cells must collapse into fig1's");

    // Materialize one cell; replanning must exclude it.
    let spec = CellSpec {
        query: plan[0].clone(),
        trial: 0,
    };
    let m0 = bench.run_trial(&spec.query, 0);
    let m1 = bench.run_trial(&spec.query, 1);
    bench.install_cell(&spec.query, pagesim::TrialSet { runs: vec![m0, m1] });
    assert_eq!(plan_cells(&bench, &figs).len(), 9);
}
