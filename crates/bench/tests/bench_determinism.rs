//! Determinism of the `repro bench` matrix (ISSUE 7 satellite): the matrix
//! *spec* — metric names, units, directions, probe labels — is a pure
//! function of the scale and feature set. Two runs at the same commit and
//! seed must enumerate byte-identical specs and produce entries with
//! identical metric structure; only the timing samples may differ. The
//! worker count must not change the spec set either.

use std::path::PathBuf;
use std::process::Command;

use pagesim_bench::repro_bench::history::BenchHistory;
use pagesim_bench::repro_bench::{matrix, matrix_spec, BenchScale};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pagesim-benchdet-{}-{}", name, std::process::id()))
}

/// The structural skeleton of an entry: everything except the sampled
/// numbers. Two same-commit runs must agree on this byte string exactly.
fn structure_of(history: &BenchHistory) -> String {
    let mut out = String::new();
    for e in &history.entries {
        out.push_str(&format!(
            "entry commit={} scale={} seed={} counters={}\n",
            e.commit, e.bench_scale, e.seed, e.counters_enabled
        ));
        for m in &e.metrics {
            out.push_str(&format!(
                "  {} unit={} direction={}\n",
                m.name,
                m.unit,
                m.direction.label()
            ));
        }
    }
    out
}

/// In-process: matrix enumeration is pure and scale-stable.
#[test]
fn matrix_spec_is_pure() {
    for scale in [BenchScale::quick(), BenchScale::default_scale()] {
        let a = matrix_spec(&matrix(&scale));
        let b = matrix_spec(&matrix(&scale));
        assert_eq!(a, b, "scale {}", scale.name);
        assert!(!a.is_empty());
    }
    // Quick is a strict subset of default: every quick metric line exists
    // in the default spec too (the trajectory names are scale-independent).
    let quick = matrix_spec(&matrix(&BenchScale::quick()));
    let default = matrix_spec(&matrix(&BenchScale::default_scale()));
    for line in quick.lines() {
        assert!(default.contains(line), "quick-only metric {line:?}");
    }
}

/// Binary level: `repro bench --list` is byte-identical across invocations
/// and across `--jobs`.
#[test]
fn list_output_is_byte_identical_across_runs_and_jobs() {
    let runs: Vec<Vec<u8>> = [("1", ()), ("4", ()), ("1", ())]
        .iter()
        .map(|(jobs, ())| {
            let out = repro()
                .args(["bench", "--list", "--bench-scale", "quick", "--jobs", jobs])
                .output()
                .expect("spawn repro");
            assert!(out.status.success());
            out.stdout
        })
        .collect();
    assert_eq!(runs[0], runs[1], "jobs=1 vs jobs=4 spec differs");
    assert_eq!(runs[0], runs[2], "re-run spec differs");
    let text = String::from_utf8(runs[0].clone()).unwrap();
    // And the binary's spec matches the library enumeration (the binary is
    // built without bench-counters in this test profile, as are we).
    assert_eq!(text, matrix_spec(&matrix(&BenchScale::quick())));
}

/// Two full runs at the same commit and seed produce entries whose
/// structure (names, units, directions, stamps) is byte-identical; only
/// the sampled values differ. A jobs=4 run agrees too.
#[test]
fn bench_runs_agree_on_metric_structure() {
    let dir = tmp("runs");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut structures = Vec::new();
    for (i, jobs) in ["1", "1", "4"].iter().enumerate() {
        let out_file = dir.join(format!("hist-{i}.json"));
        let out = repro()
            .args([
                "bench",
                "--bench-scale",
                "quick",
                "--min-samples",
                "2",
                "--max-samples",
                "2",
                "--jobs",
                jobs,
                "--commit",
                "det-test",
                "--out",
            ])
            .arg(&out_file)
            .output()
            .expect("spawn repro");
        assert!(
            out.status.success(),
            "run {i} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = std::fs::read_to_string(&out_file).unwrap();
        let hist = BenchHistory::parse(&text).expect("emitted history parses");
        assert_eq!(hist.entries.len(), 1);
        for m in &hist.entries[0].metrics {
            assert_eq!(m.samples, 2, "{} sample count", m.name);
            assert!(m.min <= m.mean && m.mean <= m.max, "{} ordering", m.name);
        }
        structures.push(structure_of(&hist));
    }
    assert_eq!(structures[0], structures[1], "same-jobs runs differ structurally");
    assert_eq!(structures[0], structures[2], "jobs=1 vs jobs=4 differ structurally");
    let _ = std::fs::remove_dir_all(&dir);
}
