//! Golden-equivalence tests for the sweep executor: figure output must be
//! byte-identical whether cells are computed lazily by the drivers, by a
//! serial sweep, by a parallel sweep, or replayed from a warm cache.

use std::path::PathBuf;
use std::process::Command;

use pagesim::experiments::{self, Bench, Scale};
use pagesim_bench::sweep::{run_sweep, SweepOptions};

/// Small enough to keep the suite fast, big enough to exercise every
/// driver family (normalized means, joint distributions, tails, ZRAM,
/// fault injection).
const FIGS: &[&str] = &["fig1", "fig2", "fig3", "fig11", "faults"];

fn tiny_bench() -> Bench {
    Bench::new(Scale {
        trials: 2,
        footprint: 0.12,
        seed: 7,
        page_compression: None,
    })
}

fn fig_strings() -> Vec<String> {
    FIGS.iter().map(|f| f.to_string()).collect()
}

/// Renders the test figures exactly the way `repro` does.
fn render(bench: &Bench) -> String {
    let mut out = String::new();
    for fig in FIGS {
        out.push_str(&match *fig {
            "fig1" => experiments::fig1(bench).to_string(),
            "fig2" => experiments::fig2(bench).to_string(),
            "fig3" => experiments::fig3(bench).to_string(),
            "fig11" => experiments::fig11(bench).to_string(),
            "faults" => experiments::faults(bench).to_string(),
            other => panic!("unknown fig {other}"),
        });
        out.push('\n');
    }
    out
}

fn no_cache(jobs: usize) -> SweepOptions {
    SweepOptions {
        jobs,
        cache_dir: None,
        trace: None,
        ..SweepOptions::default()
    }
}

/// A unique scratch cache directory per test (no tempfile crate in the
/// offline build).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pagesim-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sweep_output_is_independent_of_worker_count_and_lazy_path() {
    let lazy = tiny_bench();
    let golden = render(&lazy); // drivers compute cells themselves

    for jobs in [1, 4] {
        let bench = tiny_bench();
        let stats = run_sweep(&bench, &fig_strings(), &no_cache(jobs));
        assert!(stats.cells > 0 && stats.trials == stats.cells * 2);
        assert_eq!(stats.cache_misses, stats.trials, "cache is disabled");
        assert_eq!(
            render(&bench),
            golden,
            "jobs={jobs} sweep diverged from the lazy driver path"
        );
    }
}

#[test]
fn sweep_precomputes_every_cell_the_figures_need() {
    let bench = tiny_bench();
    run_sweep(&bench, &fig_strings(), &no_cache(2));
    let computed_by_sweep_fallback = bench.cells_computed();
    render(&bench);
    assert_eq!(
        bench.cells_computed(),
        computed_by_sweep_fallback,
        "a figure driver had to compute a cell the sweep enumeration missed"
    );
    assert_eq!(
        computed_by_sweep_fallback, 0,
        "the sweep itself must install cells, not fall back to Bench::query"
    );
}

/// The enumeration covers *all* figures, not just the rendered subset:
/// for each known figure id, the planned cells must satisfy its driver.
/// One bench is shared across figures (cells resident from earlier
/// figures are skipped by the planner), so this also exercises the
/// incremental-sweep path.
#[test]
fn enumeration_covers_every_figure_id() {
    let bench = Bench::new(Scale {
        trials: 2,
        footprint: 0.08,
        seed: 7,
        page_compression: None,
    });
    for fig in experiments::figure_ids() {
        run_sweep(&bench, &[fig.to_string()], &no_cache(2));
        let computed_before_render = bench.cells_computed();
        match fig {
            "fig1" => drop(experiments::fig1(&bench)),
            "fig2" => drop(experiments::fig2(&bench)),
            "fig3" => drop(experiments::fig3(&bench)),
            "fig4" => drop(experiments::fig4(&bench)),
            "fig5" => drop(experiments::fig5(&bench)),
            "fig6" => drop(experiments::fig6(&bench)),
            "fig7" => drop(experiments::fig7(&bench)),
            "fig8" => drop(experiments::fig8(&bench)),
            "fig9" => drop(experiments::fig9(&bench)),
            "fig10" => drop(experiments::fig10(&bench)),
            "fig11" => drop(experiments::fig11(&bench)),
            "fig12" => drop(experiments::fig12(&bench)),
            "faults" => drop(experiments::faults(&bench)),
            other => panic!("unknown fig {other}"),
        }
        assert_eq!(
            bench.cells_computed(),
            computed_before_render,
            "{fig}: driver needed a cell its enumeration missed"
        );
    }
    assert_eq!(
        bench.cells_computed(),
        0,
        "no figure may fall back to lazy computation after its sweep"
    );
}

#[test]
fn warm_cache_replay_is_byte_identical() {
    let dir = scratch_dir("warm");
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        trace: None,
        ..SweepOptions::default()
    };

    let cold_bench = tiny_bench();
    let cold = run_sweep(&cold_bench, &fig_strings(), &opts);
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, cold.trials);
    let cold_out = render(&cold_bench);

    let warm_bench = tiny_bench();
    let warm = run_sweep(&warm_bench, &fig_strings(), &opts);
    assert_eq!(
        warm.cache_hits, warm.trials,
        "every trial must replay from cache"
    );
    assert!(warm.hit_rate() >= 0.95, "hit rate {}", warm.hit_rate());
    assert_eq!(render(&warm_bench), cold_out);

    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end through the binary: stdout (minus wall-clock comment lines)
/// is byte-identical across worker counts and cache states, and stays so
/// on a warm cache.
#[test]
fn repro_binary_output_is_byte_identical_across_jobs_and_cache() {
    let dir = scratch_dir("bin");
    let run = |extra: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_repro"))
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .args(["--scale", "smoke", "--trials", "2", "fig2", "faults"])
            .args(extra)
            .output()
            .expect("repro failed to start");
        assert!(out.status.success(), "repro exited with {}", out.status);
        let stdout = String::from_utf8(out.stdout).expect("non-utf8 stdout");
        stdout
            .lines()
            .filter(|l| !l.contains("took "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let dirs = dir.to_str().unwrap();
    let serial = run(&["--no-cache", "--jobs", "1"]);
    let parallel = run(&["--no-cache", "--jobs", "4"]);
    let cold = run(&["--cache-dir", dirs, "--jobs", "2"]);
    let warm = run(&["--cache-dir", dirs, "--jobs", "3"]);
    assert_eq!(serial, parallel, "--jobs changed figure output");
    assert_eq!(serial, cold, "cache writes changed figure output");
    assert_eq!(serial, warm, "cache replay changed figure output");
    assert!(serial.contains("Fig 2") || serial.contains("fig2") || !serial.is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}

/// With enough cores, a 4-worker sweep must beat the serial one clearly.
/// Skipped on small machines where the comparison is meaningless.
#[test]
fn parallel_sweep_is_faster_with_enough_cores() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping speedup check: only {cores} core(s) available");
        return;
    }
    let figs = vec!["fig6".to_string()];
    let scale = Scale {
        trials: 4,
        footprint: 0.25,
        seed: 7,
        page_compression: None,
    };

    let bench = Bench::new(scale);
    let t0 = std::time::Instant::now();
    run_sweep(&bench, &figs, &no_cache(1));
    let serial = t0.elapsed();

    let bench = Bench::new(scale);
    let t0 = std::time::Instant::now();
    run_sweep(&bench, &figs, &no_cache(4));
    let parallel = t0.elapsed();

    assert!(
        parallel.as_secs_f64() < serial.as_secs_f64() / 1.5,
        "expected clear speedup: serial {serial:?} vs 4-way {parallel:?}"
    );
}
