//! Positive sanitize coverage: a smoke-scale sweep of fig1 (the headline
//! runtime comparison) and the fault-injection figure runs end to end with
//! the DEBUG_VM-style invariant sweep live at every quiesce point. Any
//! bookkeeping drift panics with a `sanitize:` message and fails the test.

#![cfg(feature = "sanitize")]

use pagesim::experiments::{self, Bench, Scale};
use pagesim_bench::sweep::{run_sweep, SweepOptions};

#[test]
fn smoke_sweep_runs_clean_under_sanitizer() {
    let bench = Bench::new(Scale {
        trials: 1,
        footprint: 0.12,
        seed: 7,
        page_compression: None,
    });
    let figs = vec!["fig1".to_string(), "faults".to_string()];
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: None,
        trace: None,
        ..SweepOptions::default()
    };
    let stats = run_sweep(&bench, &figs, &opts);
    assert!(stats.cells > 0, "sweep planned no cells");
    // Render the figures too, so the lazy driver path (direct Kernel::run
    // calls) also executes under the sanitizer.
    let fig1 = experiments::fig1(&bench).to_string();
    let faults = experiments::faults(&bench).to_string();
    assert!(!fig1.is_empty() && !faults.is_empty());
}
