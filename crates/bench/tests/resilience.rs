//! Fault-tolerance tests for the sweep executor: seeded chaos injection
//! (worker panics, cache corruption, forced-slow trials, worker kills,
//! mid-sweep aborts) must never change figure output — recovered runs are
//! byte-identical to clean ones — and unrecoverable trials must surface as
//! typed failures, not panics.

use std::path::PathBuf;
use std::sync::OnceLock;

use pagesim::experiments::{self, Bench, CellSpec, Scale};
use pagesim::FailureKind;
use pagesim_bench::sweep::{
    cache, run_sweep_resilient, ChaosPlan, SweepOptions, SweepOutcome,
};
use proptest::prelude::*;

fn tiny_bench() -> Bench {
    Bench::new(Scale {
        trials: 2,
        footprint: 0.1,
        seed: 11,
        page_compression: None,
    })
}

fn figs() -> Vec<String> {
    vec!["fig1".to_owned()]
}

/// The lazy-driver golden: what fig1 renders with no sweep involved.
fn golden() -> &'static str {
    static GOLDEN: OnceLock<String> = OnceLock::new();
    GOLDEN.get_or_init(|| experiments::fig1(&tiny_bench()).to_string())
}

fn render(bench: &Bench) -> String {
    experiments::fig1(bench).to_string()
}

/// A unique scratch directory per test (no tempfile crate offline).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pagesim-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn chaos_opts(jobs: usize, plan: ChaosPlan) -> SweepOptions {
    SweepOptions {
        jobs,
        cache_dir: None,
        chaos: Some(plan),
        ..SweepOptions::default()
    }
}

fn assert_clean_recovery(outcome: &SweepOutcome, bench: &Bench, what: &str) {
    assert!(!outcome.aborted, "{what}: unexpected abort");
    assert!(
        outcome.failures.is_empty(),
        "{what}: unexpected failures {:?}",
        outcome.failures
    );
    assert_eq!(render(bench), golden(), "{what}: recovered output diverged");
}

#[test]
fn transient_chaos_panics_retry_to_identical_output() {
    for jobs in [1, 4] {
        let bench = tiny_bench();
        let plan = ChaosPlan {
            seed: 7,
            panic_trials: 2,
            ..ChaosPlan::default()
        };
        let outcome = run_sweep_resilient(&bench, &figs(), &chaos_opts(jobs, plan));
        assert!(
            outcome.stats.retries >= 2,
            "jobs={jobs}: expected 2 panic retries, saw {}",
            outcome.stats.retries
        );
        assert_clean_recovery(&outcome, &bench, "transient panics");
    }
}

#[test]
fn permanent_panics_record_typed_failures_not_panics() {
    let bench = tiny_bench();
    let plan = ChaosPlan {
        seed: 9,
        permanent_panic_trials: 1,
        ..ChaosPlan::default()
    };
    let outcome = run_sweep_resilient(&bench, &figs(), &chaos_opts(2, plan));
    assert!(!outcome.aborted);
    assert_eq!(outcome.stats.failed, 1, "exactly one trial keeps panicking");
    assert_eq!(outcome.failures.len(), 1, "one cell loses a trial");
    let f = &outcome.failures[0];
    assert!(
        matches!(f.kind, FailureKind::Panic(_)),
        "classified as a panic: {f}"
    );
    assert_eq!(f.attempts, 3, "default max_attempts exhausted");
    assert!(!f.ident.is_empty());
}

#[test]
fn chaos_slow_trials_trip_the_budget_then_retry_unbudgeted() {
    let bench = tiny_bench();
    let plan = ChaosPlan {
        seed: 13,
        slow_trials: 1,
        ..ChaosPlan::default()
    };
    let outcome = run_sweep_resilient(&bench, &figs(), &chaos_opts(2, plan));
    assert!(
        outcome.stats.retries >= 1,
        "the tripped budget must cost a retry"
    );
    assert_clean_recovery(&outcome, &bench, "forced-slow trial");
}

#[test]
fn user_trial_budget_classifies_timeouts_without_merging_truncated_metrics() {
    let bench = tiny_bench();
    let opts = SweepOptions {
        jobs: 2,
        cache_dir: None,
        trial_budget: Some(1), // 1 simulated ns: every trial trips
        ..SweepOptions::default()
    };
    let outcome = run_sweep_resilient(&bench, &figs(), &opts);
    assert_eq!(
        outcome.failures.len(),
        outcome.stats.cells,
        "every cell should lose its trials to the budget"
    );
    assert!(outcome
        .failures
        .iter()
        .all(|f| matches!(f.kind, FailureKind::Timeout)));
    // Timeouts are deterministic, not transient: one attempt each.
    assert!(outcome.failures.iter().all(|f| f.attempts == 1));
}

#[test]
fn worker_kill_respawns_and_requeues_the_trial() {
    let bench = tiny_bench();
    let plan = ChaosPlan {
        seed: 21,
        kill_workers: 1,
        ..ChaosPlan::default()
    };
    let outcome = run_sweep_resilient(&bench, &figs(), &chaos_opts(2, plan));
    assert_eq!(outcome.stats.respawns, 1, "the killed worker was replaced");
    assert_clean_recovery(&outcome, &bench, "worker kill");
}

#[test]
fn corrupt_cache_entries_are_quarantined_and_recomputed() {
    let dir = scratch_dir("quarantine");
    let warm = SweepOptions {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        ..SweepOptions::default()
    };
    let bench = tiny_bench();
    let outcome = run_sweep_resilient(&bench, &figs(), &warm);
    assert_eq!(outcome.stats.cache_hits, 0);
    let clean = render(&bench);
    assert_eq!(clean, golden());

    // Second run: chaos flips one byte in one entry before reading.
    let bench = tiny_bench();
    let opts = SweepOptions {
        chaos: Some(ChaosPlan {
            seed: 3,
            corrupt_entries: 1,
            ..ChaosPlan::default()
        }),
        ..warm.clone()
    };
    let outcome = run_sweep_resilient(&bench, &figs(), &opts);
    assert_eq!(outcome.stats.quarantined, 1, "the bad entry was quarantined");
    assert_eq!(
        outcome.stats.cache_hits,
        outcome.stats.trials - 1,
        "only the corrupted entry recomputes"
    );
    assert_clean_recovery(&outcome, &bench, "cache corruption");
    let quarantined = std::fs::read_dir(&dir)
        .expect("cache dir")
        .flatten()
        .filter(|e| e.path().to_string_lossy().ends_with(".quarantine"))
        .count();
    assert_eq!(quarantined, 1, "the corrupt bytes are preserved for inspection");

    // Third run: the recomputed entry is valid again.
    let bench = tiny_bench();
    let outcome = run_sweep_resilient(&bench, &figs(), &warm);
    assert_eq!(outcome.stats.cache_hits, outcome.stats.trials);
    assert_eq!(render(&bench), golden());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_tmp_files_are_cleaned_at_startup() {
    let dir = scratch_dir("tmpclean");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    std::fs::write(dir.join("dead.tmp3"), b"torn write").expect("tmp file");
    std::fs::write(dir.join("0123456789abcdef.cell.tmp7"), b"torn").expect("tmp file");
    let bench = tiny_bench();
    let opts = SweepOptions {
        jobs: 1,
        cache_dir: Some(dir.clone()),
        ..SweepOptions::default()
    };
    let outcome = run_sweep_resilient(&bench, &figs(), &opts);
    assert_eq!(outcome.stats.tmp_cleaned, 2);
    let leftover = std::fs::read_dir(&dir)
        .expect("cache dir")
        .flatten()
        .filter(|e| e.path().to_string_lossy().contains(".tmp"))
        .count();
    assert_eq!(leftover, 0, "stale tmp files survived startup cleaning");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance scenario: a chaos-aborted ("killed") run followed by
/// `--resume` must produce byte-identical figure output, serving journaled
/// progress from the cache.
#[test]
fn aborted_run_resumes_to_byte_identical_output() {
    let dir = scratch_dir("resume");
    let journal = dir.join("run-journal.jsonl");

    let bench = tiny_bench();
    let aborted = run_sweep_resilient(
        &bench,
        &figs(),
        &SweepOptions {
            jobs: 2,
            cache_dir: Some(dir.clone()),
            journal: Some(journal.clone()),
            chaos: Some(ChaosPlan {
                seed: 5,
                abort_after: Some(3),
                ..ChaosPlan::default()
            }),
            ..SweepOptions::default()
        },
    );
    assert!(aborted.aborted, "abort-after must stop the sweep");
    assert!(aborted.failures.is_empty(), "an abort is not a failure");
    let journal_text = std::fs::read_to_string(&journal).expect("journal written");
    assert!(journal_text.contains("\"aborted\":true"));
    assert!(journal_text.contains("\"kind\":\"trial\""));

    let bench = tiny_bench();
    let resumed = run_sweep_resilient(
        &bench,
        &figs(),
        &SweepOptions {
            jobs: 2,
            cache_dir: Some(dir.clone()),
            journal: Some(journal.clone()),
            resume: true,
            ..SweepOptions::default()
        },
    );
    assert!(!resumed.aborted);
    assert!(resumed.failures.is_empty());
    assert!(
        resumed.stats.resumed >= 3,
        "journalled trials must be served from cache, saw resumed={}",
        resumed.stats.resumed
    );
    assert_eq!(
        render(&bench),
        golden(),
        "resumed output diverged from an uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Cache quarantine property
// ---------------------------------------------------------------------

/// One real cache entry, stored once and shared across proptest cases.
fn seed_entry() -> &'static (Bench, CellSpec, Vec<u8>, String) {
    static ENTRY: OnceLock<(Bench, CellSpec, Vec<u8>, String)> = OnceLock::new();
    ENTRY.get_or_init(|| {
        let bench = tiny_bench();
        let query = experiments::figure_cells("fig1")
            .into_iter()
            .next()
            .expect("fig1 has cells");
        let spec = CellSpec { query, trial: 0 };
        let metrics = bench.run_trial(&spec.query, 0);
        let dir = scratch_dir("prop-seed");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        cache::store(&dir, &bench, &spec, &metrics, 0);
        let (path, _) = cache::entry_path(&dir, &bench, &spec);
        let bytes = std::fs::read(&path).expect("stored entry");
        let name = path
            .file_name()
            .expect("entry file name")
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_dir_all(&dir);
        (bench, spec, bytes, name)
    })
}

proptest! {
    /// Any single flipped byte in a cache entry must never be parsed as a
    /// hit: the read either sees a stale-format miss or quarantines the
    /// entry — and a quarantined entry is preserved on disk, not re-read.
    #[test]
    fn flipped_cache_bytes_never_parse(pos in 0usize..1_000_000, xor in 1u8..=255u8) {
        let (bench, spec, bytes, name) = seed_entry();
        let mut flipped = bytes.clone();
        let p = pos % flipped.len();
        flipped[p] ^= xor;
        let dir = scratch_dir(&format!("prop-{p}-{xor}"));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        std::fs::write(dir.join(name), &flipped).expect("write flipped entry");
        let read = cache::load(&dir, bench, spec);
        prop_assert!(
            !matches!(read, cache::CacheRead::Hit(_)),
            "byte {p} xor {xor:#04x} parsed as a cache hit"
        );
        if matches!(read, cache::CacheRead::Quarantined) {
            prop_assert!(
                dir.join(format!("{name}.quarantine")).exists(),
                "quarantined entry was not preserved"
            );
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
