//! Deterministic parallel sweep executor with a content-addressed cell
//! cache.
//!
//! The figure drivers in `pagesim::experiments` are lazy: each calls
//! `Bench::cell` for the cells it plots and computes them on first use.
//! This module turns a figure list into an explicit work plan instead:
//!
//! 1. **Enumerate** — `pagesim::experiments::figure_cells` expands every
//!    requested figure into its grid of [`CellQuery`]s; duplicates across
//!    figures collapse on the cell content key, and each surviving cell
//!    fans out into `trials` independent [`CellSpec`]s.
//! 2. **Execute** — a fixed pool of `jobs` worker threads drains the spec
//!    queue (an atomic cursor over the spec list) and sends each result
//!    over a channel. Workers first consult the on-disk cache: the file
//!    name is the trial's content hash (config + seed + trial + crate
//!    version), so a hit can skip the simulation entirely.
//! 3. **Merge** — results are placed by spec index and folded into
//!    [`TrialSet`]s in canonical (enumeration) order, then installed into
//!    the bench. Because a trial's metrics depend only on its spec — never
//!    on scheduling — figure output is byte-identical for any `jobs` value
//!    and any cache state.
//!
//! Nothing here writes to stdout; progress and the final summary belong to
//! stderr so `repro`'s figure stream stays byte-comparable.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
// Wall-clock phase timing for the stderr summary only — never visible to
// the simulation (this crate is outside pagesim-lint's sim-crate set).
use std::time::Instant;

use pagesim::experiments::{figure_cells, Bench, CellQuery, CellSpec};
use pagesim::{RunMetrics, TrialSet};
use pagesim_trace::{TraceConfig, TraceData};

/// A request to trace exactly one trial during a sweep. The traced trial
/// bypasses the cache *read* (a hit would skip the simulation and produce
/// no trace) but still writes its result back, and its metrics flow into
/// the merged cells exactly like any other trial's — so the figure output
/// of a traced sweep is byte-identical to an untraced one.
#[derive(Clone, Debug)]
pub struct TraceRequest {
    /// The cell to trace.
    pub query: CellQuery,
    /// The trial index within that cell.
    pub trial: u32,
    /// Sampler and ring configuration.
    pub config: TraceConfig,
}

/// How the sweep runs: worker count, cache placement, optional tracing.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads. `1` executes trials strictly serially.
    pub jobs: usize,
    /// Cell cache directory; `None` disables the cache entirely.
    pub cache_dir: Option<PathBuf>,
    /// Trace one trial while sweeping (`repro trace`).
    pub trace: Option<TraceRequest>,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            jobs: default_jobs(),
            cache_dir: None,
            trace: None,
        }
    }
}

/// The default worker count: every available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// What a sweep did, for the stderr summary and for tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Distinct cells planned (after cross-figure dedup).
    pub cells: usize,
    /// Trials planned (`cells * trials_per_cell`).
    pub trials: usize,
    /// Trials served from the on-disk cache.
    pub cache_hits: usize,
    /// Trials simulated (cache disabled, cold, or invalid entry).
    pub cache_misses: usize,
    /// Wall time spent enumerating and deduplicating cells, in ms.
    pub plan_ms: u64,
    /// Wall time spent executing trials (cache reads included), in ms.
    pub exec_ms: u64,
    /// Wall time spent merging and installing results, in ms.
    pub merge_ms: u64,
}

impl SweepStats {
    /// Cache hit rate over planned trials (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.trials as f64
        }
    }
}

impl std::fmt::Display for SweepStats {
    /// One stable-format summary line, greppable by CI:
    /// `sweep cells=2 trials=6 hits=0 misses=6 hit_rate=0.000 plan_ms=0 exec_ms=41 merge_ms=0`.
    /// Tools match on the `key=value` tokens; the key set only grows.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep cells={} trials={} hits={} misses={} hit_rate={:.3} \
             plan_ms={} exec_ms={} merge_ms={}",
            self.cells,
            self.trials,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate(),
            self.plan_ms,
            self.exec_ms,
            self.merge_ms,
        )
    }
}

/// Expands `figs` into the deduplicated cell plan, in canonical order:
/// figures in the order given, each figure's grid in driver order, first
/// occurrence wins. Cells already resident in `bench` are excluded.
pub fn plan_cells(bench: &Bench, figs: &[String]) -> Vec<CellQuery> {
    // Ordered set: dedup order must be a pure function of the figure list
    // (pagesim-lint rule L1 forbids hash-ordered state on sim paths).
    let mut seen = std::collections::BTreeSet::new();
    let mut plan = Vec::new();
    for fig in figs {
        for q in figure_cells(fig) {
            let key = (q.wl, q.system_config().stable_hash());
            if seen.insert(key) && !bench.has_cell(&q) {
                plan.push(q);
            }
        }
    }
    plan
}

/// Expands a cell plan into per-trial work units, cell-major: the specs of
/// cell `i` occupy indices `i*trials .. (i+1)*trials`.
pub fn plan_specs(bench: &Bench, plan: &[CellQuery]) -> Vec<CellSpec> {
    let trials = bench.scale().trials;
    plan.iter()
        .flat_map(|q| {
            (0..trials).map(move |trial| CellSpec {
                query: q.clone(),
                trial,
            })
        })
        .collect()
}

/// Runs every cell the given figures need and installs the results into
/// `bench`, so the figure drivers render entirely from cache. Returns the
/// sweep statistics. Output is deterministic: for a fixed bench scale the
/// installed cells are byte-identical regardless of `jobs`, cache state,
/// or completion order.
pub fn run_sweep(bench: &Bench, figs: &[String], opts: &SweepOptions) -> SweepStats {
    run_sweep_traced(bench, figs, opts).0
}

/// [`run_sweep`] plus the captured trace, when `opts.trace` asked for one.
/// The trace is captured even if the traced trial's cell is outside the
/// figure plan (already resident, or not referenced by `figs`): it then
/// runs standalone after the sweep.
pub fn run_sweep_traced(
    bench: &Bench,
    figs: &[String],
    opts: &SweepOptions,
) -> (SweepStats, Option<TraceData>) {
    let t0 = Instant::now();
    let plan = plan_cells(bench, figs);
    let specs = plan_specs(bench, &plan);
    let trials = bench.scale().trials as usize;
    let mut stats = SweepStats {
        cells: plan.len(),
        trials: specs.len(),
        ..SweepStats::default()
    };
    // The spec the trace request names, matched on trial index plus cell
    // content key (same equality the cache uses, so label differences
    // that don't change the simulation still match).
    let traced_idx = opts.trace.as_ref().and_then(|req| {
        let req_key = (req.query.wl, req.query.system_config().stable_hash());
        specs.iter().position(|s| {
            s.trial == req.trial && (s.query.wl, s.query.system_config().stable_hash()) == req_key
        })
    });
    stats.plan_ms = t0.elapsed().as_millis() as u64;

    let t1 = Instant::now();
    let trace_slot = std::sync::Mutex::new(None::<TraceData>);
    if !specs.is_empty() {
        if let Some(dir) = &opts.cache_dir {
            // Failing to create the cache dir downgrades to cache-off rather
            // than aborting the sweep; the summary's miss count exposes it.
            let _ = fs::create_dir_all(dir);
        }

        let hits = AtomicU64::new(0);
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, RunMetrics)>();
        let workers = opts.jobs.clamp(1, specs.len());
        let mut slots: Vec<Option<RunMetrics>> = vec![None; specs.len()];
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let (specs, cursor, hits, trace_slot) = (&specs, &cursor, &hits, &trace_slot);
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let traced = traced_idx == Some(i);
                    // The traced trial must actually simulate: a cache hit
                    // would produce metrics but no trace.
                    let cached = if traced {
                        None
                    } else {
                        opts.cache_dir
                            .as_deref()
                            .and_then(|dir| cache_load(dir, bench, spec))
                    };
                    let metrics = match cached {
                        Some(m) => {
                            hits.fetch_add(1, Ordering::Relaxed);
                            m
                        }
                        None => {
                            let m = if traced {
                                let req = opts.trace.as_ref().expect("traced_idx implies request");
                                let (m, data) =
                                    bench.run_trial_traced(&spec.query, spec.trial, req.config);
                                *trace_slot.lock().expect("trace slot poisoned") = Some(data);
                                m
                            } else {
                                bench.run_trial(&spec.query, spec.trial)
                            };
                            if let Some(dir) = opts.cache_dir.as_deref() {
                                cache_store(dir, bench, spec, &m, i);
                            }
                            m
                        }
                    };
                    if tx.send((i, metrics)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, metrics) in rx {
                slots[i] = Some(metrics);
            }
        });

        stats.cache_hits = hits.load(Ordering::Relaxed) as usize;
        stats.cache_misses = stats.trials - stats.cache_hits;
        stats.exec_ms = t1.elapsed().as_millis() as u64;

        let t2 = Instant::now();
        let mut runs = slots.into_iter().map(|s| s.expect("sweep trial missing"));
        for q in &plan {
            let set = TrialSet {
                runs: runs.by_ref().take(trials).collect(),
            };
            bench.install_cell(q, set);
        }
        stats.merge_ms = t2.elapsed().as_millis() as u64;
    }

    let mut trace = trace_slot.into_inner().expect("trace slot poisoned");
    if let (Some(req), None) = (&opts.trace, &trace) {
        // The requested trial was not part of the plan (cell resident or
        // figure list disjoint): trace it standalone.
        let (_, data) = bench.run_trial_traced(&req.query, req.trial, req.config);
        trace = Some(data);
    }
    (stats, trace)
}

/// The cache file for one trial: named by the trial content hash, carrying
/// the human-readable identity for inspection and collision detection.
fn cache_path(dir: &Path, bench: &Bench, spec: &CellSpec) -> (PathBuf, String) {
    let hash = bench.trial_content_hash(&spec.query, spec.trial);
    let ident = format!("{} trial {}", spec.query.ident(), spec.trial);
    (dir.join(format!("{hash:016x}.cell")), ident)
}

fn cache_load(dir: &Path, bench: &Bench, spec: &CellSpec) -> Option<RunMetrics> {
    let (path, ident) = cache_path(dir, bench, spec);
    let text = fs::read_to_string(path).ok()?;
    let (header, body) = text.split_once('\n')?;
    // The stored identity must match the expected one exactly: a 64-bit
    // file-name collision between different cells must read as a miss,
    // never as someone else's metrics.
    if header != format!("pagesim-cell {ident}") {
        return None;
    }
    RunMetrics::from_cache_text(body)
}

fn cache_store(dir: &Path, bench: &Bench, spec: &CellSpec, metrics: &RunMetrics, tag: usize) {
    let (path, ident) = cache_path(dir, bench, spec);
    // Write-then-rename so a concurrent reader never sees a torn entry;
    // the spec index makes the temp name unique within this sweep. Cache
    // writes are best-effort: any failure just means a future miss.
    let tmp = path.with_extension(format!("tmp{tag}"));
    let write = || -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        writeln!(f, "pagesim-cell {ident}")?;
        f.write_all(metrics.to_cache_text().as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, &path)
    };
    if write().is_err() {
        let _ = fs::remove_file(&tmp);
    }
}
