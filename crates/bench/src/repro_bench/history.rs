//! The checked-in benchmark trajectory: `BENCH_pagesim.json`.
//!
//! One JSON document holding an append-only list of commit-stamped
//! entries, in the spirit of celox's `dev/bench/data.js` (SNIPPETS.md §2):
//! every `repro bench` run appends one [`BenchEntry`] carrying each
//! tracked metric's mean/stddev/95% CI and convergence flag, so the perf
//! trajectory of the repo is reviewable in version control.
//!
//! The writer is canonical — fixed key order, two-space indent, `f64`
//! shortest-roundtrip formatting — so parse → re-serialize is
//! byte-identical and diffs only ever show appended entries. Loading a
//! torn or corrupt file quarantines it (rename to `<path>.quarantine`,
//! the sweep-cache idiom) instead of failing the run or silently
//! overwriting history someone may want to recover.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use pagesim_stats::MetricEstimate;

use super::json::{self, Json};

/// History document schema version.
pub const HISTORY_SCHEMA: u32 = 1;

/// Which direction of change is an improvement for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput).
    Higher,
    /// Smaller is better (latency, wall time).
    Lower,
}

impl Direction {
    /// Stable on-disk label.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
        }
    }

    fn parse(s: &str) -> Option<Direction> {
        match s {
            "higher" => Some(Direction::Higher),
            "lower" => Some(Direction::Lower),
            _ => None,
        }
    }
}

/// One tracked metric's converged (or capped) estimate in one entry.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricRecord {
    /// Stable metric name, e.g. `pages_per_sec/tpch/clock`.
    pub name: String,
    /// Unit label, e.g. `pages/sec`.
    pub unit: String,
    /// Which way improvement points.
    pub direction: Direction,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample count.
    pub samples: u64,
    /// 95% CI lower bound.
    pub ci_lo: f64,
    /// 95% CI upper bound.
    pub ci_hi: f64,
    /// `(ci_hi - ci_lo) / |mean|` (the stopping-rule criterion).
    pub ci_width_ratio: f64,
    /// Whether the stopping rule converged before its sample cap.
    pub converged: bool,
}

impl MetricRecord {
    /// Builds a record from a stopping-rule estimate.
    pub fn from_estimate(
        name: &str,
        unit: &str,
        direction: Direction,
        est: &MetricEstimate,
    ) -> MetricRecord {
        MetricRecord {
            name: name.to_string(),
            unit: unit.to_string(),
            direction,
            mean: est.mean,
            stddev: est.stddev,
            stderr: est.stderr,
            min: est.min,
            max: est.max,
            samples: est.samples,
            ci_lo: est.ci_lo,
            ci_hi: est.ci_hi,
            ci_width_ratio: est.ci_width_ratio,
            converged: est.converged,
        }
    }

    /// Half-width of the 95% CI (the metric's noise band).
    pub fn ci_half_width(&self) -> f64 {
        (self.ci_hi - self.ci_lo) / 2.0
    }
}

/// One commit-stamped benchmark run.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Commit id the run was measured at.
    pub commit: String,
    /// Unix timestamp (seconds) of the run.
    pub timestamp_unix: u64,
    /// Bench scale name (`quick` / `default`).
    pub bench_scale: String,
    /// Master seed the probes ran under.
    pub seed: u64,
    /// Whether the binary carried the `bench-counters` feature (the
    /// fault/reclaim ns/op metrics only exist when it did).
    pub counters_enabled: bool,
    /// Every tracked metric, in matrix enumeration order.
    pub metrics: Vec<MetricRecord>,
}

impl BenchEntry {
    /// The record for `name`, if tracked in this entry.
    pub fn metric(&self, name: &str) -> Option<&MetricRecord> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// The full trajectory document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchHistory {
    /// Entries in append (chronological) order.
    pub entries: Vec<BenchEntry>,
}

/// Why a history file could not be used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoryError {
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

fn bad(msg: impl Into<String>) -> HistoryError {
    HistoryError { msg: msg.into() }
}

/// `f64` → canonical JSON token. Rust's `{}` is shortest-roundtrip decimal
/// (never scientific), so re-serializing a parsed value reproduces the
/// exact bytes. Non-finite values (a zero-mean metric's infinite width
/// ratio) become the strings `"inf"` / `"-inf"`; NaN cannot occur in a
/// well-formed record and is rejected loudly.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x == f64::INFINITY {
        "\"inf\"".to_string()
    } else if x == f64::NEG_INFINITY {
        "\"-inf\"".to_string()
    } else {
        panic!("NaN is not representable in the bench history")
    }
}

fn read_f64(v: &Json, field: &str) -> Result<f64, HistoryError> {
    if let Some(x) = v.as_f64() {
        return Ok(x);
    }
    match v.as_str() {
        Some("inf") => Ok(f64::INFINITY),
        Some("-inf") => Ok(f64::NEG_INFINITY),
        _ => Err(bad(format!("field {field:?} is not a number"))),
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, HistoryError> {
    obj.get(key).ok_or_else(|| bad(format!("missing field {key:?}")))
}

impl BenchHistory {
    /// Serializes the full document canonically. The exact byte shape is a
    /// contract: `parse(serialize(h))` gives `h` back and
    /// `serialize(parse(text))` gives `text` back for any `text` this
    /// writer produced.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {HISTORY_SCHEMA},\n"));
        out.push_str("  \"name\": \"pagesim continuous benchmarks\",\n");
        out.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"commit\": \"{}\",\n", json::escape(&e.commit)));
            out.push_str(&format!("      \"timestamp_unix\": {},\n", e.timestamp_unix));
            out.push_str(&format!(
                "      \"bench_scale\": \"{}\",\n",
                json::escape(&e.bench_scale)
            ));
            out.push_str(&format!("      \"seed\": {},\n", e.seed));
            out.push_str(&format!("      \"counters_enabled\": {},\n", e.counters_enabled));
            out.push_str("      \"metrics\": [");
            for (j, m) in e.metrics.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        {\n");
                out.push_str(&format!("          \"name\": \"{}\",\n", json::escape(&m.name)));
                out.push_str(&format!("          \"unit\": \"{}\",\n", json::escape(&m.unit)));
                out.push_str(&format!("          \"direction\": \"{}\",\n", m.direction.label()));
                out.push_str(&format!("          \"mean\": {},\n", fmt_f64(m.mean)));
                out.push_str(&format!("          \"stddev\": {},\n", fmt_f64(m.stddev)));
                out.push_str(&format!("          \"stderr\": {},\n", fmt_f64(m.stderr)));
                out.push_str(&format!("          \"min\": {},\n", fmt_f64(m.min)));
                out.push_str(&format!("          \"max\": {},\n", fmt_f64(m.max)));
                out.push_str(&format!("          \"samples\": {},\n", m.samples));
                out.push_str(&format!(
                    "          \"confidence_interval_95\": [{}, {}],\n",
                    fmt_f64(m.ci_lo),
                    fmt_f64(m.ci_hi)
                ));
                out.push_str(&format!(
                    "          \"ci_width_ratio\": {},\n",
                    fmt_f64(m.ci_width_ratio)
                ));
                out.push_str(&format!("          \"converged\": {}\n", m.converged));
                out.push_str("        }");
            }
            if !e.metrics.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a serialized history document, validating the schema.
    pub fn parse(text: &str) -> Result<BenchHistory, HistoryError> {
        let doc = json::parse(text).map_err(|e| bad(e.to_string()))?;
        let schema = field(&doc, "schema")?
            .as_u64()
            .ok_or_else(|| bad("schema is not an integer"))?;
        if schema != u64::from(HISTORY_SCHEMA) {
            return Err(bad(format!("unsupported history schema {schema}")));
        }
        let mut entries = Vec::new();
        for (i, e) in field(&doc, "entries")?
            .as_arr()
            .ok_or_else(|| bad("entries is not an array"))?
            .iter()
            .enumerate()
        {
            entries.push(Self::parse_entry(e).map_err(|err| bad(format!("entry {i}: {err}")))?);
        }
        Ok(BenchHistory { entries })
    }

    fn parse_entry(e: &Json) -> Result<BenchEntry, HistoryError> {
        let str_field = |key: &str| -> Result<String, HistoryError> {
            Ok(field(e, key)?
                .as_str()
                .ok_or_else(|| bad(format!("{key} is not a string")))?
                .to_string())
        };
        let mut metrics = Vec::new();
        for (j, m) in field(e, "metrics")?
            .as_arr()
            .ok_or_else(|| bad("metrics is not an array"))?
            .iter()
            .enumerate()
        {
            metrics.push(Self::parse_metric(m).map_err(|err| bad(format!("metric {j}: {err}")))?);
        }
        Ok(BenchEntry {
            commit: str_field("commit")?,
            timestamp_unix: field(e, "timestamp_unix")?
                .as_u64()
                .ok_or_else(|| bad("timestamp_unix is not an integer"))?,
            bench_scale: str_field("bench_scale")?,
            seed: field(e, "seed")?
                .as_u64()
                .ok_or_else(|| bad("seed is not an integer"))?,
            counters_enabled: field(e, "counters_enabled")?
                .as_bool()
                .ok_or_else(|| bad("counters_enabled is not a bool"))?,
            metrics,
        })
    }

    fn parse_metric(m: &Json) -> Result<MetricRecord, HistoryError> {
        let ci = field(m, "confidence_interval_95")?
            .as_arr()
            .ok_or_else(|| bad("confidence_interval_95 is not an array"))?;
        let [lo, hi] = ci else {
            return Err(bad("confidence_interval_95 is not a pair"));
        };
        Ok(MetricRecord {
            name: field(m, "name")?
                .as_str()
                .ok_or_else(|| bad("name is not a string"))?
                .to_string(),
            unit: field(m, "unit")?
                .as_str()
                .ok_or_else(|| bad("unit is not a string"))?
                .to_string(),
            direction: field(m, "direction")?
                .as_str()
                .and_then(Direction::parse)
                .ok_or_else(|| bad("direction is not higher|lower"))?,
            mean: read_f64(field(m, "mean")?, "mean")?,
            stddev: read_f64(field(m, "stddev")?, "stddev")?,
            stderr: read_f64(field(m, "stderr")?, "stderr")?,
            min: read_f64(field(m, "min")?, "min")?,
            max: read_f64(field(m, "max")?, "max")?,
            samples: field(m, "samples")?
                .as_u64()
                .ok_or_else(|| bad("samples is not an integer"))?,
            ci_lo: read_f64(lo, "ci_lo")?,
            ci_hi: read_f64(hi, "ci_hi")?,
            ci_width_ratio: read_f64(field(m, "ci_width_ratio")?, "ci_width_ratio")?,
            converged: field(m, "converged")?
                .as_bool()
                .ok_or_else(|| bad("converged is not a bool"))?,
        })
    }
}

/// Result of loading a history file from disk.
#[derive(Debug)]
pub struct LoadedHistory {
    /// The usable history (empty if the file was missing or quarantined).
    pub history: BenchHistory,
    /// Where a torn/corrupt file was moved, if one was found.
    pub quarantined: Option<PathBuf>,
}

/// Loads `path`. A missing file yields an empty history; an unreadable or
/// unparsable one (torn final entry, truncation, garbage) is renamed to
/// `<path>.quarantine` — the sweep-cache idiom — and reported, yielding a
/// fresh empty history so the run can still record its entry.
pub fn load(path: &Path) -> LoadedHistory {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return LoadedHistory {
                history: BenchHistory::default(),
                quarantined: None,
            }
        }
        Err(_) => return quarantine(path, "unreadable"),
    };
    match BenchHistory::parse(&text) {
        Ok(history) => LoadedHistory {
            history,
            quarantined: None,
        },
        Err(e) => quarantine(path, &e.msg),
    }
}

fn quarantine(path: &Path, why: &str) -> LoadedHistory {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".quarantine");
    let target = path.with_file_name(name);
    let moved = fs::rename(path, &target).is_ok();
    eprintln!(
        "# bench history {} is corrupt ({why}); {}",
        path.display(),
        if moved {
            format!("quarantined to {}", target.display())
        } else {
            "and could not be quarantined".to_string()
        }
    );
    LoadedHistory {
        history: BenchHistory::default(),
        quarantined: moved.then_some(target),
    }
}

/// Writes the history atomically: serialize to `<path>.tmp.<pid>`, then
/// rename over the target, so a crash can tear the temp file but never the
/// history itself.
pub fn save(history: &BenchHistory, path: &Path) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, history.serialize())?;
    fs::rename(&tmp, path)
}

/// One metric that regressed (or disappeared) relative to the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Metric name.
    pub name: String,
    /// Baseline mean.
    pub baseline_mean: f64,
    /// Current mean (`None` when the metric vanished from the matrix).
    pub current_mean: Option<f64>,
    /// Adverse movement of the mean, in the metric's unit.
    pub delta: f64,
    /// The noise band the delta had to exceed.
    pub allowed: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.current_mean {
            None => write!(f, "{}: tracked metric missing from current run", self.name),
            Some(cur) => write!(
                f,
                "{}: {} -> {} (adverse delta {:.4}, allowed {:.4})",
                self.name, self.baseline_mean, cur, self.delta, self.allowed
            ),
        }
    }
}

/// Compares `current` against `baseline`: a tracked metric regresses when
/// its mean moves in the adverse direction by more than the *combined*
/// noise band — baseline CI half-width + current CI half-width +
/// `slack * |baseline mean|`. A baseline metric missing from the current
/// run is always a failure (silently dropping a tracked metric must not
/// pass the gate); metrics new in `current` are ignored (they have no
/// baseline yet).
pub fn check(baseline: &BenchEntry, current: &BenchEntry, slack: f64) -> Vec<Regression> {
    check_with(baseline, current, |_| slack)
}

/// [`check`] with a per-metric slack: `slack_for` maps a metric name to
/// the slack fraction its gate uses. Lets the tightly-repeatable scan
/// microbenches (`*_scan_ns_per_pte/*`) run a narrower band than the
/// noisier end-to-end wall-time metrics without loosening either.
pub fn check_with(
    baseline: &BenchEntry,
    current: &BenchEntry,
    slack_for: impl Fn(&str) -> f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for base in &baseline.metrics {
        let Some(cur) = current.metric(&base.name) else {
            regressions.push(Regression {
                name: base.name.clone(),
                baseline_mean: base.mean,
                current_mean: None,
                delta: 0.0,
                allowed: 0.0,
            });
            continue;
        };
        let delta = match base.direction {
            Direction::Higher => base.mean - cur.mean,
            Direction::Lower => cur.mean - base.mean,
        };
        let allowed =
            base.ci_half_width() + cur.ci_half_width() + slack_for(&base.name) * base.mean.abs();
        if delta > allowed {
            regressions.push(Regression {
                name: base.name.clone(),
                baseline_mean: base.mean,
                current_mean: Some(cur.mean),
                delta,
                allowed,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, dir: Direction, mean: f64, half: f64) -> MetricRecord {
        MetricRecord {
            name: name.to_string(),
            unit: "u".to_string(),
            direction: dir,
            mean,
            stddev: half / 2.0,
            stderr: half / 4.0,
            min: mean - half,
            max: mean + half,
            samples: 7,
            ci_lo: mean - half,
            ci_hi: mean + half,
            ci_width_ratio: if mean == 0.0 {
                f64::INFINITY
            } else {
                2.0 * half / mean.abs()
            },
            converged: true,
        }
    }

    fn entry(metrics: Vec<MetricRecord>) -> BenchEntry {
        BenchEntry {
            commit: "deadbeef".to_string(),
            timestamp_unix: 1_754_700_000,
            bench_scale: "quick".to_string(),
            seed: 0xC0FFEE,
            counters_enabled: true,
            metrics,
        }
    }

    #[test]
    fn serialize_parse_roundtrips_structurally_and_bytewise() {
        let h = BenchHistory {
            entries: vec![
                entry(vec![
                    record("pages_per_sec/tpch/clock", Direction::Higher, 1.5e6, 2e4),
                    record("zeroish", Direction::Lower, 0.0, 0.0),
                ]),
                entry(vec![record("sweep_wall_ms/cold", Direction::Lower, 812.25, 40.0)]),
            ],
        };
        let text = h.serialize();
        let back = BenchHistory::parse(&text).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.serialize(), text, "parse -> serialize not byte-identical");
    }

    #[test]
    fn empty_history_roundtrips() {
        let h = BenchHistory::default();
        let text = h.serialize();
        assert_eq!(BenchHistory::parse(&text).unwrap(), h);
        assert_eq!(BenchHistory::parse(&text).unwrap().serialize(), text);
    }

    #[test]
    fn infinite_width_ratio_survives_the_roundtrip() {
        let mut r = record("m", Direction::Lower, 0.0, 1.0);
        r.ci_width_ratio = f64::INFINITY;
        let h = BenchHistory {
            entries: vec![entry(vec![r])],
        };
        let back = BenchHistory::parse(&h.serialize()).unwrap();
        assert!(back.entries[0].metrics[0].ci_width_ratio.is_infinite());
        assert_eq!(back.serialize(), h.serialize());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = BenchHistory::default().serialize().replace(
            "\"schema\": 1",
            "\"schema\": 99",
        );
        assert!(BenchHistory::parse(&text).is_err());
    }

    #[test]
    fn check_passes_identical_entries() {
        let e = entry(vec![
            record("a", Direction::Higher, 100.0, 5.0),
            record("b", Direction::Lower, 10.0, 1.0),
        ]);
        assert!(check(&e, &e, 0.0).is_empty());
    }

    #[test]
    fn check_flags_adverse_moves_beyond_the_band() {
        let base = entry(vec![
            record("thr", Direction::Higher, 100.0, 5.0),
            record("lat", Direction::Lower, 10.0, 1.0),
        ]);
        // Throughput down 20 with combined band 10 (+0 slack): regression.
        // Latency *down* is an improvement, never flagged.
        let cur = entry(vec![
            record("thr", Direction::Higher, 80.0, 5.0),
            record("lat", Direction::Lower, 5.0, 1.0),
        ]);
        let r = check(&base, &cur, 0.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].name, "thr");
        assert!((r[0].delta - 20.0).abs() < 1e-12);
        assert!((r[0].allowed - 10.0).abs() < 1e-12);
    }

    #[test]
    fn check_band_includes_both_cis_and_slack() {
        let base = entry(vec![record("thr", Direction::Higher, 100.0, 5.0)]);
        let cur = entry(vec![record("thr", Direction::Higher, 88.0, 4.0)]);
        // delta 12, band = 5 + 4 + slack*100.
        assert_eq!(check(&base, &cur, 0.0).len(), 1);
        assert!(check(&base, &cur, 0.05).is_empty(), "5% slack covers it");
    }

    #[test]
    fn check_with_applies_per_metric_slack() {
        let base = entry(vec![
            record("aging_scan_ns_per_pte/mglru", Direction::Lower, 10.0, 0.1),
            record("sweep_wall_ms/cold", Direction::Lower, 100.0, 1.0),
        ]);
        // Both move adversely by 15% of the baseline mean.
        let cur = entry(vec![
            record("aging_scan_ns_per_pte/mglru", Direction::Lower, 11.5, 0.1),
            record("sweep_wall_ms/cold", Direction::Lower, 115.0, 1.0),
        ]);
        // Uniform 25% slack: both pass.
        assert!(check(&base, &cur, 0.25).is_empty());
        // Scan metrics gated at 10%, the rest at 25%: only the scan
        // metric's move exceeds its band.
        let r = check_with(&base, &cur, |name| {
            if name.contains("_scan_ns_per_pte/") {
                0.10
            } else {
                0.25
            }
        });
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].name, "aging_scan_ns_per_pte/mglru");
    }

    #[test]
    fn check_fails_on_missing_tracked_metric() {
        let base = entry(vec![record("gone", Direction::Higher, 1.0, 0.1)]);
        let cur = entry(vec![]);
        let r = check(&base, &cur, 1.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].current_mean, None);
    }

    #[test]
    fn new_metrics_in_current_are_not_failures() {
        let base = entry(vec![]);
        let cur = entry(vec![record("new", Direction::Higher, 1.0, 0.1)]);
        assert!(check(&base, &cur, 0.0).is_empty());
    }
}
