//! `repro bench` — the statistically-converged benchmark matrix.
//!
//! A fixed, named matrix of performance probes over the simulator's hot
//! paths:
//!
//! * **`pages_per_sec/<wl>/<policy>`** — simulated MMU touches per host
//!   second for one fixed trial of each workload × policy cell (SSD, 50%
//!   ratio). The simulation input is identical every sample — same seed,
//!   same trial — so the samples measure pure host execution speed.
//! * **`workingset_refault_distance_p50/<wl>/<policy>`** / **`_p99`** —
//!   refault-distance percentiles (in evictions) from the same fixed
//!   trial's shadow-entry histogram. Deterministic per trial, so these
//!   gate working-set *behavior* drift rather than host speed.
//! * **`fault_path_ns_per_op/<policy>`** / **`reclaim_batch_ns_per_op/<policy>`**
//!   — mean host nanoseconds inside the kernel fault path and per reclaim
//!   batch, from the `bench-counters` side channel
//!   ([`pagesim::benchcounters`]). Only present in a counters-enabled
//!   build; figure runs compile the probes out entirely.
//! * **`sweep_wall_ms/cold`** / **`sweep_wall_ms/warm`** — wall time of a
//!   smoke-scale sweep through the real executor against an empty vs. a
//!   fully-primed cell cache (the end-to-end numbers `--jobs` and the
//!   cache exist to improve).
//!
//! Each probe is sampled under the adaptive stopping rule
//! ([`pagesim_stats::StopRule`]): keep sampling until every one of its
//! metrics has a 95% CI narrower than 10% of its mean, bounded by a
//! minimum (CI validity) and a hard cap. A capped metric is recorded with
//! `converged: false` — never silently accepted.
//!
//! Results append to the checked-in [`history`] trajectory
//! (`BENCH_pagesim.json`), and [`history::check`] gates regressions
//! against the previous entry's combined noise band.

pub mod history;
pub mod json;

use std::path::PathBuf;
// Host timing is the entire point of this module; the bench crate is
// outside pagesim-lint's sim-crate set.
use std::time::Instant;

use pagesim::benchcounters;
use pagesim::experiments::{Bench, CellQuery, Scale, Wl};
use pagesim::PolicyChoice;
use pagesim::SwapChoice;
use pagesim_stats::{Decision, Moments, StopRule};

use crate::sweep::{run_sweep, SweepOptions};
use history::{BenchEntry, Direction, MetricRecord};

/// Named sampling scale for the bench matrix.
#[derive(Clone, Copy, Debug)]
pub struct BenchScale {
    /// Scale name, recorded in each history entry.
    pub name: &'static str,
    /// Workload scale the trial probes run at.
    pub workload_scale: Scale,
    /// Minimum samples per metric before convergence may be declared.
    pub min_samples: u64,
    /// Hard cap on samples per probe.
    pub max_samples: u64,
    /// Every workload in the matrix gets a `pages_per_sec` probe per
    /// policy; `true` also covers the three YCSB mixes (default scale),
    /// `false` keeps just TPC-H + YCSB-A (quick scale).
    pub full_workload_set: bool,
}

impl BenchScale {
    /// CI smoke scale: tiny footprints, low sample cap.
    pub fn quick() -> BenchScale {
        BenchScale {
            name: "quick",
            workload_scale: Scale::smoke(),
            min_samples: 3,
            max_samples: 5,
            full_workload_set: false,
        }
    }

    /// Default scale: half footprints, converges most metrics properly.
    pub fn default_scale() -> BenchScale {
        BenchScale {
            name: "default",
            workload_scale: Scale::default_scale(),
            min_samples: 5,
            max_samples: 25,
            full_workload_set: true,
        }
    }

    /// Parses a `--bench-scale` argument.
    pub fn parse(s: &str) -> Option<BenchScale> {
        match s {
            "quick" => Some(BenchScale::quick()),
            "default" => Some(BenchScale::default_scale()),
            _ => None,
        }
    }

    /// The stopping rule at this scale, with optional CLI overrides.
    pub fn rule(&self, min: Option<u64>, max: Option<u64>) -> StopRule {
        let min = min.unwrap_or(self.min_samples).max(2);
        let max = max.unwrap_or(self.max_samples).max(min);
        StopRule::ten_percent(min, max)
    }
}

/// One tracked metric's identity within the matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSpec {
    /// Stable name, e.g. `pages_per_sec/tpch/clock`.
    pub name: String,
    /// Unit label.
    pub unit: &'static str,
    /// Which way improvement points.
    pub direction: Direction,
}

/// What a probe actually executes per sample.
#[derive(Clone, Debug)]
enum ProbeKind {
    /// One fixed simulation trial, timed on the host.
    Trial(CellQuery),
    /// One trial with the `bench-counters` side channel read out. The
    /// flag adds the word-scan metrics (aging/evict ns-per-PTE), which
    /// only MG-LRU exercises — Clock has no table-walk paths, so its
    /// scan counters would sit at a meaningless constant zero.
    Counters(CellQuery, bool),
    /// A smoke-scale sweep against an empty cache.
    SweepCold,
    /// A smoke-scale sweep against a primed cache.
    SweepWarm,
}

/// One named probe: an execution recipe plus the metrics it yields.
#[derive(Clone, Debug)]
pub struct BenchProbe {
    /// Stable probe label (progress lines, determinism tests).
    pub label: String,
    /// The metrics one execution samples, in order.
    pub metrics: Vec<MetricSpec>,
    kind: ProbeKind,
}

/// The figures the sweep wall-time probes run (smoke scale: 4 cells).
const SWEEP_PROBE_FIGS: &[&str] = &["fig2"];

/// True for the per-PTE scan microbench metrics
/// (`aging_scan_ns_per_pte/*`, `evict_scan_ns_per_pte/*`). These measure
/// pure host-side scan speed with no simulated-time noise, so the
/// regression gate holds them to a tighter slack than end-to-end metrics.
pub fn is_scan_metric(name: &str) -> bool {
    name.contains("_scan_ns_per_pte/")
}

/// Enumerates the full benchmark matrix for a scale, in canonical order.
/// Pure: two calls (any process, any `--jobs`) enumerate byte-identical
/// specs. The counter probes exist only in a `bench-counters` build.
pub fn matrix(scale: &BenchScale) -> Vec<BenchProbe> {
    let policies = [PolicyChoice::Clock, PolicyChoice::MgLruDefault];
    let workloads: &[Wl] = if scale.full_workload_set {
        &[Wl::Tpch, Wl::PageRank, Wl::YcsbA, Wl::YcsbB, Wl::YcsbC]
    } else {
        &[Wl::Tpch, Wl::YcsbA]
    };
    let mut probes = Vec::new();
    for &wl in workloads {
        for policy in policies {
            let query = CellQuery::healthy(wl, policy, SwapChoice::Ssd, 0.5);
            probes.push(BenchProbe {
                label: format!("trial/{}/{}", wl.label(), policy.label()),
                // pages_per_sec must stay the probe's first metric: the CI
                // regression-gate smoke mutates metrics[0] of the history
                // entry and expects a wall-time regression.
                metrics: vec![
                    MetricSpec {
                        name: format!("pages_per_sec/{}/{}", wl.label(), policy.label()),
                        unit: "pages/sec",
                        direction: Direction::Higher,
                    },
                    MetricSpec {
                        name: format!(
                            "workingset_refault_distance_p50/{}/{}",
                            wl.label(),
                            policy.label()
                        ),
                        unit: "evictions",
                        direction: Direction::Lower,
                    },
                    MetricSpec {
                        name: format!(
                            "workingset_refault_distance_p99/{}/{}",
                            wl.label(),
                            policy.label()
                        ),
                        unit: "evictions",
                        direction: Direction::Lower,
                    },
                ],
                kind: ProbeKind::Trial(query),
            });
        }
    }
    if benchcounters::ENABLED {
        for policy in policies {
            let query = CellQuery::healthy(Wl::Tpch, policy, SwapChoice::Ssd, 0.5);
            let scan_metrics = matches!(policy, PolicyChoice::MgLruDefault);
            let mut metrics = vec![
                MetricSpec {
                    name: format!("fault_path_ns_per_op/{}", policy.label()),
                    unit: "ns/op",
                    direction: Direction::Lower,
                },
                MetricSpec {
                    name: format!("reclaim_batch_ns_per_op/{}", policy.label()),
                    unit: "ns/op",
                    direction: Direction::Lower,
                },
            ];
            if scan_metrics {
                metrics.push(MetricSpec {
                    name: format!("aging_scan_ns_per_pte/{}", policy.label()),
                    unit: "ns/pte",
                    direction: Direction::Lower,
                });
                metrics.push(MetricSpec {
                    name: format!("evict_scan_ns_per_pte/{}", policy.label()),
                    unit: "ns/pte",
                    direction: Direction::Lower,
                });
            }
            probes.push(BenchProbe {
                label: format!("counters/{}", policy.label()),
                metrics,
                kind: ProbeKind::Counters(query, scan_metrics),
            });
        }
    }
    probes.push(BenchProbe {
        label: "sweep/cold".to_string(),
        metrics: vec![MetricSpec {
            name: "sweep_wall_ms/cold".to_string(),
            unit: "ms",
            direction: Direction::Lower,
        }],
        kind: ProbeKind::SweepCold,
    });
    probes.push(BenchProbe {
        label: "sweep/warm".to_string(),
        metrics: vec![MetricSpec {
            name: "sweep_wall_ms/warm".to_string(),
            unit: "ms",
            direction: Direction::Lower,
        }],
        kind: ProbeKind::SweepWarm,
    });
    probes
}

/// The matrix rendered as one stable line per metric:
/// `<metric-name>\t<unit>\t<direction>\t<probe-label>`. This is the byte
/// string the determinism tests compare across runs and `--jobs` values,
/// and what `repro bench --list` prints.
pub fn matrix_spec(probes: &[BenchProbe]) -> String {
    let mut out = String::new();
    for p in probes {
        for m in &p.metrics {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\n",
                m.name,
                m.unit,
                m.direction.label(),
                p.label
            ));
        }
    }
    out
}

/// Everything `run_bench` needs beyond the matrix itself.
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Sampling scale.
    pub scale: BenchScale,
    /// Override the scale's minimum samples per metric.
    pub min_samples: Option<u64>,
    /// Override the scale's sample cap.
    pub max_samples: Option<u64>,
    /// Worker threads for the sweep probes.
    pub jobs: usize,
    /// Scratch directory for the sweep probes' caches. Defaults to the
    /// system temp dir; tests point it somewhere private.
    pub scratch_dir: Option<PathBuf>,
}

/// The outcome of one full matrix run.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// The history entry (commit/timestamp stamped by the caller).
    pub entry: BenchEntry,
    /// Total wall time of the run, ms.
    pub wall_ms: u64,
    /// Total samples taken across all probes.
    pub total_samples: u64,
}

/// Runs the whole matrix: samples every probe under the stopping rule and
/// assembles the commit-stamped history entry. Progress goes to stderr.
pub fn run_bench(opts: &BenchOptions, commit: &str, timestamp_unix: u64) -> BenchReport {
    let t0 = Instant::now();
    let rule = opts.scale.rule(opts.min_samples, opts.max_samples);
    let probes = matrix(&opts.scale);
    let bench = Bench::new(opts.scale.workload_scale);
    let scratch = opts
        .scratch_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir)
        .join(format!("pagesim-bench-{}", std::process::id()));

    let mut metrics = Vec::new();
    let mut total_samples = 0u64;
    for (idx, probe) in probes.iter().enumerate() {
        let mut streams: Vec<Moments> = probe.metrics.iter().map(|_| Moments::new()).collect();
        let mut runner = ProbeRunner::new(&probe.kind, &bench, opts, &scratch, idx);
        loop {
            let samples = runner.sample();
            debug_assert_eq!(samples.len(), streams.len());
            for (m, s) in streams.iter_mut().zip(&samples) {
                m.add(*s);
            }
            total_samples += 1;
            // All metrics of a probe share its sample count; keep sampling
            // while any of them still wants more.
            let all_stopped = streams
                .iter()
                .all(|m| !matches!(rule.decide(m), Decision::Continue));
            if all_stopped {
                break;
            }
        }
        runner.cleanup();
        for (spec, m) in probe.metrics.iter().zip(&streams) {
            let est = rule.estimate(m);
            eprintln!(
                "# bench {}: mean={:.3} {} ci=[{:.3}, {:.3}] n={} converged={}",
                spec.name, est.mean, spec.unit, est.ci_lo, est.ci_hi, est.samples, est.converged
            );
            metrics.push(MetricRecord::from_estimate(
                &spec.name,
                spec.unit,
                spec.direction,
                &est,
            ));
        }
    }

    BenchReport {
        entry: BenchEntry {
            commit: commit.to_string(),
            timestamp_unix,
            bench_scale: opts.scale.name.to_string(),
            seed: opts.scale.workload_scale.seed,
            counters_enabled: benchcounters::ENABLED,
            metrics,
        },
        wall_ms: t0.elapsed().as_millis() as u64,
        total_samples,
    }
}

/// Per-probe execution state (scratch cache dirs for the sweep probes).
struct ProbeRunner<'a> {
    kind: &'a ProbeKind,
    bench: &'a Bench,
    jobs: usize,
    scratch: PathBuf,
    cold_counter: u32,
    warm_primed: bool,
}

impl<'a> ProbeRunner<'a> {
    fn new(
        kind: &'a ProbeKind,
        bench: &'a Bench,
        opts: &BenchOptions,
        scratch: &std::path::Path,
        probe_idx: usize,
    ) -> ProbeRunner<'a> {
        ProbeRunner {
            kind,
            bench,
            jobs: opts.jobs,
            scratch: scratch.join(format!("probe-{probe_idx}")),
            cold_counter: 0,
            warm_primed: false,
        }
    }

    /// Executes the probe once, returning one sample per metric.
    fn sample(&mut self) -> Vec<f64> {
        match self.kind {
            ProbeKind::Trial(query) => {
                let t0 = Instant::now();
                let metrics = self.bench.run_trial(query, 0);
                let secs = t0.elapsed().as_secs_f64().max(1e-9);
                // The refault-distance percentiles are a pure function of
                // the trial (zero variance across samples), so they
                // converge at the minimum sample count and gate any
                // deterministic drift in working-set behavior.
                let h = &metrics.workingset_refault_distance;
                let (p50, p99) = if h.count() > 0 {
                    (
                        h.value_at_percentile(50.0) as f64,
                        h.value_at_percentile(99.0) as f64,
                    )
                } else {
                    (0.0, 0.0)
                };
                vec![metrics.accesses as f64 / secs, p50, p99]
            }
            ProbeKind::Counters(query, scan_metrics) => {
                benchcounters::reset();
                let _ = self.bench.run_trial(query, 0);
                let snap = benchcounters::take();
                let mut samples = vec![
                    snap.fault_ns_per_op().unwrap_or(0.0),
                    snap.reclaim_ns_per_op().unwrap_or(0.0),
                ];
                if *scan_metrics {
                    samples.push(snap.aging_scan_ns_per_pte().unwrap_or(0.0));
                    samples.push(snap.evict_scan_ns_per_pte().unwrap_or(0.0));
                }
                samples
            }
            ProbeKind::SweepCold => {
                // A brand-new cache dir every sample: every trial misses.
                self.cold_counter += 1;
                let dir = self.scratch.join(format!("cold-{}", self.cold_counter));
                let ms = self.run_sweep_probe(&dir);
                let _ = std::fs::remove_dir_all(&dir);
                vec![ms]
            }
            ProbeKind::SweepWarm => {
                // One priming sweep, then every sample hits a full cache.
                let dir = self.scratch.join("warm");
                if !self.warm_primed {
                    self.run_sweep_probe(&dir);
                    self.warm_primed = true;
                }
                vec![self.run_sweep_probe(&dir)]
            }
        }
    }

    /// Runs the smoke-scale probe sweep into `cache_dir`; returns wall ms.
    /// A fresh `Bench` per sample: installed cells would otherwise make
    /// every later sweep a no-op plan.
    fn run_sweep_probe(&self, cache_dir: &std::path::Path) -> f64 {
        let bench = Bench::new(Scale::smoke());
        let figs: Vec<String> = SWEEP_PROBE_FIGS.iter().map(|f| f.to_string()).collect();
        let opts = SweepOptions {
            jobs: self.jobs,
            cache_dir: Some(cache_dir.to_path_buf()),
            ..SweepOptions::default()
        };
        let t0 = Instant::now();
        let _ = run_sweep(&bench, &figs, &opts);
        t0.elapsed().as_secs_f64() * 1e3
    }

    fn cleanup(&self) {
        let _ = std::fs::remove_dir_all(&self.scratch);
    }
}

/// Resolves the commit id to stamp an entry with: an explicit `--commit`
/// wins, then the `PAGESIM_COMMIT` environment variable, then
/// `git rev-parse HEAD`, then `"unknown"`.
pub fn resolve_commit(cli: Option<String>) -> String {
    if let Some(c) = cli {
        return c;
    }
    if let Ok(c) = std::env::var("PAGESIM_COMMIT") {
        if !c.trim().is_empty() {
            return c.trim().to_string();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_enumeration_is_deterministic() {
        let a = matrix_spec(&matrix(&BenchScale::quick()));
        let b = matrix_spec(&matrix(&BenchScale::quick()));
        assert_eq!(a, b);
        assert!(a.contains("pages_per_sec/tpch/clock\tpages/sec\thigher\ttrial/tpch/clock\n"));
        assert!(a.contains(
            "workingset_refault_distance_p50/tpch/clock\tevictions\tlower\ttrial/tpch/clock\n"
        ));
        assert!(a.contains(
            "workingset_refault_distance_p99/ycsb-a/mglru\tevictions\tlower\ttrial/ycsb-a/mglru\n"
        ));
        assert!(a.contains("sweep_wall_ms/cold\tms\tlower\tsweep/cold\n"));
        assert!(a.contains("sweep_wall_ms/warm\tms\tlower\tsweep/warm\n"));
        // The trial probes' first metric must remain pages_per_sec (the CI
        // gate smoke mutates the entry's metrics[0]).
        assert!(a.starts_with("pages_per_sec/"));
    }

    #[test]
    fn default_matrix_covers_all_workloads() {
        let spec = matrix_spec(&matrix(&BenchScale::default_scale()));
        for wl in ["tpch", "pagerank", "ycsb-a", "ycsb-b", "ycsb-c"] {
            for policy in ["clock", "mglru"] {
                assert!(
                    spec.contains(&format!("pages_per_sec/{wl}/{policy}\t")),
                    "missing {wl}/{policy}"
                );
            }
        }
    }

    #[test]
    fn counter_probes_follow_the_feature() {
        let spec = matrix_spec(&matrix(&BenchScale::quick()));
        assert_eq!(
            spec.contains("fault_path_ns_per_op/"),
            benchcounters::ENABLED
        );
        assert_eq!(
            spec.contains("reclaim_batch_ns_per_op/"),
            benchcounters::ENABLED
        );
        // Scan metrics ride the mglru counters probe only: Clock has no
        // table-walk scan paths.
        assert_eq!(
            spec.contains("aging_scan_ns_per_pte/mglru\tns/pte\tlower\tcounters/mglru\n"),
            benchcounters::ENABLED
        );
        assert_eq!(
            spec.contains("evict_scan_ns_per_pte/mglru\tns/pte\tlower\tcounters/mglru\n"),
            benchcounters::ENABLED
        );
        assert!(!spec.contains("aging_scan_ns_per_pte/clock"));
        assert!(!spec.contains("evict_scan_ns_per_pte/clock"));
    }

    #[test]
    fn metric_names_are_unique() {
        let probes = matrix(&BenchScale::default_scale());
        let mut names: Vec<&str> = probes
            .iter()
            .flat_map(|p| p.metrics.iter().map(|m| m.name.as_str()))
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn scale_rule_applies_overrides() {
        let s = BenchScale::quick();
        let r = s.rule(None, None);
        assert_eq!((r.min_samples, r.max_samples), (3, 5));
        let r = s.rule(Some(2), Some(100));
        assert_eq!((r.min_samples, r.max_samples), (2, 100));
        // max clamps up to min; min clamps up to 2.
        let r = s.rule(Some(1), Some(1));
        assert_eq!((r.min_samples, r.max_samples), (2, 2));
    }

    #[test]
    fn commit_resolution_prefers_cli() {
        assert_eq!(resolve_commit(Some("abc".into())), "abc");
    }
}
