//! Minimal hand-rolled JSON reader for the bench history file.
//!
//! Like the trace validator, this crate parses its own JSON without an
//! external dependency. Numbers keep their *raw lexeme* rather than being
//! eagerly converted: the history file round-trips byte-for-byte, and an
//! integer like a unix timestamp is re-parsed exactly instead of through
//! an `f64` detour.

use std::fmt;

/// A parsed JSON value. Object keys keep insertion order (the canonical
/// writer controls ordering, so order-preserving parsing is what makes
/// parse → re-serialize byte-identical).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, as its raw lexeme (e.g. `"-12.5"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value as `f64`, for [`Json::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u64`, for integral [`Json::Num`] lexemes.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `&str`, for [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as `bool`, for [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, for [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Member lookup by key, for [`Json::Obj`].
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and what went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an error
/// (that is what makes a torn/truncated history file detectable).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing data after document"));
    }
    Ok(value)
}

fn err(offset: usize, msg: &str) -> JsonError {
    JsonError {
        offset,
        msg: msg.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == digits_from {
        return Err(err(start, "invalid value"));
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf-8"))?;
    // Validate the lexeme is a number f64 accepts; the raw form is kept.
    raw.parse::<f64>().map_err(|_| err(start, "invalid number"))?;
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are not expected in our own files;
                        // map unpaired ones to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "bad utf-8"))?;
                let ch = rest.chars().next().ok_or_else(|| err(*pos, "empty"))?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, -2.5, "x\n"], "b": {"c": true, "d": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\n")
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn numbers_keep_their_raw_lexeme() {
        let v = parse("[1754700000, 0.30000000000000004]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0], Json::Num("1754700000".to_string()));
        assert_eq!(a[1], Json::Num("0.30000000000000004".to_string()));
        assert_eq!(a[0].as_u64(), Some(1_754_700_000));
    }

    #[test]
    fn truncated_documents_are_errors() {
        for torn in [
            "{\"a\": 1",
            "{\"a\": ",
            "[1, 2",
            "{\"a\": \"unterminated",
            "",
            "{\"a\": 1} trailing",
        ] {
            assert!(parse(torn).is_err(), "accepted torn input {torn:?}");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "quote\" back\\slash \n\t\u{1} end";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let Json::Obj(members) = v else { panic!() };
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
    }
}
