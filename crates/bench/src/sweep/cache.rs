//! Content-addressed on-disk trial cache, format v2: checksummed entries
//! with corrupt-entry quarantine.
//!
//! One file per trial, named by the trial content hash. Layout:
//!
//! ```text
//! pagesim-cell v2 <ident>
//! sum <fnv64 over the ident line + body, 16 hex digits>
//! <RunMetrics cache text>
//! ```
//!
//! Reads never trust the file: the checksum is verified before the body is
//! parsed, and a mismatch — truncation, a flipped byte, a torn write that
//! slipped past rename — moves the entry aside to `<name>.quarantine`
//! (preserved for inspection), logs it to stderr, and reports
//! [`CacheRead::Quarantined`] so the trial recomputes and rewrites a fresh
//! entry. A checksum-valid entry whose ident differs is someone else's
//! cell behind a 64-bit file-name collision: that is a plain miss, not
//! corruption. Pre-v2 entries (no checksum) read as stale misses and are
//! overwritten on store.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use pagesim::experiments::{Bench, CellSpec};
use pagesim::RunMetrics;

/// On-disk entry layout version (independent of the body's
/// `CACHE_FORMAT_VERSION`, which is part of the content hash).
pub const CACHE_ENTRY_VERSION: u32 = 2;

/// FNV-1a over raw bytes — the same constants the config hash uses, but
/// untagged: this guards file integrity, not field aliasing.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// What a cache read found.
#[derive(Debug)]
pub enum CacheRead {
    /// A checksum-valid entry for exactly this trial. Boxed: a hit is
    /// ~60× the size of the other variants.
    Hit(Box<RunMetrics>),
    /// No entry, a stale-format entry, or a collision with another cell.
    Miss,
    /// A corrupt entry: moved aside to `.quarantine`, caller recomputes.
    Quarantined,
}

/// The cache file for one trial: named by the trial content hash, carrying
/// the human-readable identity for inspection and collision detection.
pub fn entry_path(dir: &Path, bench: &Bench, spec: &CellSpec) -> (PathBuf, String) {
    let hash = bench.trial_content_hash(&spec.query, spec.trial);
    let ident = format!("{} trial {}", spec.query.ident(), spec.trial);
    (dir.join(format!("{hash:016x}.cell")), ident)
}

/// Reads one trial's entry, verifying the checksum before parsing.
pub fn load(dir: &Path, bench: &Bench, spec: &CellSpec) -> CacheRead {
    let (path, ident) = entry_path(dir, bench, spec);
    let Ok(text) = fs::read_to_string(&path) else {
        return CacheRead::Miss;
    };
    match parse_entry(&text, &ident) {
        Parsed::Hit(m) => CacheRead::Hit(m),
        Parsed::Miss => CacheRead::Miss,
        Parsed::Corrupt => {
            quarantine(&path);
            CacheRead::Quarantined
        }
    }
}

enum Parsed {
    Hit(Box<RunMetrics>),
    Miss,
    Corrupt,
}

fn parse_entry(text: &str, expected_ident: &str) -> Parsed {
    let Some((ident_line, rest)) = text.split_once('\n') else {
        return Parsed::Corrupt;
    };
    let Some(ident) = ident_line.strip_prefix("pagesim-cell v2 ") else {
        // A recognizable pre-v2 header is a stale format (plain miss, the
        // store path overwrites it); anything else is corruption.
        return if ident_line.starts_with("pagesim-cell ") {
            Parsed::Miss
        } else {
            Parsed::Corrupt
        };
    };
    let Some((sum_line, body)) = rest.split_once('\n') else {
        return Parsed::Corrupt;
    };
    let Some(stored_sum) = sum_line
        .strip_prefix("sum ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
    else {
        return Parsed::Corrupt;
    };
    if fnv64(format!("{ident_line}\n{body}").as_bytes()) != stored_sum {
        return Parsed::Corrupt;
    }
    // Checksum-valid but a different cell: a 64-bit file-name collision
    // must read as a miss, never as someone else's metrics.
    if ident != expected_ident {
        return Parsed::Miss;
    }
    match RunMetrics::from_cache_text(body) {
        Some(m) => Parsed::Hit(Box::new(m)),
        // A verified body that fails to parse means a writer bug, not bit
        // rot — quarantine it too so it is preserved and never re-read.
        None => Parsed::Corrupt,
    }
}

/// Writes one trial's entry. Write-then-rename so a concurrent reader
/// never sees a torn entry; the spec index makes the temp name unique
/// within this sweep. Best-effort: any failure just means a future miss.
pub fn store(dir: &Path, bench: &Bench, spec: &CellSpec, metrics: &RunMetrics, tag: usize) {
    let (path, ident) = entry_path(dir, bench, spec);
    let tmp = path.with_extension(format!("tmp{tag}"));
    let ident_line = format!("pagesim-cell v{CACHE_ENTRY_VERSION} {ident}");
    let body = metrics.to_cache_text();
    let sum = fnv64(format!("{ident_line}\n{body}").as_bytes());
    let write = || -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        writeln!(f, "{ident_line}")?;
        writeln!(f, "sum {sum:016x}")?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, &path)
    };
    if write().is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

/// Moves a corrupt entry aside (appending `.quarantine` to its name) so it
/// is preserved for inspection but never read again; the caller recomputes
/// and a fresh entry takes its place. Falls back to deletion if the rename
/// fails — re-reading known-bad bytes is the one unacceptable outcome.
fn quarantine(path: &Path) {
    let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
        return;
    };
    let qpath = path.with_file_name(format!("{name}.quarantine"));
    if fs::rename(path, &qpath).is_err() {
        let _ = fs::remove_file(path);
    }
    eprintln!("# cache: quarantined corrupt entry {}", path.display());
}

/// Deletes stale `*.tmp*` files left behind by write-then-rename sequences
/// that a crash interrupted. Runs once at sweep startup; returns how many
/// files were removed.
pub fn clean_stale_tmp(dir: &Path) -> usize {
    let Ok(rd) = fs::read_dir(dir) else { return 0 };
    let mut cleaned = 0;
    for entry in rd.flatten() {
        let path = entry.path();
        let is_tmp = path
            .file_name()
            .is_some_and(|n| n.to_string_lossy().contains(".tmp"));
        if is_tmp && path.is_file() && fs::remove_file(&path).is_ok() {
            cleaned += 1;
        }
    }
    cleaned
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive() {
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
        assert_ne!(fnv64(b""), fnv64(b"\0"));
    }

    #[test]
    fn parse_rejects_garbage_and_stale_formats() {
        assert!(matches!(parse_entry("", "x"), Parsed::Corrupt));
        assert!(matches!(
            parse_entry("pagesim-cell old-ident\nbody\n", "old-ident"),
            Parsed::Miss
        ));
        assert!(matches!(
            parse_entry("not-a-cell\nbody\n", "x"),
            Parsed::Corrupt
        ));
        assert!(matches!(
            parse_entry("pagesim-cell v2 x\nsum zz\nbody\n", "x"),
            Parsed::Corrupt
        ));
    }

    #[test]
    fn checksum_guards_ident_and_body() {
        let ident_line = "pagesim-cell v2 my-cell";
        let body = "format 1\nend\n";
        let sum = fnv64(format!("{ident_line}\n{body}").as_bytes());
        let good = format!("{ident_line}\nsum {sum:016x}\n{body}");
        // Valid checksum, wrong expected ident: collision → miss.
        assert!(matches!(parse_entry(&good, "other-cell"), Parsed::Miss));
        // Any byte flip in ident or body breaks the checksum → corrupt.
        let bad = good.replace("my-cell", "my-celL");
        assert!(matches!(parse_entry(&bad, "my-celL"), Parsed::Corrupt));
        let bad = good.replace("format 1", "format 2");
        assert!(matches!(parse_entry(&bad, "my-cell"), Parsed::Corrupt));
    }
}
