//! Append-only JSONL run journal: the sweep's checkpoint for resume.
//!
//! One line per event, flushed as written, so a killed process loses at
//! most the trial it was mid-way through:
//!
//! ```text
//! {"v":1,"kind":"run","cells":12,"trials":120,"figs":"fig1 fig2","resume":false}
//! {"v":1,"kind":"trial","hash":"89ab...","ident":"tpch/clock/Ssd/r0.50 trial 0","status":"done","attempts":1,"ms":41}
//! {"v":1,"kind":"trial","hash":"0f3c...","ident":"...","status":"failed","detail":"panic: boom","attempts":3,"ms":12}
//! {"v":1,"kind":"end","done":120,"failed":1,"aborted":false}
//! ```
//!
//! `hash` is the trial content hash ([`Bench::trial_content_hash`]): it
//! folds in config, seed, trial index, footprint and format versions, so a
//! journal from a different scale or crate version simply matches nothing
//! on resume — stale journals are harmless, never wrong. `status` is
//! `done` (metrics merged; `attempts:0` means served from cache),
//! `done-degraded` (merged, but the metrics carry a `SimError` — the fault
//! experiments plot these), or `failed` (a typed [`CellFailure`] was
//! recorded; `detail` carries the classification).
//!
//! Resume reads the journal back ([`load_prior`]); trials recorded `done`
//! whose cache entry is still present and intact are served from cache and
//! counted in `SweepStats::resumed`, everything else — failed, missing, or
//! quarantined — re-runs. Because the merge is content-keyed and
//! canonical-ordered, a resumed sweep's figure output is byte-identical to
//! an uninterrupted one.
//!
//! [`Bench::trial_content_hash`]: pagesim::experiments::Bench::trial_content_hash
//! [`CellFailure`]: pagesim::CellFailure

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Journal line format version.
pub const JOURNAL_VERSION: u32 = 1;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The journal writer. All writes are best-effort: journalling failures
/// degrade to "no checkpoint", never abort the sweep.
pub struct Journal {
    file: fs::File,
}

impl Journal {
    /// Opens the journal: truncating for a fresh run, appending when
    /// resuming (the prior run's lines are the resume state).
    pub fn open(path: &Path, resume: bool) -> Option<Journal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = fs::create_dir_all(parent);
            }
        }
        let file = if resume {
            fs::OpenOptions::new().create(true).append(true).open(path)
        } else {
            fs::File::create(path)
        };
        file.ok().map(|file| Journal { file })
    }

    fn line(&mut self, s: &str) {
        // One write_all per line keeps lines atomic enough for a local
        // file; sync_data bounds loss to the in-flight trial on a crash.
        let _ = self.file.write_all(format!("{s}\n").as_bytes());
        let _ = self.file.sync_data();
    }

    /// The run header: what was planned.
    pub fn run_header(&mut self, cells: usize, trials: usize, figs: &[String], resume: bool) {
        self.line(&format!(
            "{{\"v\":{JOURNAL_VERSION},\"kind\":\"run\",\"cells\":{cells},\"trials\":{trials},\
             \"figs\":\"{}\",\"resume\":{resume}}}",
            json_escape(&figs.join(" "))
        ));
    }

    /// One trial outcome.
    pub fn trial(
        &mut self,
        hash: u64,
        ident: &str,
        status: &str,
        detail: Option<&str>,
        attempts: u32,
        ms: u64,
    ) {
        let mut s = format!(
            "{{\"v\":{JOURNAL_VERSION},\"kind\":\"trial\",\"hash\":\"{hash:016x}\",\
             \"ident\":\"{}\",\"status\":\"{status}\"",
            json_escape(ident)
        );
        if let Some(d) = detail {
            s.push_str(&format!(",\"detail\":\"{}\"", json_escape(d)));
        }
        s.push_str(&format!(",\"attempts\":{attempts},\"ms\":{ms}}}"));
        self.line(&s);
    }

    /// The run trailer: what actually happened.
    pub fn end(&mut self, done: usize, failed: usize, aborted: bool) {
        self.line(&format!(
            "{{\"v\":{JOURNAL_VERSION},\"kind\":\"end\",\"done\":{done},\
             \"failed\":{failed},\"aborted\":{aborted}}}"
        ));
    }
}

/// What a previous run's journal says about each trial, keyed by content
/// hash. Later lines win, so a trial that failed and then succeeded on a
/// prior resume reads as done.
#[derive(Debug, Default)]
pub struct PriorRun {
    done: BTreeMap<u64, bool>,
}

impl PriorRun {
    /// Whether the journal recorded this trial as completed (merged).
    pub fn is_done(&self, hash: u64) -> bool {
        self.done.get(&hash).copied().unwrap_or(false)
    }

    /// Trials the journal knows anything about.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// True when the journal recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }
}

/// Extracts `"key":"<value>"` from a journal line. Only safe for fields
/// whose values never contain escapes (`hash`, `status`); `detail` may
/// hold escaped quotes and must not be parsed this way.
fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Reads a journal back into resume state. Unreadable files and malformed
/// lines yield an empty/partial prior — resume then just re-runs more.
pub fn load_prior(path: &Path) -> PriorRun {
    let mut prior = PriorRun::default();
    let Ok(text) = fs::read_to_string(path) else {
        return prior;
    };
    for line in text.lines() {
        if !line.contains("\"kind\":\"trial\"") {
            continue;
        }
        let Some(hash) = extract_str(line, "hash").and_then(|h| u64::from_str_radix(h, 16).ok())
        else {
            continue;
        };
        let done = matches!(extract_str(line, "status"), Some("done" | "done-degraded"));
        prior.done.insert(hash, done);
    }
    prior
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn round_trip_last_line_wins() {
        let dir = std::env::temp_dir().join(format!("pagesim-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("j.jsonl");
        {
            let mut j = Journal::open(&path, false).expect("open");
            j.run_header(2, 4, &["fig1".to_owned()], false);
            j.trial(0xA, "cell a trial 0", "failed", Some("panic: x"), 3, 10);
            j.trial(0xB, "cell a trial 1", "done", None, 1, 20);
            j.end(2, 1, true);
        }
        {
            // Resume appends; the retried trial now succeeds.
            let mut j = Journal::open(&path, true).expect("append");
            j.trial(0xA, "cell a trial 0", "done", None, 1, 12);
        }
        let prior = load_prior(&path);
        assert!(prior.is_done(0xA), "later line wins");
        assert!(prior.is_done(0xB));
        assert!(!prior.is_done(0xC));
        assert_eq!(prior.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degraded_counts_as_done() {
        let dir = std::env::temp_dir().join(format!("pagesim-journal2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("j.jsonl");
        let mut j = Journal::open(&path, false).expect("open");
        j.trial(0x1, "cell", "done-degraded", Some("sim error: deadlock"), 1, 5);
        drop(j);
        assert!(load_prior(&path).is_done(0x1));
        std::fs::remove_dir_all(&dir).ok();
    }
}
