//! The sanctioned `catch_unwind` site of the workspace.
//!
//! Per-trial isolation is the heart of the sweep's fault tolerance: a
//! panicking trial must cost exactly one trial, never the sweep. All unwind
//! catching funnels through this module so the policy is auditable in one
//! place — pagesim-lint rule L6 (`catch-unwind`) forbids `catch_unwind`
//! anywhere else in the workspace.
//!
//! Two layers:
//!
//! * [`run_isolated`] wraps a single trial attempt. A panic becomes a typed
//!   `Err(payload)` that the executor classifies and retries.
//! * [`guard`] wraps a worker's whole drain loop, as a backstop for panics
//!   in the harness itself (cache I/O, channel plumbing). A worker that
//!   dies here is respawned by the executor and its in-flight trial is
//!   requeued.
//!
//! Both use `AssertUnwindSafe`: the shared state a worker touches is either
//! non-poisoning (`parking_lot` locks), atomic, or owned per-trial, so an
//! unwind cannot leave it torn in a way a later observer could see.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs one trial attempt, converting a panic into its payload text.
pub(super) fn run_isolated<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(payload_text)
}

/// Runs a worker's drain loop, converting an escaped panic (one the
/// per-trial isolation did not already absorb) into its payload text.
pub(super) fn guard(f: impl FnOnce()) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(payload_text)
}

/// Extracts the human-readable message from a panic payload. `panic!` with
/// a literal yields `&str`, with a format string yields `String`; anything
/// else (a `panic_any` payload) gets a placeholder.
fn payload_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_passes_through() {
        assert_eq!(run_isolated(|| 42), Ok(42));
    }

    #[test]
    fn panic_becomes_payload_text() {
        let err = run_isolated(|| -> u32 { panic!("boom {}", 7) });
        assert_eq!(err, Err("boom 7".to_owned()));
        let err = run_isolated(|| -> u32 { panic!("literal") });
        assert_eq!(err, Err("literal".to_owned()));
    }

    #[test]
    fn guard_catches_loop_panics() {
        assert!(guard(|| ()).is_ok());
        assert_eq!(guard(|| panic!("late")), Err("late".to_owned()));
    }
}
