//! Deterministic parallel sweep executor with a content-addressed cell
//! cache and a crash-resilient execution layer.
//!
//! The figure drivers in `pagesim::experiments` are lazy: each calls
//! `Bench::cell` for the cells it plots and computes them on first use.
//! This module turns a figure list into an explicit work plan instead:
//!
//! 1. **Enumerate** — `pagesim::experiments::figure_cells` expands every
//!    requested figure into its grid of [`CellQuery`]s; duplicates across
//!    figures collapse on the cell content key, and each surviving cell
//!    fans out into `trials` independent [`CellSpec`]s.
//! 2. **Execute** — a pool of `jobs` worker threads drains a requeue-capable
//!    spec queue and sends each outcome over a channel. Workers first
//!    consult the on-disk cache ([`cache`]): entries are checksummed, so a
//!    verified hit skips the simulation and a corrupt entry is quarantined
//!    and recomputed. Each trial attempt runs behind [`isolation`]'s
//!    `catch_unwind`: a panic costs one attempt, not the sweep; transient
//!    failures retry up to [`SweepOptions::max_attempts`], then the trial
//!    records a typed [`FailureKind`]. A worker that dies outside per-trial
//!    isolation is respawned and its in-flight trial requeued.
//! 3. **Merge** — results are placed by spec index and folded into
//!    [`TrialSet`]s in canonical (enumeration) order, then installed into
//!    the bench. Cells missing a trial become [`CellFailure`]s instead of
//!    panics: the figure layer renders them as explicit holes. Because a
//!    trial's metrics depend only on its spec — never on scheduling —
//!    figure output is byte-identical for any `jobs` value, any cache
//!    state, and any recovered fault schedule.
//!
//! Alongside the cache, an append-only JSONL [`journal`] records every
//! trial outcome as it completes; `repro --resume` turns it into a
//! checkpoint, skipping completed trials and re-running failed or missing
//! ones. The [`chaos`] module injects seeded harness faults so tests and
//! CI can prove all of the above.
//!
//! Nothing here writes to stdout; progress and the final summary belong to
//! stderr so `repro`'s figure stream stays byte-comparable.

pub mod cache;
pub mod chaos;
mod isolation;
pub mod journal;

use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
// Wall-clock phase timing for the stderr summary only — never visible to
// the simulation (this crate is outside pagesim-lint's sim-crate set).
use std::time::Instant;

use pagesim::experiments::{figure_cells, Bench, CellQuery, CellSpec};
use pagesim::{CellFailure, FailureKind, RunMetrics, SimError, TrialSet};
use pagesim_trace::{TraceConfig, TraceData};

pub use chaos::ChaosPlan;
use chaos::ChaosState;

/// A request to trace exactly one trial during a sweep. The traced trial
/// bypasses the cache *read* (a hit would skip the simulation and produce
/// no trace) but still writes its result back, and its metrics flow into
/// the merged cells exactly like any other trial's — so the figure output
/// of a traced sweep is byte-identical to an untraced one.
#[derive(Clone, Debug)]
pub struct TraceRequest {
    /// The cell to trace.
    pub query: CellQuery,
    /// The trial index within that cell.
    pub trial: u32,
    /// Sampler and ring configuration.
    pub config: TraceConfig,
}

/// How the sweep runs: worker count, cache placement, optional tracing,
/// and the fault-tolerance knobs (journal, resume, retries, budget, chaos).
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads. `1` executes trials strictly serially.
    pub jobs: usize,
    /// Cell cache directory; `None` disables the cache entirely.
    pub cache_dir: Option<PathBuf>,
    /// Trace one trial while sweeping (`repro trace`).
    pub trace: Option<TraceRequest>,
    /// Run journal path; `None` disables journalling (and with it resume).
    pub journal: Option<PathBuf>,
    /// Treat an existing journal at [`SweepOptions::journal`] as prior
    /// progress: append to it, and count journalled-done cache hits as
    /// resumed trials.
    pub resume: bool,
    /// Attempts per trial before a panic becomes a recorded failure
    /// (minimum 1).
    pub max_attempts: u32,
    /// Deterministic per-trial budget in *simulated* nanoseconds: a trial
    /// whose simulation would exceed it is classified as a timeout failure
    /// and its truncated metrics are discarded, never merged or cached.
    /// Being sim-time, the same trial trips (or not) identically on any
    /// host at any `jobs`.
    pub trial_budget: Option<u64>,
    /// Seeded harness fault injection (tests and `repro --chaos`).
    pub chaos: Option<ChaosPlan>,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            jobs: default_jobs(),
            cache_dir: None,
            trace: None,
            journal: None,
            resume: false,
            max_attempts: 3,
            trial_budget: None,
            chaos: None,
        }
    }
}

/// The default worker count: every available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// What a sweep did, for the stderr summary and for tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Distinct cells planned (after cross-figure dedup).
    pub cells: usize,
    /// Trials planned (`cells * trials_per_cell`).
    pub trials: usize,
    /// Trials served from the on-disk cache (checksum-verified).
    pub cache_hits: usize,
    /// Trials simulated (cache disabled, cold, stale, or quarantined).
    pub cache_misses: usize,
    /// Cache hits that a resume journal had recorded as done.
    pub resumed: usize,
    /// Extra attempts spent retrying transient trial failures.
    pub retries: usize,
    /// Corrupt cache entries quarantined (then recomputed).
    pub quarantined: usize,
    /// Stale `*.tmp*` files removed from the cache dir at startup.
    pub tmp_cleaned: usize,
    /// Trials that exhausted their attempts and recorded a typed failure.
    pub failed: usize,
    /// Workers respawned after dying outside per-trial isolation.
    pub respawns: usize,
    /// Shadow entries left at end-of-run, summed over merged trials.
    pub shadow: u64,
    /// Working-set refaults (shadow-entry hits), summed over merged trials.
    pub ws_refault: u64,
    /// Wall time spent enumerating and deduplicating cells, in ms.
    pub plan_ms: u64,
    /// Wall time spent executing trials (cache reads included), in ms.
    pub exec_ms: u64,
    /// Wall time spent merging and installing results, in ms.
    pub merge_ms: u64,
}

impl SweepStats {
    /// Cache hit rate over planned trials (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.trials as f64
        }
    }
}

impl std::fmt::Display for SweepStats {
    /// One stable-format summary line, greppable by CI:
    /// `sweep cells=2 trials=6 hits=0 misses=6 hit_rate=0.000 plan_ms=0
    /// exec_ms=41 merge_ms=0 resumed=0 retries=0 quarantined=0
    /// tmp_cleaned=0 failed=0 respawns=0 shadow=0 ws_refault=0`.
    /// Tools match on the `key=value` tokens; the key set only grows.
    /// Built on [`crate::statline::StatLine`] so this line and the bench
    /// summary can never drift apart in shape.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut line = crate::statline::StatLine::new("sweep");
        line.push("cells", self.cells)
            .push("trials", self.trials)
            .push("hits", self.cache_hits)
            .push("misses", self.cache_misses)
            .push("hit_rate", format!("{:.3}", self.hit_rate()))
            .push("plan_ms", self.plan_ms)
            .push("exec_ms", self.exec_ms)
            .push("merge_ms", self.merge_ms)
            .push("resumed", self.resumed)
            .push("retries", self.retries)
            .push("quarantined", self.quarantined)
            .push("tmp_cleaned", self.tmp_cleaned)
            .push("failed", self.failed)
            .push("respawns", self.respawns)
            .push("shadow", self.shadow)
            .push("ws_refault", self.ws_refault);
        write!(f, "{line}")
    }
}

/// A cell that merged, but with at least one trial carrying a
/// [`SimError`]. Degraded cells still plot — the fault-injection figures
/// depend on it — and are surfaced here so the failure report can say
/// exactly what ran impaired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradedCell {
    /// Cell identity ([`CellQuery::ident`]).
    pub ident: String,
    /// `SimError::name()` of the first degraded trial.
    pub error: String,
    /// How many of the cell's trials ended degraded.
    pub trials: usize,
}

/// Everything a resilient sweep produced.
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// Counters for the stderr summary.
    pub stats: SweepStats,
    /// Cells that could not be completed, in canonical plan order. Empty
    /// means every planned cell merged.
    pub failures: Vec<CellFailure>,
    /// Cells that merged with `SimError`-carrying trials.
    pub degraded: Vec<DegradedCell>,
    /// The captured trace, when one was requested.
    pub trace: Option<TraceData>,
    /// True when a chaos abort stopped the sweep before merging: nothing
    /// was installed, and the journal records the partial progress for a
    /// later `--resume`.
    pub aborted: bool,
}

/// Expands `figs` into the deduplicated cell plan, in canonical order:
/// figures in the order given, each figure's grid in driver order, first
/// occurrence wins. Cells already resident in `bench` are excluded.
pub fn plan_cells(bench: &Bench, figs: &[String]) -> Vec<CellQuery> {
    // Ordered set: dedup order must be a pure function of the figure list
    // (pagesim-lint rule L1 forbids hash-ordered state on sim paths).
    let mut seen = std::collections::BTreeSet::new();
    let mut plan = Vec::new();
    for fig in figs {
        for q in figure_cells(fig) {
            if seen.insert(q.content_key()) && !bench.has_cell(&q) {
                plan.push(q);
            }
        }
    }
    plan
}

/// Expands a cell plan into per-trial work units, cell-major: the specs of
/// cell `i` occupy indices `i*trials .. (i+1)*trials`.
pub fn plan_specs(bench: &Bench, plan: &[CellQuery]) -> Vec<CellSpec> {
    let trials = bench.scale().trials;
    plan.iter()
        .flat_map(|q| {
            (0..trials).map(move |trial| CellSpec {
                query: q.clone(),
                trial,
            })
        })
        .collect()
}

/// Runs every cell the given figures need and installs the results into
/// `bench`, so the figure drivers render entirely from cache. Returns the
/// sweep statistics. Output is deterministic: for a fixed bench scale the
/// installed cells are byte-identical regardless of `jobs`, cache state,
/// or completion order. Fault-tolerance outcomes (typed failures,
/// degradation, abort) are available through [`run_sweep_resilient`].
pub fn run_sweep(bench: &Bench, figs: &[String], opts: &SweepOptions) -> SweepStats {
    run_sweep_resilient(bench, figs, opts).stats
}

/// [`run_sweep`] plus the captured trace, when `opts.trace` asked for one.
/// The trace is captured even if the traced trial's cell is outside the
/// figure plan (already resident, or not referenced by `figs`): it then
/// runs standalone after the sweep.
pub fn run_sweep_traced(
    bench: &Bench,
    figs: &[String],
    opts: &SweepOptions,
) -> (SweepStats, Option<TraceData>) {
    let outcome = run_sweep_resilient(bench, figs, opts);
    (outcome.stats, outcome.trace)
}

/// One worker-to-collector message.
enum Msg {
    /// A trial resolved: merged metrics or a recorded failure.
    Trial(usize, Box<TrialOutcome>),
    /// A worker exited. `died` means a panic escaped per-trial isolation;
    /// `in_flight` names the spec it was processing, if any.
    WorkerExit { died: bool, in_flight: Option<usize> },
}

/// Everything one trial's processing produced.
struct TrialOutcome {
    /// Merged metrics; `None` exactly when `failure` is `Some`.
    metrics: Option<RunMetrics>,
    /// The typed failure, when every attempt was exhausted or discarded.
    failure: Option<FailureKind>,
    /// Simulation attempts spent (0 for a cache hit).
    attempts: u32,
    /// Served from the on-disk cache.
    from_cache: bool,
    /// Cache hit that the resume journal had recorded as done.
    resumed: bool,
    /// Corrupt cache entries quarantined while reading this trial.
    quarantined: usize,
    /// Retries consumed by transient failures.
    retried: u32,
    /// Wall-clock spent on this trial, for the journal.
    wall_ms: u64,
}

/// Shared, read-only view the workers operate on.
struct WorkerCtx<'a> {
    bench: &'a Bench,
    opts: &'a SweepOptions,
    specs: &'a [CellSpec],
    queue: &'a parking_lot::Mutex<VecDeque<usize>>,
    abort: &'a AtomicBool,
    chaos: Option<&'a ChaosState>,
    prior: &'a journal::PriorRun,
    traced_idx: Option<usize>,
    trace_slot: &'a parking_lot::Mutex<Option<TraceData>>,
}

/// The trial content hash and human-readable identity of a spec, as used
/// by the cache and the journal.
fn spec_identity(bench: &Bench, spec: &CellSpec) -> (u64, String) {
    (
        bench.trial_content_hash(&spec.query, spec.trial),
        format!("{} trial {}", spec.query.ident(), spec.trial),
    )
}

/// [`run_sweep`] with the full fault-tolerance outcome: typed per-cell
/// failures, degraded-cell notes, and the abort flag. This is the
/// authoritative entry point; the narrower signatures delegate here.
pub fn run_sweep_resilient(bench: &Bench, figs: &[String], opts: &SweepOptions) -> SweepOutcome {
    let t0 = Instant::now();
    let plan = plan_cells(bench, figs);
    let specs = plan_specs(bench, &plan);
    let trials = bench.scale().trials as usize;
    let mut stats = SweepStats {
        cells: plan.len(),
        trials: specs.len(),
        ..SweepStats::default()
    };

    let chaos = opts.chaos.clone().map(|p| ChaosState::new(p, specs.len()));

    if let Some(dir) = &opts.cache_dir {
        // Failing to create the cache dir downgrades to cache-off rather
        // than aborting the sweep; the summary's miss count exposes it.
        let _ = fs::create_dir_all(dir);
        stats.tmp_cleaned = cache::clean_stale_tmp(dir);
        if let Some(c) = &chaos {
            c.corrupt_cache(dir);
        }
    }

    let prior = match &opts.journal {
        Some(path) if opts.resume => journal::load_prior(path),
        _ => journal::PriorRun::default(),
    };
    let mut jw = opts
        .journal
        .as_deref()
        .and_then(|p| journal::Journal::open(p, opts.resume));
    if let Some(j) = jw.as_mut() {
        j.run_header(plan.len(), specs.len(), figs, opts.resume);
    }

    // The spec the trace request names, matched on trial index plus cell
    // content key (same equality the cache uses, so label differences
    // that don't change the simulation still match).
    let traced_idx = opts.trace.as_ref().and_then(|req| {
        let req_key = req.query.content_key();
        specs
            .iter()
            .position(|s| s.trial == req.trial && s.query.content_key() == req_key)
    });
    stats.plan_ms = t0.elapsed().as_millis() as u64;

    let t1 = Instant::now();
    let trace_slot = parking_lot::Mutex::new(None::<TraceData>);
    let mut slots: Vec<Option<RunMetrics>> = vec![None; specs.len()];
    let mut spec_failures: BTreeMap<usize, (FailureKind, u32)> = BTreeMap::new();
    let abort = AtomicBool::new(false);

    if !specs.is_empty() {
        let queue = parking_lot::Mutex::new((0..specs.len()).collect::<VecDeque<usize>>());
        let ctx = WorkerCtx {
            bench,
            opts,
            specs: &specs,
            queue: &queue,
            abort: &abort,
            chaos: chaos.as_ref(),
            prior: &prior,
            traced_idx,
            trace_slot: &trace_slot,
        };
        let workers = opts.jobs.clamp(1, specs.len());
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<Msg>();
            let ctx = &ctx;
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || worker_thread(ctx, &tx));
            }
            // The collector: single-threaded owner of slots, stats, and
            // the journal. Workers always send WorkerExit last, so once
            // `live` hits zero every outcome has been received. The
            // collector retains a sender (`tx`), so `rx.recv()` cannot
            // disconnect before then.
            let mut live = workers;
            let mut done = 0usize;
            let mut deaths: BTreeMap<usize, u32> = BTreeMap::new();
            while live > 0 {
                let Ok(msg) = rx.recv() else { break };
                match msg {
                    Msg::Trial(i, out) => {
                        done += 1;
                        stats.cache_hits += out.from_cache as usize;
                        stats.resumed += out.resumed as usize;
                        stats.retries += out.retried as usize;
                        stats.quarantined += out.quarantined;
                        let (hash, ident) = spec_identity(bench, &specs[i]);
                        match out.failure {
                            Some(kind) => {
                                stats.failed += 1;
                                if let Some(j) = jw.as_mut() {
                                    j.trial(
                                        hash,
                                        &ident,
                                        "failed",
                                        Some(&kind.detail()),
                                        out.attempts,
                                        out.wall_ms,
                                    );
                                }
                                spec_failures.insert(i, (kind, out.attempts));
                            }
                            None => {
                                let degraded = out.metrics.as_ref().and_then(|m| m.error);
                                if let Some(j) = jw.as_mut() {
                                    match degraded {
                                        Some(e) => j.trial(
                                            hash,
                                            &ident,
                                            "done-degraded",
                                            Some(e.name()),
                                            out.attempts,
                                            out.wall_ms,
                                        ),
                                        None => j.trial(
                                            hash,
                                            &ident,
                                            "done",
                                            None,
                                            out.attempts,
                                            out.wall_ms,
                                        ),
                                    }
                                }
                                slots[i] = out.metrics;
                            }
                        }
                        if ctx.chaos.is_some_and(|c| c.should_abort(done)) {
                            abort.store(true, Ordering::Relaxed);
                        }
                    }
                    Msg::WorkerExit { died, in_flight } => {
                        live -= 1;
                        if let Some(i) = in_flight {
                            let d = deaths.entry(i).or_insert(0);
                            *d += 1;
                            if *d >= 2 {
                                // The same trial killed two workers: a
                                // deterministic harness-level crash a third
                                // host would not survive either. Record it
                                // instead of requeueing forever.
                                done += 1;
                                stats.failed += 1;
                                let (hash, ident) = spec_identity(bench, &specs[i]);
                                let kind = FailureKind::Panic(
                                    "trial killed its worker twice (outside per-trial isolation)"
                                        .to_owned(),
                                );
                                if let Some(j) = jw.as_mut() {
                                    j.trial(hash, &ident, "failed", Some(&kind.detail()), *d, 0);
                                }
                                spec_failures.insert(i, (kind, *d));
                            } else {
                                queue.lock().push_back(i);
                            }
                        }
                        if died && done < specs.len() && !abort.load(Ordering::Relaxed) {
                            stats.respawns += 1;
                            let tx = tx.clone();
                            scope.spawn(move || worker_thread(ctx, &tx));
                            live += 1;
                        }
                    }
                }
            }
            stats.cache_misses = done - stats.cache_hits;
        });
    }
    stats.exec_ms = t1.elapsed().as_millis() as u64;
    let aborted = abort.load(Ordering::Relaxed);

    let t2 = Instant::now();
    let mut failures: Vec<CellFailure> = Vec::new();
    let mut degraded: Vec<DegradedCell> = Vec::new();
    if !aborted {
        for (ci, q) in plan.iter().enumerate() {
            let cell_slots = &mut slots[ci * trials..(ci + 1) * trials];
            if cell_slots.iter().all(|s| s.is_some()) {
                let runs: Vec<RunMetrics> = cell_slots.iter_mut().filter_map(|s| s.take()).collect();
                for m in &runs {
                    stats.shadow += m.shadow_entries;
                    stats.ws_refault += m.workingset_refault;
                }
                let errs = runs.iter().filter(|m| m.error.is_some()).count();
                if let Some(e) = runs.iter().find_map(|m| m.error) {
                    degraded.push(DegradedCell {
                        ident: q.ident(),
                        error: e.name().to_owned(),
                        trials: errs,
                    });
                }
                bench.install_cell(q, TrialSet { runs });
            } else {
                // Typed replacement for the old panicking merge: a cell
                // missing any trial is recorded, not installed, and the
                // figure layer renders it as a hole.
                let (kind, attempts) = (ci * trials..(ci + 1) * trials)
                    .find_map(|i| spec_failures.get(&i).cloned())
                    .unwrap_or((FailureKind::Panic("trial result missing".to_owned()), 0));
                let (_, config_hash) = q.content_key();
                failures.push(CellFailure {
                    wl: q.wl,
                    config_hash,
                    ident: q.ident(),
                    kind,
                    attempts,
                });
            }
        }
    }
    stats.merge_ms = t2.elapsed().as_millis() as u64;

    if let Some(j) = jw.as_mut() {
        j.end(stats.cache_hits + stats.cache_misses, stats.failed, aborted);
    }

    // parking_lot mutexes do not poison: a caught worker panic cannot
    // cascade into this read (the old std::sync slot needed an `expect`).
    let mut trace = trace_slot.into_inner();
    if !aborted {
        if let (Some(req), None) = (&opts.trace, &trace) {
            // The requested trial was not part of the plan (cell resident
            // or figure list disjoint): trace it standalone.
            let (_, data) = bench.run_trial_traced(&req.query, req.trial, req.config);
            trace = Some(data);
        }
    }

    SweepOutcome {
        stats,
        failures,
        degraded,
        trace,
        aborted,
    }
}

/// One worker: drain the queue until it is empty or an abort is flagged.
/// The whole loop runs behind [`isolation::guard`] as a backstop — a panic
/// that escapes per-trial isolation (harness bug, cache I/O) kills only
/// this worker; the collector respawns a replacement and requeues the
/// in-flight trial.
fn worker_thread(ctx: &WorkerCtx<'_>, tx: &mpsc::Sender<Msg>) {
    let current = std::cell::Cell::new(usize::MAX);
    let run = isolation::guard(|| loop {
        if ctx.abort.load(Ordering::Relaxed) {
            break;
        }
        let next = ctx.queue.lock().pop_front();
        let Some(i) = next else { break };
        current.set(i);
        if ctx.chaos.is_some_and(|c| c.kill_worker(i)) {
            // Deliberately outside run_isolated: exercises the
            // respawn-and-requeue path end to end.
            panic!("chaos: killing worker while processing spec {i}");
        }
        let out = process_spec(ctx, i);
        current.set(usize::MAX);
        if tx.send(Msg::Trial(i, Box::new(out))).is_err() {
            break;
        }
    });
    let in_flight = match &run {
        Ok(()) => None,
        Err(_) => Some(current.get()).filter(|&i| i != usize::MAX),
    };
    let _ = tx.send(Msg::WorkerExit {
        died: run.is_err(),
        in_flight,
    });
}

/// Resolves one trial: resume/cache read, then isolated simulation
/// attempts with retry and failure classification.
fn process_spec(ctx: &WorkerCtx<'_>, i: usize) -> TrialOutcome {
    let t = Instant::now();
    let spec = &ctx.specs[i];
    let traced = ctx.traced_idx == Some(i);
    let mut out = TrialOutcome {
        metrics: None,
        failure: None,
        attempts: 0,
        from_cache: false,
        resumed: false,
        quarantined: 0,
        retried: 0,
        wall_ms: 0,
    };

    // The traced trial must actually simulate: a cache hit would produce
    // metrics but no trace.
    if !traced {
        if let Some(dir) = ctx.opts.cache_dir.as_deref() {
            match cache::load(dir, ctx.bench, spec) {
                cache::CacheRead::Hit(m) => {
                    let (hash, _) = spec_identity(ctx.bench, spec);
                    out.from_cache = true;
                    out.resumed = ctx.prior.is_done(hash);
                    out.metrics = Some(*m);
                    out.wall_ms = t.elapsed().as_millis() as u64;
                    return out;
                }
                cache::CacheRead::Quarantined => out.quarantined += 1,
                cache::CacheRead::Miss => {}
            }
        }
    }

    let max_attempts = ctx.opts.max_attempts.max(1);
    loop {
        let attempt = out.attempts;
        out.attempts += 1;
        let inject_panic = ctx.chaos.is_some_and(|c| c.inject_panic(i, attempt));
        let chaos_budget = ctx.chaos.and_then(|c| c.slow_budget(i, attempt));
        let budget = chaos_budget.or(ctx.opts.trial_budget);
        let run = isolation::run_isolated(|| {
            if inject_panic {
                panic!("chaos: injected panic (spec {i}, attempt {attempt})");
            }
            match (traced, ctx.opts.trace.as_ref()) {
                (true, Some(req)) => {
                    let (m, data) = ctx
                        .bench
                        .run_trial_traced(&spec.query, spec.trial, req.config);
                    *ctx.trace_slot.lock() = Some(data);
                    m
                }
                _ => ctx.bench.run_trial_budgeted(&spec.query, spec.trial, budget),
            }
        });
        match run {
            Err(payload) => {
                if out.attempts >= max_attempts {
                    out.failure = Some(FailureKind::Panic(payload));
                    break;
                }
                out.retried += 1; // transient until proven persistent
            }
            Ok(m) => {
                // A budget trip only counts when the budget was the binding
                // constraint: the config's own max_sim_time guard tripping
                // is plain degradation and merges below.
                let budget_bound =
                    budget.is_some_and(|b| b < spec.query.system_config().max_sim_time);
                if budget_bound && m.error == Some(SimError::SimTimeExceeded) {
                    if chaos_budget.is_some() && out.attempts < max_attempts {
                        out.retried += 1; // injected slowness is transient
                        continue;
                    }
                    // Truncated metrics are unusable: classify, discard,
                    // and never cache them under the unbudgeted hash.
                    out.failure = Some(FailureKind::Timeout);
                    break;
                }
                // Degraded (SimError-carrying) metrics merge like any other
                // result — the fault experiments plot them — and cache like
                // any other result.
                if let Some(dir) = ctx.opts.cache_dir.as_deref() {
                    cache::store(dir, ctx.bench, spec, &m, i);
                }
                out.metrics = Some(m);
                break;
            }
        }
    }
    out.wall_ms = t.elapsed().as_millis() as u64;
    out
}
