//! Test-only fault injection for the harness itself.
//!
//! PR 1 gave the *simulated system* a fault model (`FaultConfig`); this
//! module extends the same philosophy to the *sweep executor*: a seeded
//! [`ChaosPlan`] injects worker panics, slow trials, cache corruption, a
//! mid-flight worker kill, or a hard abort, so the integration tests and
//! the CI interrupted-sweep job can prove that isolation, retry,
//! quarantine, and resume actually work.
//!
//! Determinism contract: every injection site is selected from the seed
//! and the *spec index* (canonical enumeration order), never from
//! scheduling order — so a chaos sweep at `--jobs 8` injects exactly the
//! same faults as at `--jobs 1`, and its recovered output stays
//! byte-identical to a clean run.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// What to break, and where. Parsed from `repro --chaos` or built directly
/// by tests. Everything defaults to "no injection".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Selection seed for all injection sites.
    pub seed: u64,
    /// Trials that panic on their first attempt only — a retry recovers.
    pub panic_trials: usize,
    /// Trials that panic on *every* attempt — retries exhaust and the cell
    /// records a typed failure (for testing holes and failure reports).
    pub permanent_panic_trials: usize,
    /// Trials forced slow on their first attempt via a 1 ns sim-time
    /// budget; the budget trips, the attempt is discarded, and the retry
    /// runs unbudgeted.
    pub slow_trials: usize,
    /// Cache entries corrupted (one byte flipped) before the sweep starts;
    /// only meaningful on a warm cache.
    pub corrupt_entries: usize,
    /// Trials whose first processing panics *outside* per-trial isolation,
    /// killing the whole worker — exercises the respawn + requeue path.
    pub kill_workers: usize,
    /// Stop scheduling new trials once this many completed, then drain and
    /// exit without merging — simulates a mid-sweep crash for the
    /// kill-and-resume tests and CI job.
    pub abort_after: Option<usize>,
}

impl ChaosPlan {
    /// Parses the `repro --chaos` spec string: comma-separated `key=value`
    /// pairs from `seed`, `panic`, `permanent-panic`, `slow`, `corrupt`,
    /// `kill-worker`, `abort-after`. Example:
    /// `seed=7,panic=2,corrupt=1,abort-after=40`.
    pub fn parse(spec: &str) -> Option<ChaosPlan> {
        let mut plan = ChaosPlan {
            seed: 0xC4A0_5EED,
            ..ChaosPlan::default()
        };
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=')?;
            let n: u64 = value.parse().ok()?;
            match key {
                "seed" => plan.seed = n,
                "panic" => plan.panic_trials = n as usize,
                "permanent-panic" => plan.permanent_panic_trials = n as usize,
                "slow" => plan.slow_trials = n as usize,
                "corrupt" => plan.corrupt_entries = n as usize,
                "kill-worker" => plan.kill_workers = n as usize,
                "abort-after" => plan.abort_after = Some(n as usize),
                _ => return None,
            }
        }
        Some(plan)
    }
}

/// splitmix64 finalizer: a cheap, well-mixed pure function of the seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws `count` distinct indices in `0..n` from the seed, disjoint from
/// `taken` (and extending it), so the different injection kinds never
/// overlap on one trial.
fn pick(seed: u64, tag: u64, count: usize, n: usize, taken: &mut BTreeSet<usize>) -> BTreeSet<usize> {
    let mut set = BTreeSet::new();
    if n == 0 {
        return set;
    }
    let mut k = 0u64;
    while set.len() < count && taken.len() < n {
        let i = (mix(seed ^ tag.wrapping_mul(0x0100_0000_01B3) ^ k) % n as u64) as usize;
        k += 1;
        if taken.insert(i) {
            set.insert(i);
        }
    }
    set
}

/// A [`ChaosPlan`] resolved against a concrete spec list: the concrete
/// injection sites, plus the once-only bookkeeping for worker kills.
pub(super) struct ChaosState {
    plan: ChaosPlan,
    panic_set: BTreeSet<usize>,
    permanent_set: BTreeSet<usize>,
    slow_set: BTreeSet<usize>,
    kill_set: BTreeSet<usize>,
    kills_fired: parking_lot::Mutex<BTreeSet<usize>>,
}

impl ChaosState {
    pub(super) fn new(plan: ChaosPlan, n_specs: usize) -> ChaosState {
        let mut taken = BTreeSet::new();
        let panic_set = pick(plan.seed, 1, plan.panic_trials, n_specs, &mut taken);
        let permanent_set = pick(plan.seed, 2, plan.permanent_panic_trials, n_specs, &mut taken);
        let slow_set = pick(plan.seed, 3, plan.slow_trials, n_specs, &mut taken);
        let kill_set = pick(plan.seed, 4, plan.kill_workers, n_specs, &mut taken);
        ChaosState {
            plan,
            panic_set,
            permanent_set,
            slow_set,
            kill_set,
            kills_fired: parking_lot::Mutex::new(BTreeSet::new()),
        }
    }

    /// Should this attempt of this trial panic (inside isolation)?
    pub(super) fn inject_panic(&self, spec: usize, attempt: u32) -> bool {
        self.permanent_set.contains(&spec) || (attempt == 0 && self.panic_set.contains(&spec))
    }

    /// A forced sim-time budget for this attempt (1 ns trips immediately).
    pub(super) fn slow_budget(&self, spec: usize, attempt: u32) -> Option<u64> {
        (attempt == 0 && self.slow_set.contains(&spec)).then_some(1)
    }

    /// Should processing this trial kill the whole worker? Fires at most
    /// once per trial, so the requeued trial succeeds on its second host.
    pub(super) fn kill_worker(&self, spec: usize) -> bool {
        self.kill_set.contains(&spec) && self.kills_fired.lock().insert(spec)
    }

    /// Has the abort threshold been reached?
    pub(super) fn should_abort(&self, completed: usize) -> bool {
        self.plan.abort_after.is_some_and(|n| completed >= n)
    }

    /// Flips one byte near the end of `corrupt_entries` seeded-chosen
    /// `.cell` files (the tail is always inside the checksummed region, so
    /// the read path must quarantine). Returns how many were corrupted.
    pub(super) fn corrupt_cache(&self, dir: &Path) -> usize {
        if self.plan.corrupt_entries == 0 {
            return 0;
        }
        let Ok(rd) = fs::read_dir(dir) else { return 0 };
        let mut files: Vec<PathBuf> = rd
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "cell"))
            .collect();
        files.sort();
        let mut taken = BTreeSet::new();
        let chosen = pick(self.plan.seed, 5, self.plan.corrupt_entries, files.len(), &mut taken);
        let mut corrupted = 0;
        for i in chosen {
            let Ok(mut bytes) = fs::read(&files[i]) else { continue };
            if bytes.len() < 2 {
                continue;
            }
            let pos = bytes.len() - 2;
            bytes[pos] ^= 0x5A;
            if fs::write(&files[i], bytes).is_ok() {
                corrupted += 1;
            }
        }
        corrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_acceptance_spec() {
        let plan = ChaosPlan::parse("seed=7,panic=2,corrupt=1,abort-after=40").expect("valid");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panic_trials, 2);
        assert_eq!(plan.corrupt_entries, 1);
        assert_eq!(plan.abort_after, Some(40));
        assert!(ChaosPlan::parse("panic=x").is_none());
        assert!(ChaosPlan::parse("unknown=1").is_none());
    }

    #[test]
    fn injection_sites_are_deterministic_and_disjoint() {
        let plan = ChaosPlan {
            seed: 42,
            panic_trials: 3,
            permanent_panic_trials: 2,
            slow_trials: 2,
            kill_workers: 1,
            ..ChaosPlan::default()
        };
        let a = ChaosState::new(plan.clone(), 100);
        let b = ChaosState::new(plan, 100);
        assert_eq!(a.panic_set, b.panic_set);
        assert_eq!(a.slow_set, b.slow_set);
        assert_eq!(a.panic_set.len(), 3);
        assert!(a.panic_set.is_disjoint(&a.permanent_set));
        assert!(a.panic_set.is_disjoint(&a.slow_set));
        assert!(a.slow_set.is_disjoint(&a.kill_set));
    }

    #[test]
    fn transient_panics_fire_on_first_attempt_only() {
        let plan = ChaosPlan {
            panic_trials: 1,
            ..ChaosPlan::default()
        };
        let s = ChaosState::new(plan, 1);
        assert!(s.inject_panic(0, 0));
        assert!(!s.inject_panic(0, 1));
    }

    #[test]
    fn worker_kill_fires_once() {
        let plan = ChaosPlan {
            kill_workers: 1,
            ..ChaosPlan::default()
        };
        let s = ChaosState::new(plan, 1);
        assert!(s.kill_worker(0));
        assert!(!s.kill_worker(0));
    }
}
