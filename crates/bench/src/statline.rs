//! The shared one-line `key=value` stats format.
//!
//! Both the sweep summary (`sweep cells=… trials=… hits=…`) and the bench
//! summary (`bench metrics=… samples=…`) emit a single stable stderr line
//! that CI greps with patterns like ` hits=0 ` and ` resumed=[1-9]`. Having
//! two hand-rolled `write!` calls invites the two formats to drift (double
//! spaces, reordered keys, a missing trailing token breaking a ` key=v `
//! grep); this module is the one writer and the one parser, and its unit
//! tests pin the exact byte shapes CI depends on.
//!
//! Format: `<prefix> key=value key=value …` — single spaces, no trailing
//! space, keys in push order, values free of whitespace. The key set of a
//! given prefix only grows over time, never reorders.

use std::fmt;

/// Builder for one stats line: a prefix word followed by ordered
/// `key=value` fields.
#[derive(Clone, Debug)]
pub struct StatLine {
    buf: String,
}

impl StatLine {
    /// Starts a line with its prefix word (e.g. `"sweep"`).
    ///
    /// # Panics
    ///
    /// Panics if the prefix is empty or contains whitespace.
    pub fn new(prefix: &str) -> StatLine {
        assert!(
            !prefix.is_empty() && !prefix.contains(char::is_whitespace),
            "stat-line prefix must be one word"
        );
        StatLine {
            buf: prefix.to_string(),
        }
    }

    /// Appends one `key=value` field. Values are rendered with `Display`;
    /// the caller picks the formatting (e.g. pre-format floats with
    /// `format!("{:.3}", x)` for a fixed width).
    ///
    /// # Panics
    ///
    /// Panics if the key is empty or key/value contain whitespace or `=`
    /// (in the key), which would corrupt the grep-able token stream.
    pub fn push(&mut self, key: &str, value: impl fmt::Display) -> &mut StatLine {
        assert!(
            !key.is_empty() && !key.contains(char::is_whitespace) && !key.contains('='),
            "invalid stat-line key {key:?}"
        );
        let value = value.to_string();
        assert!(
            !value.contains(char::is_whitespace),
            "stat-line value for {key:?} contains whitespace: {value:?}"
        );
        self.buf.push(' ');
        self.buf.push_str(key);
        self.buf.push('=');
        self.buf.push_str(&value);
        self
    }
}

impl fmt::Display for StatLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.buf)
    }
}

/// A parsed stats line: the prefix and its fields in emission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedStatLine {
    /// The leading prefix word.
    pub prefix: String,
    /// `(key, value)` pairs in the order they appeared.
    pub fields: Vec<(String, String)>,
}

impl ParsedStatLine {
    /// Parses a line of the shared format. Returns `None` on an empty
    /// line, a field without `=`, or a duplicate key — anything a
    /// [`StatLine`] cannot have produced.
    pub fn parse(line: &str) -> Option<ParsedStatLine> {
        let line = line.trim_end_matches(['\r', '\n']);
        let mut tokens = line.split(' ');
        let prefix = tokens.next().filter(|p| !p.is_empty() && !p.contains('='))?;
        let mut fields: Vec<(String, String)> = Vec::new();
        for tok in tokens {
            let (k, v) = tok.split_once('=')?;
            if k.is_empty() || fields.iter().any(|(seen, _)| seen == k) {
                return None;
            }
            fields.push((k.to_string(), v.to_string()));
        }
        Some(ParsedStatLine {
            prefix: prefix.to_string(),
            fields,
        })
    }

    /// The value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value of `key` parsed as `u64` (the common case for counters).
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_single_spaced_ordered_line() {
        let mut l = StatLine::new("sweep");
        l.push("cells", 2).push("hit_rate", format!("{:.3}", 0.5));
        assert_eq!(l.to_string(), "sweep cells=2 hit_rate=0.500");
    }

    #[test]
    fn roundtrips_through_parser() {
        let mut l = StatLine::new("bench");
        l.push("metrics", 12).push("converged", 11).push("wall_ms", 834);
        let p = ParsedStatLine::parse(&l.to_string()).unwrap();
        assert_eq!(p.prefix, "bench");
        assert_eq!(p.get_u64("metrics"), Some(12));
        assert_eq!(p.get("missing"), None);
        assert_eq!(
            p.fields.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["metrics", "converged", "wall_ms"]
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(ParsedStatLine::parse(""), None);
        assert_eq!(ParsedStatLine::parse("sweep cells"), None); // no '='
        assert_eq!(ParsedStatLine::parse("sweep a=1 a=2"), None); // dup key
        assert_eq!(ParsedStatLine::parse("k=v a=1"), None); // prefix has '='
    }

    #[test]
    #[should_panic(expected = "contains whitespace")]
    fn rejects_whitespace_in_values() {
        StatLine::new("sweep").push("k", "a b");
    }

    /// The sweep summary's exact byte shape: the original hand-rolled
    /// key set, grown append-only (`shadow`/`ws_refault` at the end).
    #[test]
    fn sweep_stats_display_format_is_unchanged() {
        let stats = crate::SweepStats {
            cells: 2,
            trials: 6,
            cache_hits: 0,
            cache_misses: 6,
            resumed: 0,
            retries: 0,
            quarantined: 0,
            tmp_cleaned: 0,
            failed: 0,
            respawns: 0,
            shadow: 128,
            ws_refault: 9,
            plan_ms: 0,
            exec_ms: 41,
            merge_ms: 0,
        };
        assert_eq!(
            stats.to_string(),
            "sweep cells=2 trials=6 hits=0 misses=6 hit_rate=0.000 plan_ms=0 \
             exec_ms=41 merge_ms=0 resumed=0 retries=0 quarantined=0 \
             tmp_cleaned=0 failed=0 respawns=0 shadow=128 ws_refault=9"
        );
        let p = ParsedStatLine::parse(&stats.to_string()).unwrap();
        assert_eq!(p.prefix, "sweep");
        assert_eq!(p.get_u64("misses"), Some(6));
    }

    /// The exact grep patterns CI relies on (.github/workflows/ci.yml):
    /// a fully-cold sweep must contain ` hits=0 `, a fully-warm one
    /// ` misses=0 `, and a resumed one must match ` resumed=[1-9]`.
    #[test]
    fn ci_grep_patterns_match_the_emitted_bytes() {
        let mut cold = StatLine::new("sweep");
        cold.push("cells", 2)
            .push("trials", 6)
            .push("hits", 0)
            .push("misses", 6)
            .push("hit_rate", format!("{:.3}", 0.0))
            .push("plan_ms", 0u64)
            .push("exec_ms", 41u64)
            .push("merge_ms", 0u64)
            .push("resumed", 3)
            .push("retries", 0)
            .push("quarantined", 0)
            .push("tmp_cleaned", 0)
            .push("failed", 0)
            .push("respawns", 0)
            .push("shadow", 0)
            .push("ws_refault", 0);
        let line = cold.to_string();
        assert_eq!(
            line,
            "sweep cells=2 trials=6 hits=0 misses=6 hit_rate=0.000 plan_ms=0 \
             exec_ms=41 merge_ms=0 resumed=3 retries=0 quarantined=0 \
             tmp_cleaned=0 failed=0 respawns=0 shadow=0 ws_refault=0"
        );
        // ` hits=0 ` and ` misses=0 ` match with surrounding spaces even
        // mid-line (the fields are never last), and `resumed=[1-9]` only
        // matches a nonzero resumed count.
        assert!(line.contains(" hits=0 "));
        assert!(!line.replace(" misses=6 ", " misses=0 ").contains(" misses=6"));
        assert!(line.contains(" resumed=3"));
        for d in 1..=9u32 {
            let probe = format!(" resumed={d}");
            let matched = line.contains(&probe);
            assert_eq!(matched, d == 3, "digit {d}");
        }
    }
}
