//! `repro vmstat` — the `/proc/vmstat`-analog observability report.
//!
//! Renders, for every cell of one figure, the Linux-named reclaim and
//! working-set counters ([`pagesim::RunMetrics::vmstat`]) summed over the
//! cell's trials, the merged refault-distance histogram, and trial 0's
//! `lru_gen`-debugfs-style policy dump ([`Policy::introspect`]).
//!
//! The report is a pure function of the bench scale and figure name:
//! byte-identical for any `--jobs` value and any cache state (CI
//! golden-diffs `vmstat_fig1.txt`), so nothing host- or wall-clock-
//! dependent may appear here.

use pagesim::experiments::{figure_cells, Bench};
use pagesim_stats::LatencyHistogram;

/// Renders the vmstat report for `fig`. Cells not yet resident in `bench`
/// are computed on demand ([`Bench::query`]); the `repro` driver runs the
/// sweep first so rendering is pure cache reads there.
pub fn vmstat_report(bench: &Bench, fig: &str) -> String {
    let cells = figure_cells(fig);
    let mut out = String::new();
    out.push_str(&format!(
        "# pagesim vmstat — {fig} (cells: {}, trials/cell: {})\n\n",
        cells.len(),
        bench.scale().trials
    ));
    for q in &cells {
        let set = bench.query(q);
        out.push_str(&format!("cell {}\n", q.ident()));
        let mut totals: Vec<(&'static str, u64)> = Vec::new();
        let mut hist = LatencyHistogram::new();
        for run in &set.runs {
            for (i, (name, v)) in run.vmstat().into_iter().enumerate() {
                match totals.get_mut(i) {
                    Some(slot) => slot.1 += v,
                    None => totals.push((name, v)),
                }
            }
            hist.merge(&run.workingset_refault_distance);
        }
        for (name, v) in &totals {
            out.push_str(&format!("  {name} {v}\n"));
        }
        if hist.count() > 0 {
            out.push_str(&format!(
                "  workingset_refault_distance count={} p50={} p90={} p99={}\n",
                hist.count(),
                hist.value_at_percentile(50.0),
                hist.value_at_percentile(90.0),
                hist.value_at_percentile(99.0)
            ));
        } else {
            out.push_str("  workingset_refault_distance count=0\n");
        }
        if let Some(run0) = set.runs.first() {
            if !run0.lru_gen.is_empty() {
                out.push_str("  lru_gen:\n");
                for line in run0.lru_gen.lines() {
                    out.push_str(&format!("    {line}\n"));
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagesim::experiments::Scale;

    #[test]
    fn report_covers_every_cell_and_counter() {
        let bench = Bench::new(Scale::smoke());
        let report = vmstat_report(&bench, "fig1");
        for q in figure_cells("fig1") {
            assert!(report.contains(&format!("cell {}\n", q.ident())), "{}", q.ident());
        }
        for counter in [
            "pgmajfault",
            "pgscan_kswapd",
            "pgscan_direct",
            "pgsteal_anon",
            "pgsteal_file",
            "workingset_refault",
            "workingset_activate",
            "workingset_restore",
            "workingset_nodereclaim",
            "nr_shadow_entries",
            "workingset_refault_distance",
        ] {
            assert!(report.contains(&format!("  {counter} ")), "{counter}");
        }
        // Both policies dump introspection: MG-LRU generations, Clock hand.
        assert!(report.contains("    policy mglru min_seq "));
        assert!(report.contains("    policy clock hand "));
    }

    #[test]
    fn report_is_deterministic() {
        let a = vmstat_report(&Bench::new(Scale::smoke()), "fig1");
        let b = vmstat_report(&Bench::new(Scale::smoke()), "fig1");
        assert_eq!(a, b);
    }
}
