//! # pagesim-bench
//!
//! Benchmark harness for the pagesim reproduction:
//!
//! * the `repro` binary regenerates every figure of the paper
//!   (`cargo run --release -p pagesim-bench --bin repro -- --help`);
//!   scales are defined by [`pagesim::experiments::Scale`];
//! * `benches/microbench.rs` holds criterion micro-benchmarks of the core
//!   data structures (bloom filter, page lists, zipfian, compressor,
//!   reclaim paths, end-to-end runs);
//! * `benches/ablations.rs` sweeps the MG-LRU design choices DESIGN.md
//!   calls out (bloom sizing/threshold, eviction lookaround, generation
//!   count, scan modes);
//! * [`sweep`] is the deterministic parallel sweep executor behind
//!   `repro`'s `--jobs`/`--cache-dir`/`--no-cache` flags: it enumerates
//!   figure cells, runs trials on a worker pool with a content-addressed
//!   on-disk cache, and installs byte-identical results regardless of
//!   worker count. Its fault-tolerance layer (per-trial panic isolation,
//!   retries, checksummed cache with quarantine, JSONL run journal with
//!   `--resume`, seeded chaos injection) is behind
//!   [`sweep::run_sweep_resilient`].


pub mod repro_bench;
pub mod statline;
pub mod sweep;
pub mod vmstat;

pub use pagesim::experiments::Scale;
pub use statline::{ParsedStatLine, StatLine};
pub use sweep::{
    run_sweep, run_sweep_resilient, ChaosPlan, SweepOptions, SweepOutcome, SweepStats,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::smoke().trials < Scale::default_scale().trials);
        assert!(Scale::default_scale().trials < Scale::paper().trials);
        assert!(Scale::smoke().footprint < Scale::paper().footprint);
        assert_eq!(Scale::paper().trials, 25, "the paper runs 25 per cell");
    }
}
