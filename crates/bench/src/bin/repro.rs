//! `repro` — regenerates every figure of the paper.
//!
//! ```text
//! repro [--scale smoke|default|paper|paper-native] [--seed N] [--jobs N]
//!       [--cache-dir DIR | --no-cache]
//!       [--journal FILE] [--resume FILE] [--max-attempts N]
//!       [--trial-budget NS] [--chaos SPEC]
//!       [fig1 fig2 ... | faults | all]
//! repro trace <fig> [--cell N] [--trial N] [--trace-out FILE]...
//!       [--sample-interval NS] [--trace-events N] [--list]
//! repro vmstat <fig>
//! repro bench [--bench-scale quick|default] [--out FILE]
//!       [--check FILE] [--min-samples N] [--max-samples N]
//!       [--gate-slack F] [--gate-slack-scan F] [--commit SHA] [--list]
//! ```
//!
//! Each figure subcommand prints the same normalized series the
//! corresponding figure of the paper plots. Before rendering, every cell
//! the requested figures need is precomputed by the sweep executor:
//! `--jobs N` worker threads (default: all cores) drain the trial queue,
//! consulting a content-addressed cell cache (default `.pagesim-cache/`,
//! `--cache-dir` to relocate, `--no-cache` to disable). Figure output on
//! stdout is byte-identical regardless of `--jobs` and cache state; the
//! sweep summary goes to stderr.
//!
//! The `trace` subcommand runs one figure with deterministic telemetry
//! attached to a single trial (`--cell`/`--trial` pick which; `--list`
//! shows the figure's cell grid). The figure output is unchanged — the
//! traced trial produces identical metrics — and the trace is written to
//! each `--trace-out` path: `.jsonl` suffixes get JSON Lines (validated by
//! `trace-validate`), anything else gets Chrome `trace_event` JSON for
//! Perfetto / `chrome://tracing`. Default: `trace.json`.
//!
//! ## Fault tolerance
//!
//! Every trial runs isolated: a panic costs one attempt (retried up to
//! `--max-attempts`, default 3), not the run. Progress is checkpointed to
//! an append-only JSONL journal (default: `<cache-dir>/run-journal.jsonl`;
//! `--journal` to relocate) and `--resume FILE` continues an interrupted
//! run from it, producing byte-identical figure output. Cache entries are
//! checksummed; a corrupt entry is quarantined (renamed `*.quarantine`)
//! and recomputed, never parsed. Cells that still fail after retries
//! become explicit `# HOLE` comment lines in place of the affected
//! figures, a machine-readable `{"pagesim_failure_report":...}` line on
//! stderr, and a nonzero exit.
//!
//! The `vmstat` subcommand renders the `/proc/vmstat`-analog
//! observability report for one figure: per cell, the Linux-named reclaim
//! and working-set counters summed over trials, the merged
//! refault-distance histogram, and trial 0's `lru_gen`-style policy dump.
//! Like the figures, the report is byte-identical for any `--jobs` value
//! and cache state (CI golden-diffs `vmstat_fig1.txt`).
//!
//! The `bench` subcommand runs the statistically-converged benchmark
//! matrix (`pagesim_bench::repro_bench`): each metric is sampled until its
//! 95% CI is narrower than 10% of the mean (hard cap ⇒ `converged: false`)
//! and appended as a commit-stamped entry to `BENCH_pagesim.json`.
//! `--check FILE` instead compares the run against FILE's last entry and
//! fails when any tracked metric regresses beyond the combined noise band.
//!
//! Exit codes: 0 success, 2 usage, 3 completed with failed cells,
//! 4 sweep aborted before merging (chaos `abort-after`),
//! 5 bench regression gate failed (`bench --check`).
//!
//! `--chaos SPEC` injects seeded harness faults (worker panics, cache
//! corruption, forced-slow trials, worker kills, a hard abort) to exercise
//! all of the above; see `ChaosPlan::parse` for the spec grammar.

use pagesim::experiments::{self, Bench, Scale, Wl};
use pagesim::report;
use pagesim_bench::repro_bench::{self, history};
use pagesim_bench::statline::StatLine;
use pagesim_bench::sweep::{
    default_jobs, journal::json_escape, run_sweep_resilient, run_sweep_traced, ChaosPlan,
    SweepOptions, SweepOutcome, TraceRequest,
};
use pagesim_trace::TraceConfig;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale smoke|default|paper|paper-native] [--seed N] [--jobs N]\n\
         \x20            [--cache-dir DIR | --no-cache] [--journal FILE]\n\
         \x20            [--resume FILE] [--max-attempts N] [--trial-budget NS]\n\
         \x20            [--chaos SPEC] [fig1..fig12 | faults | all]\n\
         \x20      repro trace <fig> [--cell N] [--trial N] [--trace-out FILE]...\n\
         \x20            [--sample-interval NS] [--trace-events N] [--list]\n\
         \x20      repro vmstat <fig>\n\
         \x20      repro bench [--bench-scale quick|default] [--out FILE]\n\
         \x20            [--check FILE] [--min-samples N] [--max-samples N]\n\
         \x20            [--gate-slack F] [--commit SHA] [--list]\n\
         \n\
         --jobs N            sweep worker threads (default: all cores)\n\
         --cache-dir D       cell cache directory (default: .pagesim-cache)\n\
         --no-cache          disable the on-disk cell cache\n\
         --journal F         run journal path (default: <cache-dir>/run-journal.jsonl)\n\
         --resume F          resume from journal F, skipping trials it records\n\
         \x20                    as done (still verified against the cache)\n\
         --max-attempts N    attempts per trial before recording a failure (default 3)\n\
         --trial-budget NS   per-trial simulated-time budget; exceeding it is a\n\
         \x20                    timeout failure (deterministic, host-independent)\n\
         --chaos SPEC        inject seeded harness faults, e.g.\n\
         \x20                    seed=7,panic=2,corrupt=1,abort-after=40\n\
         \n\
         trace subcommand:\n\
         --cell N            cell index within the figure grid (default 0; see --list)\n\
         --trial N           trial index to trace (default 0)\n\
         --trace-out FILE    output path, repeatable; .jsonl => JSON Lines,\n\
         \x20                    otherwise Chrome trace_event (default: trace.json)\n\
         --sample-interval N sampler interval in simulated ns (default 10ms)\n\
         --trace-events N    event ring capacity (default 65536)\n\
         --list              print the figure's cells and exit\n\
         \n\
         vmstat subcommand:\n\
         \x20  per-cell Linux-named reclaim/working-set counters, merged\n\
         \x20  refault-distance histogram, and trial 0's lru_gen dump\n\
         \n\
         bench subcommand:\n\
         --bench-scale S     quick (CI smoke) or default (default: default)\n\
         --out FILE          history file to append to (default: BENCH_pagesim.json)\n\
         --check FILE        compare against FILE's last entry instead of\n\
         \x20                    appending; exit 5 on any regression beyond noise\n\
         --min-samples N     override the scale's per-metric sample minimum\n\
         --max-samples N     override the hard sample cap\n\
         --gate-slack F      extra allowance as a fraction of the baseline\n\
         \x20                    mean (default 0.25)\n\
         --gate-slack-scan F slack for the *_scan_ns_per_pte metrics\n\
         \x20                    (default: min(--gate-slack, 0.10))\n\
         --commit SHA        commit id to stamp (default: $PAGESIM_COMMIT,\n\
         \x20                    then git rev-parse HEAD)\n\
         --list              print the metric matrix spec and exit\n\
         \n\
         fig1   mean runtime & faults, MG-LRU vs Clock (SSD, 50%)\n\
         fig2   joint runtime/fault distributions, Clock vs MG-LRU\n\
         fig3   YCSB tail latencies (SSD, 50%)\n\
         fig4   MG-LRU variant means (SSD, 50%)\n\
         fig5   joint distributions across MG-LRU variants\n\
         fig6   means at 75%/90% capacity ratios\n\
         fig7   fault box-whiskers at 75%/90%\n\
         fig8   YCSB tails at 75%/90%\n\
         fig9   ZRAM mean performance\n\
         fig10  ZRAM mean faults\n\
         fig11  ZRAM vs SSD runtime/fault deltas\n\
         fig12  YCSB tails under ZRAM\n\
         faults Clock vs MG-LRU on a stalling SSD (not part of 'all')"
    );
    std::process::exit(2)
}

fn render_fig(bench: &Bench, fig: &str) -> String {
    match fig {
        "fig1" => experiments::fig1(bench).to_string(),
        "fig2" => experiments::fig2(bench).to_string(),
        "fig3" => experiments::fig3(bench).to_string(),
        "fig4" => experiments::fig4(bench).to_string(),
        "fig5" => experiments::fig5(bench).to_string(),
        "fig6" => experiments::fig6(bench).to_string(),
        "fig7" => experiments::fig7(bench).to_string(),
        "fig8" => experiments::fig8(bench).to_string(),
        "fig9" => experiments::fig9(bench).to_string(),
        "fig10" => experiments::fig10(bench).to_string(),
        "fig11" => experiments::fig11(bench).to_string(),
        "fig12" => experiments::fig12(bench).to_string(),
        "faults" => experiments::faults(bench).to_string(),
        _ => usage(),
    }
}

fn print_header(bench: &Bench, scale: Scale) {
    println!(
        "# pagesim repro — trials/cell: {}, footprint factor: {:.2}, seed: {}",
        scale.trials, scale.footprint, scale.seed
    );
    for wl in Wl::all() {
        println!("#   {} footprint: {} pages", wl.label(), bench.footprint(wl));
    }
    println!();
}

fn main() {
    let mut scale = Scale::default_scale();
    let mut figs: Vec<String> = Vec::new();
    let mut jobs = default_jobs();
    let mut cache_dir = Some(std::path::PathBuf::from(".pagesim-cache"));
    let mut journal: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut max_attempts = 3u32;
    let mut trial_budget: Option<u64> = None;
    let mut chaos: Option<ChaosPlan> = None;
    let mut trace_outs: Vec<std::path::PathBuf> = Vec::new();
    let mut cell_idx = 0usize;
    let mut trial = 0u32;
    let mut trace_cfg = TraceConfig::default();
    let mut list_cells = false;
    let mut bench_scale = repro_bench::BenchScale::default_scale();
    let mut bench_out = std::path::PathBuf::from("BENCH_pagesim.json");
    let mut bench_check: Option<std::path::PathBuf> = None;
    let mut min_samples: Option<u64> = None;
    let mut max_samples: Option<u64> = None;
    let mut gate_slack = 0.25f64;
    let mut gate_slack_scan: Option<f64> = None;
    let mut commit: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale = match v.as_str() {
                    "smoke" => Scale::smoke(),
                    "default" => Scale::default_scale(),
                    "paper" => Scale::paper(),
                    // Million-page footprints, page_compression ~ 1: for
                    // exercising the word-level scan paths at the paper's
                    // native page counts (pair with --trials 1 in CI).
                    "paper-native" => Scale::paper_native(),
                    _ => usage(),
                };
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--trials" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale.trials = v.parse().unwrap_or_else(|_| usage());
            }
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                jobs = v.parse().unwrap_or_else(|_| usage());
                if jobs == 0 {
                    usage();
                }
            }
            "--cache-dir" => {
                let v = args.next().unwrap_or_else(|| usage());
                cache_dir = Some(std::path::PathBuf::from(v));
            }
            "--no-cache" => cache_dir = None,
            "--journal" => {
                let v = args.next().unwrap_or_else(|| usage());
                journal = Some(std::path::PathBuf::from(v));
            }
            "--resume" => {
                let v = args.next().unwrap_or_else(|| usage());
                journal = Some(std::path::PathBuf::from(v));
                resume = true;
            }
            "--max-attempts" => {
                let v = args.next().unwrap_or_else(|| usage());
                max_attempts = v.parse().unwrap_or_else(|_| usage());
                if max_attempts == 0 {
                    usage();
                }
            }
            "--trial-budget" => {
                let v = args.next().unwrap_or_else(|| usage());
                trial_budget = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--chaos" => {
                let v = args.next().unwrap_or_else(|| usage());
                chaos = Some(ChaosPlan::parse(&v).unwrap_or_else(|| usage()));
            }
            "--cell" => {
                let v = args.next().unwrap_or_else(|| usage());
                cell_idx = v.parse().unwrap_or_else(|_| usage());
            }
            "--trial" => {
                let v = args.next().unwrap_or_else(|| usage());
                trial = v.parse().unwrap_or_else(|_| usage());
            }
            "--trace-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                trace_outs.push(std::path::PathBuf::from(v));
            }
            "--sample-interval" => {
                let v = args.next().unwrap_or_else(|| usage());
                trace_cfg.sample_interval = v.parse().unwrap_or_else(|_| usage());
            }
            "--trace-events" => {
                let v = args.next().unwrap_or_else(|| usage());
                trace_cfg.event_capacity = v.parse().unwrap_or_else(|_| usage());
            }
            "--list" => list_cells = true,
            "--bench-scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                bench_scale = repro_bench::BenchScale::parse(&v).unwrap_or_else(|| usage());
            }
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage());
                bench_out = std::path::PathBuf::from(v);
            }
            "--check" => {
                let v = args.next().unwrap_or_else(|| usage());
                bench_check = Some(std::path::PathBuf::from(v));
            }
            "--min-samples" => {
                let v = args.next().unwrap_or_else(|| usage());
                min_samples = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--max-samples" => {
                let v = args.next().unwrap_or_else(|| usage());
                max_samples = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--gate-slack" => {
                let v = args.next().unwrap_or_else(|| usage());
                gate_slack = v.parse().unwrap_or_else(|_| usage());
                if !(0.0..=10.0).contains(&gate_slack) {
                    usage();
                }
            }
            "--gate-slack-scan" => {
                let v = args.next().unwrap_or_else(|| usage());
                let s: f64 = v.parse().unwrap_or_else(|_| usage());
                if !(0.0..=10.0).contains(&s) {
                    usage();
                }
                gate_slack_scan = Some(s);
            }
            "--commit" => {
                let v = args.next().unwrap_or_else(|| usage());
                commit = Some(v);
            }
            "-h" | "--help" => usage(),
            other => figs.push(other.to_owned()),
        }
    }

    if figs.first().map(String::as_str) == Some("bench") {
        figs.remove(0);
        if !figs.is_empty() {
            usage();
        }
        run_bench_cmd(
            bench_scale,
            bench_out,
            bench_check,
            min_samples,
            max_samples,
            gate_slack,
            gate_slack_scan,
            commit,
            jobs,
            list_cells,
        );
        return;
    }

    if figs.first().map(String::as_str) == Some("vmstat") {
        figs.remove(0);
        let [fig] = figs.as_slice() else { usage() };
        run_vmstat(fig, scale, jobs, cache_dir);
        return;
    }

    if figs.first().map(String::as_str) == Some("trace") {
        figs.remove(0);
        let [fig] = figs.as_slice() else { usage() };
        run_trace(
            fig, scale, jobs, cache_dir, cell_idx, trial, trace_cfg, trace_outs, list_cells,
        );
        return;
    }

    if figs.is_empty() || figs.iter().any(|f| f == "all") {
        figs = (1..=12).map(|i| format!("fig{i}")).collect();
    }

    // Journalling defaults on whenever the cache does: the journal is the
    // checkpoint `--resume` needs, and it lives next to the cache entries.
    if journal.is_none() {
        journal = cache_dir.as_ref().map(|d| d.join("run-journal.jsonl"));
    }

    let bench = Bench::new(scale);
    let opts = SweepOptions {
        jobs,
        cache_dir,
        journal,
        resume,
        max_attempts,
        trial_budget,
        chaos,
        ..SweepOptions::default()
    };
    let t0 = std::time::Instant::now();
    let outcome = run_sweep_resilient(&bench, &figs, &opts);
    let stats = outcome.stats;
    eprintln!("# {stats} jobs={jobs} total_s={:.1}", t0.elapsed().as_secs_f64());

    if outcome.aborted {
        eprintln!("# sweep aborted before merging; journal records partial progress (--resume to continue)");
        print_failure_report(&outcome);
        std::process::exit(4);
    }

    print_header(&bench, scale);

    // Content keys of every cell that could not be completed: figures
    // referencing one render as explicit holes instead of panicking (or
    // silently recomputing the cell the sweep just proved uncomputable).
    let failed_keys: std::collections::BTreeMap<(Wl, u64), &pagesim::CellFailure> = outcome
        .failures
        .iter()
        .map(|f| ((f.wl, f.config_hash), f))
        .collect();
    if !failed_keys.is_empty() {
        println!("{}\n", report::incomplete_banner(failed_keys.len()));
    }

    for fig in &figs {
        let t0 = std::time::Instant::now();
        let holes: Vec<&pagesim::CellFailure> = experiments::figure_cells(fig)
            .iter()
            .filter_map(|q| failed_keys.get(&q.content_key()).copied())
            .collect();
        if holes.is_empty() {
            let body = render_fig(&bench, fig);
            println!("{body}");
        } else {
            for f in &holes {
                println!("{}", report::hole_line(fig, &f.ident, &f.kind.detail()));
            }
            println!("# ({fig} skipped: {} missing cell(s))", holes.len());
        }
        println!("# ({fig} took {:.1}s)\n", t0.elapsed().as_secs_f64());
    }

    if !outcome.failures.is_empty() || !outcome.degraded.is_empty() || stats.quarantined > 0 {
        print_failure_report(&outcome);
    }
    if !outcome.failures.is_empty() {
        std::process::exit(3);
    }
}

/// One machine-readable stderr line summarizing everything that went wrong
/// (or ran impaired): consumed by CI and by anyone scripting `repro`.
fn print_failure_report(outcome: &SweepOutcome) {
    let failures: Vec<String> = outcome
        .failures
        .iter()
        .map(|f| {
            format!(
                "{{\"ident\":\"{}\",\"kind\":\"{}\",\"detail\":\"{}\",\"attempts\":{}}}",
                json_escape(&f.ident),
                f.kind.label(),
                json_escape(&f.kind.detail()),
                f.attempts
            )
        })
        .collect();
    let degraded: Vec<String> = outcome
        .degraded
        .iter()
        .map(|d| {
            format!(
                "{{\"ident\":\"{}\",\"error\":\"{}\",\"trials\":{}}}",
                json_escape(&d.ident),
                json_escape(&d.error),
                d.trials
            )
        })
        .collect();
    eprintln!(
        "{{\"pagesim_failure_report\":{{\"aborted\":{},\"quarantined\":{},\
         \"failures\":[{}],\"degraded\":[{}]}}}}",
        outcome.aborted,
        outcome.stats.quarantined,
        failures.join(","),
        degraded.join(",")
    );
}

/// The `bench` subcommand: run the converged benchmark matrix, then either
/// append a commit-stamped entry to the history file (default) or gate the
/// run against a baseline's last entry (`--check`, exit 5 on regression).
#[allow(clippy::too_many_arguments)]
fn run_bench_cmd(
    scale: repro_bench::BenchScale,
    out: std::path::PathBuf,
    check: Option<std::path::PathBuf>,
    min_samples: Option<u64>,
    max_samples: Option<u64>,
    gate_slack: f64,
    gate_slack_scan: Option<f64>,
    commit: Option<String>,
    jobs: usize,
    list: bool,
) {
    let opts = repro_bench::BenchOptions {
        scale,
        min_samples,
        max_samples,
        jobs,
        scratch_dir: None,
    };
    let probes = repro_bench::matrix(&opts.scale);
    if list {
        print!("{}", repro_bench::matrix_spec(&probes));
        return;
    }

    // Load the gate baseline *before* the expensive run: a missing or
    // unparsable baseline is a usage error, not a quarantine case.
    let baseline = check.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("repro bench: cannot read baseline {}: {e}", path.display());
            std::process::exit(2);
        });
        let hist = history::BenchHistory::parse(&text).unwrap_or_else(|e| {
            eprintln!("repro bench: baseline {}: {e}", path.display());
            std::process::exit(2);
        });
        hist.entries.last().cloned().unwrap_or_else(|| {
            eprintln!("repro bench: baseline {} has no entries", path.display());
            std::process::exit(2);
        })
    });

    let commit = repro_bench::resolve_commit(commit);
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let report = repro_bench::run_bench(&opts, &commit, timestamp);
    let entry = &report.entry;

    let converged = entry.metrics.iter().filter(|m| m.converged).count();
    let mut line = StatLine::new("bench");
    line.push("scale", opts.scale.name)
        .push("metrics", entry.metrics.len())
        .push("converged", converged)
        .push("samples", report.total_samples)
        .push("wall_ms", report.wall_ms);
    eprintln!("# {line} jobs={jobs}");

    // Human-readable result table on stdout.
    println!(
        "# pagesim bench — scale: {}, commit: {}, seed: {}, counters: {}",
        entry.bench_scale, entry.commit, entry.seed, entry.counters_enabled
    );
    for m in &entry.metrics {
        println!(
            "{}\t{:.3} {}\t95% CI [{:.3}, {:.3}]\tn={}\tconverged={}",
            m.name, m.mean, m.unit, m.ci_lo, m.ci_hi, m.samples, m.converged
        );
    }

    match baseline {
        Some(base) => {
            // The scan microbenches repeat tightly (fixed trial, pure host
            // speed), so their gate defaults to a narrower band than the
            // end-to-end metrics'.
            let scan_slack = gate_slack_scan.unwrap_or_else(|| gate_slack.min(0.10));
            let regressions = history::check_with(&base, entry, |name| {
                if repro_bench::is_scan_metric(name) {
                    scan_slack
                } else {
                    gate_slack
                }
            });
            if regressions.is_empty() {
                println!(
                    "# bench check passed: {} tracked metric(s) within noise of {}",
                    base.metrics.len(),
                    base.commit
                );
            } else {
                for r in &regressions {
                    println!("# REGRESSION {r}");
                }
                eprintln!(
                    "# bench check FAILED: {} metric(s) regressed beyond the noise band",
                    regressions.len()
                );
                std::process::exit(5);
            }
        }
        None => {
            let loaded = history::load(&out);
            let mut hist = loaded.history;
            hist.entries.push(entry.clone());
            if let Err(e) = history::save(&hist, &out) {
                eprintln!("repro bench: cannot write {}: {e}", out.display());
                std::process::exit(1);
            }
            println!(
                "# appended entry {} to {} ({} total)",
                entry.commit,
                out.display(),
                hist.entries.len()
            );
        }
    }
}

/// The `vmstat` subcommand: sweep one figure's cells, then render the
/// `/proc/vmstat`-analog observability report on stdout. The report is a
/// pure function of scale and figure — no timing lines — so it can be
/// golden-diffed exactly like the figures themselves.
fn run_vmstat(fig: &str, scale: Scale, jobs: usize, cache_dir: Option<std::path::PathBuf>) {
    if experiments::figure_cells(fig).is_empty() {
        eprintln!("repro vmstat: figure '{fig}' has no cell grid");
        std::process::exit(2);
    }
    let bench = Bench::new(scale);
    let opts = SweepOptions {
        jobs,
        cache_dir,
        ..SweepOptions::default()
    };
    let t0 = std::time::Instant::now();
    let outcome = run_sweep_resilient(&bench, &[fig.to_owned()], &opts);
    eprintln!(
        "# {} jobs={jobs} total_s={:.1}",
        outcome.stats,
        t0.elapsed().as_secs_f64()
    );
    if !outcome.failures.is_empty() || outcome.aborted {
        // No point rendering holes: the report's counters would be partial
        // sums. Surface the failures and bail like an incomplete figure run.
        print_failure_report(&outcome);
        std::process::exit(3);
    }
    print!("{}", pagesim_bench::vmstat::vmstat_report(&bench, fig));
}

/// The `trace` subcommand: render one figure with telemetry attached to a
/// single trial, then export the trace.
#[allow(clippy::too_many_arguments)]
fn run_trace(
    fig: &str,
    scale: Scale,
    jobs: usize,
    cache_dir: Option<std::path::PathBuf>,
    cell_idx: usize,
    trial: u32,
    trace_cfg: TraceConfig,
    mut trace_outs: Vec<std::path::PathBuf>,
    list_cells: bool,
) {
    let cells = experiments::figure_cells(fig);
    if cells.is_empty() {
        eprintln!("repro trace: figure '{fig}' has no cell grid");
        std::process::exit(2);
    }
    if list_cells {
        for (i, q) in cells.iter().enumerate() {
            println!("{i}\t{}", q.ident());
        }
        return;
    }
    let Some(query) = cells.get(cell_idx) else {
        eprintln!(
            "repro trace: --cell {cell_idx} out of range ({} cells; try --list)",
            cells.len()
        );
        std::process::exit(2);
    };
    if trace_outs.is_empty() {
        trace_outs.push(std::path::PathBuf::from("trace.json"));
    }

    let bench = Bench::new(scale);
    let opts = SweepOptions {
        jobs,
        cache_dir,
        trace: Some(TraceRequest {
            query: query.clone(),
            trial,
            config: trace_cfg,
        }),
        ..SweepOptions::default()
    };
    let t0 = std::time::Instant::now();
    let (stats, trace) = run_sweep_traced(&bench, &[fig.to_owned()], &opts);
    eprintln!("# {stats} jobs={jobs} total_s={:.1}", t0.elapsed().as_secs_f64());
    let Some(trace) = trace else {
        eprintln!("repro trace: no trace captured (internal error)");
        std::process::exit(1);
    };

    // Same stdout stream as a plain figure run, so traced output can be
    // diffed line-for-line against golden figures.
    print_header(&bench, scale);
    let body = render_fig(&bench, fig);
    println!("{body}");
    println!("# ({fig} took {:.1}s)\n", t0.elapsed().as_secs_f64());

    eprintln!(
        "# trace {} samples={} events={} dropped={}",
        trace.meta.ident,
        trace.samples.len(),
        trace.events.len(),
        trace.dropped_events,
    );
    for out in &trace_outs {
        let is_jsonl = out.extension().is_some_and(|e| e == "jsonl");
        let payload = if is_jsonl {
            trace.to_jsonl()
        } else {
            trace.to_chrome_trace()
        };
        if let Err(e) = std::fs::write(out, payload) {
            eprintln!("repro trace: cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
        eprintln!(
            "# trace written: {} ({})",
            out.display(),
            if is_jsonl { "jsonl" } else { "chrome trace_event" }
        );
    }
}
