//! `repro` — regenerates every figure of the paper.
//!
//! ```text
//! repro [--scale smoke|default|paper] [--seed N] [fig1 fig2 ... | faults | all]
//! ```
//!
//! Each subcommand prints the same normalized series the corresponding
//! figure of the paper plots. Cells shared between figures run once.

use pagesim::experiments::{self, Bench, Scale, Wl};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale smoke|default|paper] [--seed N] [fig1..fig12 | faults | all]\n\
         \n\
         fig1   mean runtime & faults, MG-LRU vs Clock (SSD, 50%)\n\
         fig2   joint runtime/fault distributions, Clock vs MG-LRU\n\
         fig3   YCSB tail latencies (SSD, 50%)\n\
         fig4   MG-LRU variant means (SSD, 50%)\n\
         fig5   joint distributions across MG-LRU variants\n\
         fig6   means at 75%/90% capacity ratios\n\
         fig7   fault box-whiskers at 75%/90%\n\
         fig8   YCSB tails at 75%/90%\n\
         fig9   ZRAM mean performance\n\
         fig10  ZRAM mean faults\n\
         fig11  ZRAM vs SSD runtime/fault deltas\n\
         fig12  YCSB tails under ZRAM\n\
         faults Clock vs MG-LRU on a stalling SSD (not part of 'all')"
    );
    std::process::exit(2)
}

fn main() {
    let mut scale = Scale::default_scale();
    let mut figs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale = match v.as_str() {
                    "smoke" => Scale::smoke(),
                    "default" => Scale::default_scale(),
                    "paper" => Scale::paper(),
                    _ => usage(),
                };
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--trials" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale.trials = v.parse().unwrap_or_else(|_| usage());
            }
            "-h" | "--help" => usage(),
            other => figs.push(other.to_owned()),
        }
    }
    if figs.is_empty() || figs.iter().any(|f| f == "all") {
        figs = (1..=12).map(|i| format!("fig{i}")).collect();
    }

    let bench = Bench::new(scale);
    println!(
        "# pagesim repro — trials/cell: {}, footprint factor: {:.2}, seed: {}",
        scale.trials, scale.footprint, scale.seed
    );
    for wl in Wl::all() {
        println!("#   {} footprint: {} pages", wl.label(), bench.footprint(wl));
    }
    println!();

    for fig in &figs {
        let t0 = std::time::Instant::now();
        let body = match fig.as_str() {
            "fig1" => experiments::fig1(&bench).to_string(),
            "fig2" => experiments::fig2(&bench).to_string(),
            "fig3" => experiments::fig3(&bench).to_string(),
            "fig4" => experiments::fig4(&bench).to_string(),
            "fig5" => experiments::fig5(&bench).to_string(),
            "fig6" => experiments::fig6(&bench).to_string(),
            "fig7" => experiments::fig7(&bench).to_string(),
            "fig8" => experiments::fig8(&bench).to_string(),
            "fig9" => experiments::fig9(&bench).to_string(),
            "fig10" => experiments::fig10(&bench).to_string(),
            "fig11" => experiments::fig11(&bench).to_string(),
            "fig12" => experiments::fig12(&bench).to_string(),
            "faults" => experiments::faults(&bench).to_string(),
            _ => usage(),
        };
        println!("{body}");
        println!("# ({fig} took {:.1}s)\n", t0.elapsed().as_secs_f64());
    }
}
