//! `repro` — regenerates every figure of the paper.
//!
//! ```text
//! repro [--scale smoke|default|paper] [--seed N] [--jobs N]
//!       [--cache-dir DIR | --no-cache] [fig1 fig2 ... | faults | all]
//! ```
//!
//! Each subcommand prints the same normalized series the corresponding
//! figure of the paper plots. Before rendering, every cell the requested
//! figures need is precomputed by the sweep executor: `--jobs N` worker
//! threads (default: all cores) drain the trial queue, consulting a
//! content-addressed cell cache (default `.pagesim-cache/`, `--cache-dir`
//! to relocate, `--no-cache` to disable). Figure output on stdout is
//! byte-identical regardless of `--jobs` and cache state; the sweep
//! summary goes to stderr.

use pagesim::experiments::{self, Bench, Scale, Wl};
use pagesim_bench::sweep::{default_jobs, run_sweep, SweepOptions};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale smoke|default|paper] [--seed N] [--jobs N]\n\
         \x20            [--cache-dir DIR | --no-cache] [fig1..fig12 | faults | all]\n\
         \n\
         --jobs N       sweep worker threads (default: all cores)\n\
         --cache-dir D  cell cache directory (default: .pagesim-cache)\n\
         --no-cache     disable the on-disk cell cache\n\
         \n\
         fig1   mean runtime & faults, MG-LRU vs Clock (SSD, 50%)\n\
         fig2   joint runtime/fault distributions, Clock vs MG-LRU\n\
         fig3   YCSB tail latencies (SSD, 50%)\n\
         fig4   MG-LRU variant means (SSD, 50%)\n\
         fig5   joint distributions across MG-LRU variants\n\
         fig6   means at 75%/90% capacity ratios\n\
         fig7   fault box-whiskers at 75%/90%\n\
         fig8   YCSB tails at 75%/90%\n\
         fig9   ZRAM mean performance\n\
         fig10  ZRAM mean faults\n\
         fig11  ZRAM vs SSD runtime/fault deltas\n\
         fig12  YCSB tails under ZRAM\n\
         faults Clock vs MG-LRU on a stalling SSD (not part of 'all')"
    );
    std::process::exit(2)
}

fn main() {
    let mut scale = Scale::default_scale();
    let mut figs: Vec<String> = Vec::new();
    let mut jobs = default_jobs();
    let mut cache_dir = Some(std::path::PathBuf::from(".pagesim-cache"));
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale = match v.as_str() {
                    "smoke" => Scale::smoke(),
                    "default" => Scale::default_scale(),
                    "paper" => Scale::paper(),
                    _ => usage(),
                };
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--trials" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale.trials = v.parse().unwrap_or_else(|_| usage());
            }
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                jobs = v.parse().unwrap_or_else(|_| usage());
                if jobs == 0 {
                    usage();
                }
            }
            "--cache-dir" => {
                let v = args.next().unwrap_or_else(|| usage());
                cache_dir = Some(std::path::PathBuf::from(v));
            }
            "--no-cache" => cache_dir = None,
            "-h" | "--help" => usage(),
            other => figs.push(other.to_owned()),
        }
    }
    if figs.is_empty() || figs.iter().any(|f| f == "all") {
        figs = (1..=12).map(|i| format!("fig{i}")).collect();
    }

    let bench = Bench::new(scale);
    let opts = SweepOptions { jobs, cache_dir };
    let t0 = std::time::Instant::now();
    let stats = run_sweep(&bench, &figs, &opts);
    eprintln!(
        "# {stats}, jobs={jobs}, {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    println!(
        "# pagesim repro — trials/cell: {}, footprint factor: {:.2}, seed: {}",
        scale.trials, scale.footprint, scale.seed
    );
    for wl in Wl::all() {
        println!("#   {} footprint: {} pages", wl.label(), bench.footprint(wl));
    }
    println!();

    for fig in &figs {
        let t0 = std::time::Instant::now();
        let body = match fig.as_str() {
            "fig1" => experiments::fig1(&bench).to_string(),
            "fig2" => experiments::fig2(&bench).to_string(),
            "fig3" => experiments::fig3(&bench).to_string(),
            "fig4" => experiments::fig4(&bench).to_string(),
            "fig5" => experiments::fig5(&bench).to_string(),
            "fig6" => experiments::fig6(&bench).to_string(),
            "fig7" => experiments::fig7(&bench).to_string(),
            "fig8" => experiments::fig8(&bench).to_string(),
            "fig9" => experiments::fig9(&bench).to_string(),
            "fig10" => experiments::fig10(&bench).to_string(),
            "fig11" => experiments::fig11(&bench).to_string(),
            "fig12" => experiments::fig12(&bench).to_string(),
            "faults" => experiments::faults(&bench).to_string(),
            _ => usage(),
        };
        println!("{body}");
        println!("# ({fig} took {:.1}s)\n", t0.elapsed().as_secs_f64());
    }
}
