//! Property tests for the policy data structures and both policies.

use proptest::prelude::*;

use pagesim_mem::{
    AddressSpace, AsId, EntropyClass, LineIdx, PageArena, PageInfo, PageKey, RegionIdx, Vpn,
    WORDS_PER_REGION,
};
use pagesim_policy::memview::tests_support::FakeMem;
use pagesim_policy::{
    BloomFilter, ClockLru, CostModel, Links, MemView, MgLru, MgLruConfig, PageList, Policy,
};

/// Single-space [`MemView`] over the real word-level [`AddressSpace`]
/// bitmaps — the production fast path, driven here head-to-head against
/// [`FakeMem`], whose scans are naive per-PTE loops over `Vec<bool>`.
struct BitmapMem {
    space: AddressSpace,
}

impl BitmapMem {
    fn new(pages: u32) -> Self {
        let mut arena = PageArena::new();
        BitmapMem {
            space: AddressSpace::new(AsId(0), pages, &mut arena),
        }
    }
}

impl MemView for BitmapMem {
    fn total_pages(&self) -> u32 {
        self.space.pages()
    }

    fn page_info(&self, key: PageKey) -> PageInfo {
        PageInfo {
            as_id: AsId(0),
            vpn: key,
            file_backed: false,
            entropy: EntropyClass::Text,
        }
    }

    fn is_resident(&self, key: PageKey) -> bool {
        self.space.pte(key).present()
    }

    fn is_dirty(&self, key: PageKey) -> bool {
        self.space.pte(key).dirty()
    }

    fn rmap_test_clear_accessed(&mut self, key: PageKey) -> bool {
        self.space.test_and_clear_accessed(key)
    }

    fn scan_region(
        &mut self,
        _space: AsId,
        region: RegionIdx,
        words: &mut [u64; WORDS_PER_REGION],
    ) -> u32 {
        self.space.scan_region(region, words)
    }

    fn scan_line_mask(&mut self, _space: AsId, line: LineIdx) -> (u8, u32) {
        self.space.scan_line_mask(line)
    }

    fn key_at(&self, _space: AsId, vpn: Vpn) -> PageKey {
        vpn
    }

    fn space_count(&self) -> u16 {
        1
    }

    fn region_count(&self, _space: AsId) -> u32 {
        self.space.regions()
    }

    fn region_present_count(&self, _space: AsId, region: RegionIdx) -> u32 {
        self.space.region_present_count(region)
    }
}

proptest! {
    /// PageList behaves exactly like a VecDeque under arbitrary op
    /// sequences (push_front / push_back / pop_back / remove).
    #[test]
    fn page_list_matches_vecdeque_model(ops in prop::collection::vec((0u8..4, 0u32..32), 1..400)) {
        let mut nodes = vec![Links::default(); 32];
        let mut list = PageList::new();
        let mut model: std::collections::VecDeque<u32> = Default::default();
        for (op, key) in ops {
            match op {
                0 => {
                    if !model.contains(&key) {
                        list.push_front(&mut nodes, key);
                        model.push_front(key);
                    }
                }
                1 => {
                    if !model.contains(&key) {
                        list.push_back(&mut nodes, key);
                        model.push_back(key);
                    }
                }
                2 => {
                    prop_assert_eq!(list.pop_back(&mut nodes), model.pop_back());
                }
                _ => {
                    if let Some(pos) = model.iter().position(|&k| k == key) {
                        list.remove(&mut nodes, key);
                        model.remove(pos);
                    }
                }
            }
            prop_assert_eq!(list.len() as usize, model.len());
            prop_assert_eq!(list.front(), model.front().copied());
            prop_assert_eq!(list.back(), model.back().copied());
        }
        let order: Vec<u32> = list.iter_from_back(&nodes).collect();
        let expect: Vec<u32> = model.iter().rev().copied().collect();
        prop_assert_eq!(order, expect);
    }

    /// The bloom filter never produces a false negative.
    #[test]
    fn bloom_has_no_false_negatives(
        inserts in prop::collection::vec((0u16..8, 0u32..100_000), 1..500),
        shift in 8u32..16,
    ) {
        let mut f = BloomFilter::new(shift);
        for &(s, r) in &inserts {
            f.insert(AsId(s), r);
        }
        for &(s, r) in &inserts {
            prop_assert!(f.contains(AsId(s), r));
        }
    }

    /// MG-LRU stays coherent under arbitrary fault/access/reclaim/aging
    /// sequences: victims are unique, resident, and never re-selected
    /// while absent; tracked-page accounting matches.
    #[test]
    fn mglru_invariants_under_random_ops(
        ops in prop::collection::vec((0u8..5, 0u32..64), 1..300),
        seed in 0u64..1000,
    ) {
        let pages = 64u32;
        let mut mem = FakeMem::new(pages);
        let mut lru = MgLru::new(
            pages,
            MgLruConfig { seed, ..MgLruConfig::kernel_default() },
            CostModel::default(),
        );
        let mut resident = vec![false; pages as usize];
        for (op, key) in ops {
            match op {
                0 => {
                    // fault in
                    if !resident[key as usize] {
                        mem.set_resident(key, true);
                        mem.set_accessed(key, true);
                        resident[key as usize] = true;
                        lru.on_page_resident(key, false, &mut mem);
                    }
                }
                1 => {
                    // touch
                    if resident[key as usize] {
                        mem.set_accessed(key, true);
                    }
                }
                2 => {
                    // reclaim a few
                    let out = lru.reclaim(4, &mut mem);
                    let mut seen = std::collections::HashSet::new();
                    for &v in &out.victims {
                        prop_assert!(seen.insert(v), "duplicate victim {v}");
                        prop_assert!(resident[v as usize], "victim {v} not resident");
                        resident[v as usize] = false;
                        mem.set_resident(v, false);
                        lru.on_page_evicted(v, &mut mem);
                    }
                }
                3 => {
                    let _ = lru.age_once(&mut mem);
                }
                _ => {
                    if resident[key as usize] {
                        lru.on_fd_access(key, &mut mem);
                    }
                }
            }
            prop_assert!(lru.nr_gens() >= 2);
            prop_assert!(lru.max_seq() >= lru.min_seq());
        }
    }

    /// Clock never selects a non-resident or duplicate victim either.
    #[test]
    fn clock_victims_are_valid(ops in prop::collection::vec((0u8..3, 0u32..64), 1..300)) {
        let pages = 64u32;
        let mut mem = FakeMem::new(pages);
        let mut clock = ClockLru::new(pages, CostModel::default());
        let mut resident = vec![false; pages as usize];
        for (op, key) in ops {
            match op {
                0 => {
                    if !resident[key as usize] {
                        mem.set_resident(key, true);
                        resident[key as usize] = true;
                        clock.on_page_resident(key, false, &mut mem);
                    }
                }
                1 => {
                    if resident[key as usize] {
                        mem.set_accessed(key, true);
                    }
                }
                _ => {
                    let out = clock.reclaim(4, &mut mem);
                    let mut seen = std::collections::HashSet::new();
                    for &v in &out.victims {
                        prop_assert!(seen.insert(v));
                        prop_assert!(resident[v as usize]);
                        resident[v as usize] = false;
                        mem.set_resident(v, false);
                        clock.on_page_evicted(v, &mut mem);
                    }
                }
            }
            let listed = clock.active_len() + clock.inactive_len();
            let live = resident.iter().filter(|&&r| r).count() as u32;
            prop_assert_eq!(listed, live, "list accounting drifted");
        }
    }

    /// Hot pages survive, cold pages go: for any split of pages into hot
    /// (always re-accessed) and cold, repeated reclaim rounds never leave
    /// a cold page resident while evicting all hot ones.
    #[test]
    fn mglru_eventually_prefers_cold_victims(hot_mask in 0u64..u64::MAX, seed in 0u64..64) {
        let pages = 64u32;
        let mut mem = FakeMem::new(pages);
        let mut lru = MgLru::new(
            pages,
            MgLruConfig { seed, ..MgLruConfig::kernel_default() },
            CostModel::default(),
        );
        for k in 0..pages {
            mem.set_resident(k, true);
            lru.on_page_resident(k, false, &mut mem);
        }
        let hot: Vec<u32> = (0..pages).filter(|&k| hot_mask & (1 << k) != 0).collect();
        prop_assume!(hot.len() <= 48); // leave something evictable
        let mut evicted_hot = 0u32;
        let mut evicted_cold = 0u32;
        for _ in 0..6 {
            for &h in &hot {
                if mem.is_resident(h) {
                    mem.set_accessed(h, true);
                }
            }
            lru.age_once(&mut mem);
            let out = lru.reclaim(4, &mut mem);
            for &v in &out.victims {
                if hot.contains(&v) {
                    evicted_hot += 1;
                } else {
                    evicted_cold += 1;
                }
                mem.set_resident(v, false);
                lru.on_page_evicted(v, &mut mem);
            }
        }
        // The policy must show *preference*: cold evictions dominate.
        if evicted_cold + evicted_hot > 8 {
            prop_assert!(
                evicted_cold >= evicted_hot,
                "evicted {evicted_hot} hot vs {evicted_cold} cold"
            );
        }
    }
}

proptest! {
    /// Observational equivalence of the word-level scan paths: MG-LRU
    /// driven over the real bitmap-backed [`AddressSpace`] makes byte-for-
    /// byte the same decisions — victims, order, scan/promotion counters,
    /// charged CPU — as over the naive per-PTE [`FakeMem`] reference,
    /// under arbitrary fault/touch/reclaim/age interleavings.
    #[test]
    fn mglru_word_scans_match_per_pte_reference(
        ops in prop::collection::vec((0u8..5, 0u32..640), 1..250),
        seed in 0u64..64,
    ) {
        let pages = 640u32; // > one region: exercises region stride + tail
        let mut fake = FakeMem::new(pages);
        let mut real = BitmapMem::new(pages);
        let cfg = MgLruConfig { seed, ..MgLruConfig::kernel_default() };
        let mut lru_f = MgLru::new(pages, cfg, CostModel::default());
        let mut lru_r = MgLru::new(pages, cfg, CostModel::default());
        let mut resident = vec![false; pages as usize];
        for (op, key) in ops {
            match op {
                0 => {
                    if !resident[key as usize] {
                        resident[key as usize] = true;
                        fake.set_resident(key, true);
                        fake.set_accessed(key, true);
                        real.space.map(key, key);
                        real.space.mark_accessed(key, false);
                        lru_f.on_page_resident(key, false, &mut fake);
                        lru_r.on_page_resident(key, false, &mut real);
                    }
                }
                1 => {
                    if resident[key as usize] {
                        fake.set_accessed(key, true);
                        real.space.mark_accessed(key, false);
                    }
                }
                2 => {
                    let out_f = lru_f.reclaim(4, &mut fake);
                    let out_r = lru_r.reclaim(4, &mut real);
                    prop_assert_eq!(&out_f.victims, &out_r.victims);
                    prop_assert_eq!(out_f.cpu_ns, out_r.cpu_ns);
                    prop_assert_eq!(out_f.scanned, out_r.scanned);
                    prop_assert_eq!(out_f.promoted, out_r.promoted);
                    for &v in &out_f.victims {
                        resident[v as usize] = false;
                        fake.set_resident(v, false);
                        real.space.set_swapped(v, v);
                        lru_f.on_page_evicted(v, &mut fake);
                        lru_r.on_page_evicted(v, &mut real);
                    }
                }
                3 => {
                    prop_assert_eq!(lru_f.age_once(&mut fake), lru_r.age_once(&mut real));
                }
                _ => {
                    if resident[key as usize] {
                        lru_f.on_fd_access(key, &mut fake);
                        lru_r.on_fd_access(key, &mut real);
                    }
                }
            }
            prop_assert_eq!(lru_f.stats(), lru_r.stats());
            prop_assert_eq!(lru_f.min_seq(), lru_r.min_seq());
            prop_assert_eq!(lru_f.max_seq(), lru_r.max_seq());
            real.space
                .check_bitmap_coherence()
                .map_err(|e| format!("coherence: {e}"))?;
        }
    }

    /// Same head-to-head for Clock, whose only scan primitive is the rmap
    /// probe: the bitmap-first `test_and_clear_accessed` answers exactly
    /// like the reference bit array.
    #[test]
    fn clock_rmap_probes_match_per_pte_reference(
        ops in prop::collection::vec((0u8..3, 0u32..640), 1..250),
    ) {
        let pages = 640u32;
        let mut fake = FakeMem::new(pages);
        let mut real = BitmapMem::new(pages);
        let mut clock_f = ClockLru::new(pages, CostModel::default());
        let mut clock_r = ClockLru::new(pages, CostModel::default());
        let mut resident = vec![false; pages as usize];
        for (op, key) in ops {
            match op {
                0 => {
                    if !resident[key as usize] {
                        resident[key as usize] = true;
                        fake.set_resident(key, true);
                        real.space.map(key, key);
                        clock_f.on_page_resident(key, false, &mut fake);
                        clock_r.on_page_resident(key, false, &mut real);
                    }
                }
                1 => {
                    if resident[key as usize] {
                        fake.set_accessed(key, true);
                        real.space.mark_accessed(key, false);
                    }
                }
                _ => {
                    let out_f = clock_f.reclaim(4, &mut fake);
                    let out_r = clock_r.reclaim(4, &mut real);
                    prop_assert_eq!(&out_f.victims, &out_r.victims);
                    prop_assert_eq!(out_f.cpu_ns, out_r.cpu_ns);
                    for &v in &out_f.victims {
                        resident[v as usize] = false;
                        fake.set_resident(v, false);
                        real.space.clear_mapping(v);
                        clock_f.on_page_evicted(v, &mut fake);
                        clock_r.on_page_evicted(v, &mut real);
                    }
                }
            }
            prop_assert_eq!(clock_f.stats(), clock_r.stats());
            real.space
                .check_bitmap_coherence()
                .map_err(|e| format!("coherence: {e}"))?;
        }
    }
}
