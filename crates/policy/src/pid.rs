//! The tier-refault PID controller.
//!
//! MG-LRU keeps pages accessed only through file descriptors in *tiers*
//! within a generation rather than promoting them over hot pages. If a
//! higher tier (frequently fd-accessed pages) refaults more than the base
//! tier, evicting it was a mistake — the controller then *protects* that
//! tier until the refault rates balance (§III-D of the paper).
//!
//! We implement a textbook discrete PID controller over the error signal
//! `refault_rate(tier) - refault_rate(tier 0)`, with the kernel's actual
//! behaviour (a proportional gain on refault counters) recoverable by
//! zeroing `ki`/`kd`.

/// Gains and state of a discrete PID controller.
///
/// ```rust
/// use pagesim_policy::PidController;
/// let mut pid = PidController::new(1.0, 0.1, 0.0);
/// // Positive error (tier refaults more than base) pushes output up.
/// let out = pid.update(0.5);
/// assert!(out > 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PidController {
    kp: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    last_error: f64,
    output: f64,
}

impl PidController {
    /// Creates a controller with the given gains.
    pub fn new(kp: f64, ki: f64, kd: f64) -> Self {
        PidController {
            kp,
            ki,
            kd,
            integral: 0.0,
            last_error: 0.0,
            output: 0.0,
        }
    }

    /// Feeds one error sample (unit time step); returns the new output.
    pub fn update(&mut self, error: f64) -> f64 {
        self.integral = (self.integral + error).clamp(-100.0, 100.0);
        let derivative = error - self.last_error;
        self.last_error = error;
        self.output = self.kp * error + self.ki * self.integral + self.kd * derivative;
        self.output
    }

    /// The most recent output.
    pub fn output(&self) -> f64 {
        self.output
    }

    /// Resets accumulated state (new workload phase).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = 0.0;
        self.output = 0.0;
    }
}

/// Per-tier refault bookkeeping plus the controller that decides which
/// tiers eviction must protect.
#[derive(Clone, Debug)]
pub struct TierBalancer {
    /// Pages evicted from each tier since the last rebalance.
    evicted: [u64; MAX_TIERS],
    /// Refaults attributed to each tier since the last rebalance.
    refaulted: [u64; MAX_TIERS],
    controllers: [PidController; MAX_TIERS],
    /// Tiers strictly below this bound are evictable; tiers at or above it
    /// are protected (moved to a younger generation instead of evicted).
    protect_from: usize,
}

/// Number of tiers (matches the kernel's `MAX_NR_TIERS`).
pub const MAX_TIERS: usize = 4;

impl TierBalancer {
    /// Creates a balancer; nothing is protected initially.
    pub fn new(kp: f64, ki: f64, kd: f64) -> Self {
        TierBalancer {
            evicted: [0; MAX_TIERS],
            refaulted: [0; MAX_TIERS],
            controllers: [PidController::new(kp, ki, kd); MAX_TIERS],
            protect_from: MAX_TIERS, // protect nothing
        }
    }

    /// Records that a page from `tier` was evicted.
    pub fn note_eviction(&mut self, tier: usize) {
        self.evicted[tier.min(MAX_TIERS - 1)] += 1;
    }

    /// Records a refault of a page that had been evicted from `tier`.
    pub fn note_refault(&mut self, tier: usize) {
        self.refaulted[tier.min(MAX_TIERS - 1)] += 1;
    }

    /// Refault rate of a tier over the current window.
    fn rate(&self, tier: usize) -> f64 {
        let e = self.evicted[tier];
        if e == 0 {
            return 0.0;
        }
        self.refaulted[tier] as f64 / e as f64
    }

    /// Runs the controllers and recomputes the protection boundary.
    /// Called periodically (MG-LRU does it per eviction batch).
    pub fn rebalance(&mut self) {
        let base = self.rate(0);
        self.protect_from = MAX_TIERS;
        for tier in (1..MAX_TIERS).rev() {
            let err = self.rate(tier) - base;
            let out = self.controllers[tier].update(err);
            if out > 0.0 {
                // This tier (and implicitly everything above it) refaults
                // more than the base tier: protect it.
                self.protect_from = tier;
            }
        }
        // Start a fresh observation window, mirroring the kernel's decay.
        for t in 0..MAX_TIERS {
            self.evicted[t] /= 2;
            self.refaulted[t] /= 2;
        }
    }

    /// Raw `(evicted, refaulted)` counts for `tier` over the current
    /// observation window — integers for introspection dumps (the derived
    /// float rate stays private to the controller).
    pub fn window(&self, tier: usize) -> (u64, u64) {
        (self.evicted[tier], self.refaulted[tier])
    }

    /// Whether eviction must spare pages of `tier`.
    pub fn is_protected(&self, tier: usize) -> bool {
        tier >= self.protect_from && tier > 0
    }

    /// The protection boundary (for reports).
    pub fn protect_from(&self) -> usize {
        self.protect_from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_only_tracks_error() {
        let mut pid = PidController::new(2.0, 0.0, 0.0);
        assert_eq!(pid.update(1.0), 2.0);
        assert_eq!(pid.update(-0.5), -1.0);
    }

    #[test]
    fn integral_accumulates() {
        let mut pid = PidController::new(0.0, 1.0, 0.0);
        pid.update(1.0);
        pid.update(1.0);
        assert_eq!(pid.output(), 2.0);
        pid.reset();
        assert_eq!(pid.output(), 0.0);
    }

    #[test]
    fn derivative_reacts_to_change() {
        let mut pid = PidController::new(0.0, 0.0, 1.0);
        assert_eq!(pid.update(1.0), 1.0); // from 0 to 1
        assert_eq!(pid.update(1.0), 0.0); // steady
        assert_eq!(pid.update(0.0), -1.0); // falling
    }

    #[test]
    fn integral_is_clamped() {
        let mut pid = PidController::new(0.0, 1.0, 0.0);
        for _ in 0..1000 {
            pid.update(10.0);
        }
        assert!(pid.output() <= 100.0);
    }

    #[test]
    fn hot_tier_becomes_protected() {
        let mut tb = TierBalancer::new(1.0, 0.0, 0.0);
        // Tier 2 refaults badly; tier 0 doesn't.
        for _ in 0..100 {
            tb.note_eviction(0);
            tb.note_eviction(2);
        }
        for _ in 0..80 {
            tb.note_refault(2);
        }
        for _ in 0..5 {
            tb.note_refault(0);
        }
        tb.rebalance();
        assert!(tb.is_protected(2));
        assert!(tb.is_protected(3), "everything above the boundary too");
        assert!(!tb.is_protected(0), "base tier is never protected");
    }

    #[test]
    fn balanced_rates_protect_nothing() {
        let mut tb = TierBalancer::new(1.0, 0.0, 0.0);
        for _ in 0..100 {
            tb.note_eviction(0);
            tb.note_eviction(1);
            tb.note_refault(0);
            tb.note_refault(1);
        }
        tb.rebalance();
        assert!(!tb.is_protected(1));
        assert_eq!(tb.protect_from(), MAX_TIERS);
    }

    #[test]
    fn protection_decays_when_rates_balance() {
        let mut tb = TierBalancer::new(1.0, 0.0, 0.0);
        for _ in 0..50 {
            tb.note_eviction(1);
            tb.note_refault(1);
            tb.note_eviction(0);
        }
        tb.rebalance();
        assert!(tb.is_protected(1));
        // Window halves each rebalance; with no new refaults anywhere the
        // rates converge and protection lifts.
        for _ in 0..8 {
            for _ in 0..50 {
                tb.note_eviction(0);
                tb.note_eviction(1);
            }
            tb.rebalance();
        }
        assert!(!tb.is_protected(1));
    }
}
