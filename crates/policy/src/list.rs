//! Intrusive page lists.
//!
//! Both policies keep pages on doubly-linked lists (active/inactive for
//! Clock; one list per generation×tier for MG-LRU). Nodes live in one flat
//! [`Links`] arena indexed by [`PageKey`], so a page can be moved between
//! lists in O(1) with no allocation — the property that makes MG-LRU's
//! "increase the generation count to 2^14" experiment (Gen-14) free, as
//! the paper notes.

use pagesim_mem::PageKey;

const NIL: u32 = u32::MAX;

/// Link cell for one page. Keep one `Vec<Links>` per policy, indexed by
/// [`PageKey`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Links {
    prev: u32,
    next: u32,
    /// Detached marker (a page is on at most one list).
    attached: bool,
}

impl Default for Links {
    fn default() -> Self {
        Links {
            prev: NIL,
            next: NIL,
            attached: false,
        }
    }
}

impl Links {
    /// Whether this page is currently on some list.
    pub fn attached(&self) -> bool {
        self.attached
    }
}

/// A doubly-linked list of pages over a shared [`Links`] arena.
///
/// Head = most recently promoted ("youngest end"); tail = scan/evict end.
///
/// ```rust
/// use pagesim_policy::{Links, PageList};
/// let mut nodes = vec![Links::default(); 8];
/// let mut l = PageList::new();
/// l.push_front(&mut nodes, 3);
/// l.push_front(&mut nodes, 5);
/// assert_eq!(l.back(), Some(3));
/// assert_eq!(l.pop_back(&mut nodes), Some(3));
/// assert_eq!(l.len(), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageList {
    head: u32,
    tail: u32,
    len: u32,
}

impl PageList {
    /// An empty list.
    pub const fn new() -> PageList {
        PageList {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of pages on the list.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The page at the scan/evict end.
    pub fn back(&self) -> Option<PageKey> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// The page at the young end.
    pub fn front(&self) -> Option<PageKey> {
        (self.head != NIL).then_some(self.head)
    }

    /// Pushes `key` at the young end.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `key` is already on a list.
    pub fn push_front(&mut self, nodes: &mut [Links], key: PageKey) {
        let k = key;
        debug_assert!(!nodes[k as usize].attached, "page {k} already listed");
        nodes[k as usize] = Links {
            prev: NIL,
            next: self.head,
            attached: true,
        };
        if self.head != NIL {
            nodes[self.head as usize].prev = k;
        } else {
            self.tail = k;
        }
        self.head = k;
        self.len += 1;
    }

    /// Pushes `key` at the scan/evict end (used when demoting pages).
    pub fn push_back(&mut self, nodes: &mut [Links], key: PageKey) {
        let k = key;
        debug_assert!(!nodes[k as usize].attached, "page {k} already listed");
        nodes[k as usize] = Links {
            prev: self.tail,
            next: NIL,
            attached: true,
        };
        if self.tail != NIL {
            nodes[self.tail as usize].next = k;
        } else {
            self.head = k;
        }
        self.tail = k;
        self.len += 1;
    }

    /// Removes and returns the page at the scan/evict end.
    pub fn pop_back(&mut self, nodes: &mut [Links]) -> Option<PageKey> {
        let k = self.back()?;
        self.remove(nodes, k);
        Some(k)
    }

    /// Unlinks `key` from this list.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `key` is not attached.
    pub fn remove(&mut self, nodes: &mut [Links], key: PageKey) {
        let k = key as usize;
        debug_assert!(nodes[k].attached, "removing detached page {key}");
        let Links { prev, next, .. } = nodes[k];
        if prev != NIL {
            nodes[prev as usize].next = next;
        } else {
            debug_assert_eq!(self.head, key);
            self.head = next;
        }
        if next != NIL {
            nodes[next as usize].prev = prev;
        } else {
            debug_assert_eq!(self.tail, key);
            self.tail = prev;
        }
        nodes[k] = Links::default();
        self.len -= 1;
    }

    /// The page before `key` (toward the young end), for tail-to-head
    /// traversal during scans.
    pub fn prev_of(&self, nodes: &[Links], key: PageKey) -> Option<PageKey> {
        let p = nodes[key as usize].prev;
        (p != NIL).then_some(p)
    }

    /// Iterates from tail (evict end) to head. For tests and debugging;
    /// scans in the policies walk manually so they can mutate.
    pub fn iter_from_back<'a>(&self, nodes: &'a [Links]) -> impl Iterator<Item = PageKey> + 'a {
        let mut cur = self.tail;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let k = cur;
            cur = nodes[cur as usize].prev;
            Some(k)
        })
    }
}

impl Default for PageList {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(n: usize) -> Vec<Links> {
        vec![Links::default(); n]
    }

    #[test]
    fn fifo_order_front_to_back() {
        let mut nodes = arena(10);
        let mut l = PageList::new();
        for k in [1u32, 2, 3] {
            l.push_front(&mut nodes, k);
        }
        assert_eq!(l.len(), 3);
        assert_eq!(l.pop_back(&mut nodes), Some(1));
        assert_eq!(l.pop_back(&mut nodes), Some(2));
        assert_eq!(l.pop_back(&mut nodes), Some(3));
        assert_eq!(l.pop_back(&mut nodes), None);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_from_middle() {
        let mut nodes = arena(10);
        let mut l = PageList::new();
        for k in [1u32, 2, 3, 4] {
            l.push_front(&mut nodes, k);
        }
        l.remove(&mut nodes, 3);
        let order: Vec<_> = l.iter_from_back(&nodes).collect();
        assert_eq!(order, vec![1, 2, 4]);
        assert!(!nodes[3].attached());
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut nodes = arena(10);
        let mut l = PageList::new();
        for k in [1u32, 2, 3] {
            l.push_front(&mut nodes, k);
        }
        l.remove(&mut nodes, 3); // head
        assert_eq!(l.front(), Some(2));
        l.remove(&mut nodes, 1); // tail
        assert_eq!(l.back(), Some(2));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn push_back_demotes() {
        let mut nodes = arena(10);
        let mut l = PageList::new();
        l.push_front(&mut nodes, 1);
        l.push_back(&mut nodes, 2);
        assert_eq!(l.back(), Some(2));
        assert_eq!(l.front(), Some(1));
    }

    #[test]
    fn move_between_lists() {
        let mut nodes = arena(10);
        let mut a = PageList::new();
        let mut b = PageList::new();
        a.push_front(&mut nodes, 5);
        a.remove(&mut nodes, 5);
        b.push_front(&mut nodes, 5);
        assert!(a.is_empty());
        assert_eq!(b.back(), Some(5));
    }

    #[test]
    fn prev_of_walks_toward_head() {
        let mut nodes = arena(10);
        let mut l = PageList::new();
        for k in [1u32, 2, 3] {
            l.push_front(&mut nodes, k);
        }
        // list head->tail: 3,2,1
        assert_eq!(l.prev_of(&nodes, 1), Some(2));
        assert_eq!(l.prev_of(&nodes, 2), Some(3));
        assert_eq!(l.prev_of(&nodes, 3), None);
    }

    #[test]
    fn singleton_list_invariants() {
        let mut nodes = arena(4);
        let mut l = PageList::new();
        l.push_front(&mut nodes, 0);
        assert_eq!(l.front(), l.back());
        l.pop_back(&mut nodes);
        assert_eq!(l.front(), None);
        assert_eq!(l.back(), None);
    }
}
