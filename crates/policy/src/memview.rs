//! The kernel-memory interface policies program against.

use pagesim_mem::{AsId, LineIdx, PageInfo, PageKey, RegionIdx, Vpn, WORDS_PER_REGION};

/// Services the simulated kernel exposes to replacement policies.
///
/// The methods mirror the real primitives the studied policies use:
/// reverse-map probes (expensive pointer chases), linear leaf-table scans
/// (cheap per entry), and page-table geometry queries for the bloom filter.
/// Implementations must *not* account CPU cost — policies do that through
/// their [`CostModel`](crate::CostModel) so the cost structure stays an
/// explicit, tunable part of the study.
pub trait MemView {
    /// Total registered pages (sizes the policies' metadata arenas).
    fn total_pages(&self) -> u32;

    /// Identity/attributes of a page.
    fn page_info(&self, key: PageKey) -> PageInfo;

    /// Whether the page is resident.
    fn is_resident(&self, key: PageKey) -> bool;

    /// Whether the page is dirty (would need write-back on eviction).
    fn is_dirty(&self, key: PageKey) -> bool;

    /// Reverse-map probe: test-and-clear the accessed bit of a resident
    /// page. The Clock policy's only tracking primitive.
    fn rmap_test_clear_accessed(&mut self, key: PageKey) -> bool;

    /// Linear scan of one whole PMD region: fills `words` with the
    /// accessed-bit masks of the region's PTEs (bit `i` of word `w` = vpn
    /// `region*512 + w*64 + i` was present and accessed; bits are cleared)
    /// and returns the number of PTEs examined for cost accounting. The
    /// word-level form of the kernel's linear leaf-table walk: a cold
    /// region costs a handful of word loads instead of 512 PTE reads.
    fn scan_region(
        &mut self,
        space: AsId,
        region: RegionIdx,
        words: &mut [u64; WORDS_PER_REGION],
    ) -> u32;

    /// Linear scan of one PTE cache line, returning `(mask, examined)`:
    /// bit `i` of `mask` = vpn `line*8 + i` was present and accessed (bits
    /// are cleared). The eviction scan's spatial lookaround primitive.
    fn scan_line_mask(&mut self, space: AsId, line: LineIdx) -> (u8, u32);

    /// Global key of a page by address.
    fn key_at(&self, space: AsId, vpn: Vpn) -> PageKey;

    /// Number of address spaces the aging walk must cover; spaces are
    /// identified densely as `AsId(0..count)`.
    fn space_count(&self) -> u16;

    /// Number of PMD regions in a space's leaf table.
    fn region_count(&self, space: AsId) -> u32;

    /// Present PTEs in a region — zero lets linear walks skip unmapped
    /// stretches of the table.
    fn region_present_count(&self, space: AsId, region: RegionIdx) -> u32;
}

/// Helper: the PMD region covering a vpn, re-exported for policies.
pub fn region_of_vpn(vpn: Vpn) -> RegionIdx {
    pagesim_mem::region_of(vpn)
}

/// In-memory [`MemView`] double for unit tests (one address space, direct
/// control of every bit). Hidden from docs; exposed so downstream crates'
/// tests can reuse it.
#[doc(hidden)]
pub mod tests_support {
    use super::*;
    use pagesim_mem::{EntropyClass, PTES_PER_LINE, PTES_PER_REGION, PTES_PER_WORD};

    /// A fake single-space memory with directly settable bits.
    #[derive(Debug)]
    pub struct FakeMem {
        pages: u32,
        resident: Vec<bool>,
        accessed: Vec<bool>,
        dirty: Vec<bool>,
        file: Vec<bool>,
        /// Counters so tests can assert on probe traffic.
        pub rmap_probes: u64,
        pub lines_scanned: u64,
        pub regions_scanned: u64,
    }

    impl FakeMem {
        /// All pages non-resident initially.
        pub fn new(pages: u32) -> Self {
            FakeMem {
                pages,
                resident: vec![false; pages as usize],
                accessed: vec![false; pages as usize],
                dirty: vec![false; pages as usize],
                file: vec![false; pages as usize],
                rmap_probes: 0,
                lines_scanned: 0,
                regions_scanned: 0,
            }
        }

        pub fn set_resident(&mut self, k: PageKey, v: bool) {
            self.resident[k as usize] = v;
            if !v {
                self.accessed[k as usize] = false;
                self.dirty[k as usize] = false;
            }
        }

        pub fn set_accessed(&mut self, k: PageKey, v: bool) {
            self.accessed[k as usize] = v;
        }

        pub fn set_dirty(&mut self, k: PageKey, v: bool) {
            self.dirty[k as usize] = v;
        }

        pub fn set_file_backed(&mut self, k: PageKey, v: bool) {
            self.file[k as usize] = v;
        }

        pub fn accessed_bit(&self, k: PageKey) -> bool {
            self.accessed[k as usize]
        }
    }

    impl MemView for FakeMem {
        fn total_pages(&self) -> u32 {
            self.pages
        }

        fn page_info(&self, key: PageKey) -> PageInfo {
            PageInfo {
                as_id: AsId(0),
                vpn: key,
                file_backed: self.file[key as usize],
                entropy: EntropyClass::Text,
            }
        }

        fn is_resident(&self, key: PageKey) -> bool {
            self.resident[key as usize]
        }

        fn is_dirty(&self, key: PageKey) -> bool {
            self.dirty[key as usize]
        }

        fn rmap_test_clear_accessed(&mut self, key: PageKey) -> bool {
            self.rmap_probes += 1;
            std::mem::take(&mut self.accessed[key as usize])
        }

        fn scan_region(
            &mut self,
            _space: AsId,
            region: RegionIdx,
            words: &mut [u64; WORDS_PER_REGION],
        ) -> u32 {
            self.regions_scanned += 1;
            let start = region * PTES_PER_REGION as u32;
            let end = (start + PTES_PER_REGION as u32).min(self.pages);
            *words = [0; WORDS_PER_REGION];
            for k in start..end {
                if self.resident[k as usize] && std::mem::take(&mut self.accessed[k as usize]) {
                    let bit = k - start;
                    words[bit as usize / PTES_PER_WORD] |= 1 << (bit as usize % PTES_PER_WORD);
                }
            }
            end.saturating_sub(start)
        }

        fn scan_line_mask(&mut self, _space: AsId, line: LineIdx) -> (u8, u32) {
            self.lines_scanned += 1;
            let start = line * PTES_PER_LINE as u32;
            let end = (start + PTES_PER_LINE as u32).min(self.pages);
            let mut mask = 0u8;
            for k in start..end {
                if self.resident[k as usize] && std::mem::take(&mut self.accessed[k as usize]) {
                    mask |= 1 << (k - start);
                }
            }
            (mask, end.saturating_sub(start))
        }

        fn key_at(&self, _space: AsId, vpn: Vpn) -> PageKey {
            vpn
        }

        fn space_count(&self) -> u16 {
            1
        }

        fn region_count(&self, _space: AsId) -> u32 {
            self.pages.div_ceil(PTES_PER_REGION as u32)
        }

        fn region_present_count(&self, _space: AsId, region: RegionIdx) -> u32 {
            let start = region * PTES_PER_REGION as u32;
            let end = (start + PTES_PER_REGION as u32).min(self.pages);
            (start..end).filter(|&k| self.resident[k as usize]).count() as u32
        }
    }
}
