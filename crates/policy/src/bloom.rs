//! The MG-LRU region bloom filter.
//!
//! MG-LRU limits its linear page-table walks to PMD regions that looked
//! hot on the previous pass. Two filters are kept: the *current* filter
//! gates this walk; regions found hot are inserted into the *next* filter,
//! which replaces the current one when a new generation is created
//! ([`DualBloom::flip`]). The eviction scan also feeds the next filter —
//! the aging↔eviction feedback loop described in §III-C of the paper.

use pagesim_engine::rng::splitmix64;
use pagesim_mem::{AsId, RegionIdx};

/// A fixed-size bloom filter over `(address space, PMD region)` pairs.
///
/// Sized like the kernel's (`BLOOM_FILTER_SHIFT = 15` → 32 Ki bits) with
/// two hash probes.
///
/// ```rust
/// use pagesim_policy::BloomFilter;
/// use pagesim_mem::AsId;
/// let mut f = BloomFilter::new(15);
/// assert!(!f.contains(AsId(0), 3));
/// f.insert(AsId(0), 3);
/// assert!(f.contains(AsId(0), 3)); // no false negatives, ever
/// ```
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    insertions: u64,
}

impl BloomFilter {
    /// Creates a filter with `2^shift` bits.
    ///
    /// # Panics
    ///
    /// Panics if `shift` is not in `6..=30`.
    pub fn new(shift: u32) -> Self {
        assert!((6..=30).contains(&shift), "unreasonable bloom size");
        let nbits = 1u64 << shift;
        BloomFilter {
            bits: vec![0; (nbits / 64) as usize],
            mask: nbits - 1,
            insertions: 0,
        }
    }

    fn hashes(&self, space: AsId, region: RegionIdx) -> (u64, u64) {
        let key = ((space.0 as u64) << 40) | region as u64;
        let h1 = splitmix64(key);
        let h2 = splitmix64(h1 ^ 0xDEAD_BEEF_CAFE_F00D);
        (h1 & self.mask, h2 & self.mask)
    }

    /// Marks a region hot.
    pub fn insert(&mut self, space: AsId, region: RegionIdx) {
        let (a, b) = self.hashes(space, region);
        self.bits[(a / 64) as usize] |= 1 << (a % 64);
        self.bits[(b / 64) as usize] |= 1 << (b % 64);
        self.insertions += 1;
    }

    /// Whether a region may be hot (false positives possible, false
    /// negatives impossible).
    pub fn contains(&self, space: AsId, region: RegionIdx) -> bool {
        let (a, b) = self.hashes(space, region);
        self.bits[(a / 64) as usize] & (1 << (a % 64)) != 0
            && self.bits[(b / 64) as usize] & (1 << (b % 64)) != 0
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.insertions = 0;
    }

    /// Number of insertions since the last clear.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Fraction of set bits (load factor), for diagnostics.
    pub fn load(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / ((self.mask + 1) as f64)
    }
}

/// The current/next filter pair used by the aging walk.
#[derive(Clone, Debug)]
pub struct DualBloom {
    current: BloomFilter,
    next: BloomFilter,
}

impl DualBloom {
    /// Creates both filters with `2^shift` bits each.
    pub fn new(shift: u32) -> Self {
        DualBloom {
            current: BloomFilter::new(shift),
            next: BloomFilter::new(shift),
        }
    }

    /// Gate for this walk: should the region be scanned?
    pub fn test_current(&self, space: AsId, region: RegionIdx) -> bool {
        self.current.contains(space, region)
    }

    /// Feed for the next walk (from aging or from eviction's feedback).
    pub fn insert_next(&mut self, space: AsId, region: RegionIdx) {
        self.next.insert(space, region);
    }

    /// Rotates at generation creation: next becomes current.
    pub fn flip(&mut self) {
        std::mem::swap(&mut self.current, &mut self.next);
        self.next.clear();
    }

    /// Insertions into the upcoming filter so far.
    pub fn next_insertions(&self) -> u64 {
        self.next.insertions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(12);
        for r in 0..200u32 {
            f.insert(AsId(r as u16 % 3), r);
        }
        for r in 0..200u32 {
            assert!(f.contains(AsId(r as u16 % 3), r));
        }
    }

    #[test]
    fn false_positive_rate_is_small_when_lightly_loaded() {
        let mut f = BloomFilter::new(15);
        for r in 0..256u32 {
            f.insert(AsId(0), r);
        }
        let fp = (10_000..20_000u32)
            .filter(|&r| f.contains(AsId(0), r))
            .count();
        // 256 inserts into 32Ki bits with k=2: expected fp rate well below 1%
        assert!(fp < 100, "false positives: {fp}/10000");
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(10);
        f.insert(AsId(1), 7);
        assert!(f.load() > 0.0);
        f.clear();
        assert!(!f.contains(AsId(1), 7));
        assert_eq!(f.insertions(), 0);
        assert_eq!(f.load(), 0.0);
    }

    #[test]
    fn spaces_are_distinguished() {
        let mut f = BloomFilter::new(15);
        f.insert(AsId(0), 42);
        assert!(!f.contains(AsId(1), 42));
    }

    #[test]
    fn dual_flip_rotates() {
        let mut d = DualBloom::new(12);
        d.insert_next(AsId(0), 5);
        assert!(!d.test_current(AsId(0), 5), "next must not gate this walk");
        d.flip();
        assert!(d.test_current(AsId(0), 5));
        d.flip();
        assert!(!d.test_current(AsId(0), 5), "flip clears the new next");
    }

    #[test]
    fn next_insertions_counted() {
        let mut d = DualBloom::new(12);
        assert_eq!(d.next_insertions(), 0);
        d.insert_next(AsId(0), 1);
        d.insert_next(AsId(0), 2);
        assert_eq!(d.next_insertions(), 2);
        d.flip();
        assert_eq!(d.next_insertions(), 0);
    }
}
