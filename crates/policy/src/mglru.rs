//! Multi-Generational LRU.
//!
//! A faithful user-space model of the policy the paper characterizes
//! (Linux 6.x `lru_gen`):
//!
//! * **Generations** — pages live on per-generation lists between
//!   `min_seq` (oldest, eviction end) and `max_seq` (youngest). Accessed
//!   pages are promoted to the youngest generation; eviction consumes the
//!   oldest. The maximum generation count is configurable: the kernel
//!   default is 4, and the paper's *Gen-14* variant raises it to 2^14 so
//!   every aging pass can create a fresh generation.
//! * **Aging** — a background walk that scans leaf page tables *linearly*
//!   (cheap per PTE, unlike rmap pointer chases), gated per PMD region by
//!   a bloom filter of regions that looked hot on the previous walk. The
//!   paper's `Scan-All` / `Scan-None` / `Scan-Rand` variants replace the
//!   bloom gate ([`ScanMode`]).
//! * **Eviction** — scans the oldest generation through the reverse map;
//!   accessed pages are promoted and their surrounding PTE cache line is
//!   scanned opportunistically (spatial locality), feeding hot regions
//!   back into the next bloom filter — the aging↔eviction feedback loop.
//! * **Tiers + PID** — pages accessed via file descriptors are promoted by
//!   tier within their generation instead of jumping to the youngest
//!   generation; a controller protects tiers whose refault rate exceeds
//!   the base tier's.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use pagesim_engine::Nanos;
use pagesim_mem::{
    AsId, PageKey, LINES_PER_REGION, PTES_PER_LINE, PTES_PER_REGION, PTES_PER_WORD,
    WORDS_PER_REGION,
};

use crate::bloom::DualBloom;
use crate::cost::CostModel;
use crate::list::{Links, PageList};
use crate::memview::MemView;
use crate::pid::{TierBalancer, MAX_TIERS};
use crate::{BgOutcome, Policy, PolicyStats, ReclaimOutcome};

/// The kernel keeps at least this many generations at all times.
pub const MIN_NR_GENS: usize = 2;

const NONE_SEQ: u64 = u64::MAX;

/// How the aging walk decides which PMD regions to scan — the paper's
/// §V-B parameter study.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ScanMode {
    /// Default MG-LRU: scan regions present in the bloom filter built by
    /// the previous walk (plus eviction feedback).
    Bloom,
    /// *Scan-All*: scan the entire page table every walk.
    All,
    /// *Scan-None*: scan nothing; accessed bits are only consumed by the
    /// eviction scan.
    None,
    /// *Scan-Rand*: scan each region independently with this probability
    /// (the paper uses 0.5).
    Rand(f64),
}

/// Configuration of an [`MgLru`] instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MgLruConfig {
    /// Maximum number of generations (kernel default: 4; *Gen-14*: 2^14).
    pub max_gens: u32,
    /// Aging-walk region gate.
    pub scan_mode: ScanMode,
    /// log2 bits in each bloom filter (kernel: 15).
    pub bloom_shift: u32,
    /// A region enters the next bloom filter when its accessed-PTE count
    /// reaches `insert_threshold_per_line` × (cache lines in the region) —
    /// the default 1.0 is the kernel's "one accessed PTE per cache line".
    pub insert_threshold_per_line: f64,
    /// Whether the eviction scan examines the PTE cache line around an
    /// accessed page (spatial-locality lookaround; on in the kernel).
    pub spatial_scan: bool,
    /// PID gains for the tier controller `(kp, ki, kd)`.
    pub pid_gains: (f64, f64, f64),
    /// Seed for `ScanMode::Rand`.
    pub seed: u64,
}

impl MgLruConfig {
    /// Kernel-default MG-LRU.
    pub fn kernel_default() -> Self {
        MgLruConfig {
            max_gens: 4,
            scan_mode: ScanMode::Bloom,
            bloom_shift: 15,
            insert_threshold_per_line: 1.0,
            spatial_scan: true,
            pid_gains: (1.0, 0.0, 0.0),
            seed: 0,
        }
    }

    /// The paper's *Gen-14* variant: 2^14 generations.
    pub fn gen14() -> Self {
        MgLruConfig {
            max_gens: 1 << 14,
            ..Self::kernel_default()
        }
    }

    /// The paper's *Scan-All* variant.
    pub fn scan_all() -> Self {
        MgLruConfig {
            scan_mode: ScanMode::All,
            ..Self::kernel_default()
        }
    }

    /// The paper's *Scan-None* variant.
    pub fn scan_none() -> Self {
        MgLruConfig {
            scan_mode: ScanMode::None,
            ..Self::kernel_default()
        }
    }

    /// The paper's *Scan-Rand* variant (p = 0.5).
    pub fn scan_rand(seed: u64) -> Self {
        MgLruConfig {
            scan_mode: ScanMode::Rand(0.5),
            seed,
            ..Self::kernel_default()
        }
    }

    fn validate(&self) {
        assert!(self.max_gens as usize >= MIN_NR_GENS, "max_gens too small");
        if let ScanMode::Rand(p) = self.scan_mode {
            assert!((0.0..=1.0).contains(&p), "scan probability out of range");
        }
        assert!(self.insert_threshold_per_line >= 0.0);
    }
}

impl Default for MgLruConfig {
    fn default() -> Self {
        Self::kernel_default()
    }
}

#[derive(Clone, Copy, Debug)]
struct PageMeta {
    /// Logical generation of the page (`folio_update_gen` semantics), or
    /// `NONE_SEQ` when not tracked. Aging updates this *lazily* without
    /// moving the page between lists.
    seq: u64,
    /// Physical generation list the page sits on, or `NONE_SEQ` when
    /// detached. Diverges from `seq` after a lazy promotion until the
    /// eviction scan re-sorts the page.
    pos: u64,
    /// Tier (file pages only; anon pages are always tier 0).
    tier: u8,
    /// fd-access count within the current generation (drives the tier).
    refs: u8,
    /// Tier the page had when last evicted (refault attribution).
    evicted_tier: u8,
    /// Cached file-backed flag.
    is_file: bool,
}

impl Default for PageMeta {
    fn default() -> Self {
        PageMeta {
            seq: NONE_SEQ,
            pos: NONE_SEQ,
            tier: 0,
            refs: 0,
            evicted_tier: 0,
            is_file: false,
        }
    }
}

#[derive(Debug, Default)]
struct Gen {
    seq: u64,
    anon: PageList,
    file: [PageList; MAX_TIERS],
}

impl Gen {
    fn new(seq: u64) -> Self {
        Gen {
            seq,
            ..Default::default()
        }
    }

    fn total(&self) -> u32 {
        self.anon.len() + self.file.iter().map(PageList::len).sum::<u32>()
    }

    fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

/// Progress of an in-flight aging walk. Walks are incremental: they make
/// bounded progress per background slice, so accessed-bit clears spread
/// over wall-clock time like the kernel's real walks do.
#[derive(Debug)]
struct WalkState {
    /// Spaces are identified densely as `AsId(0..space_count)`.
    space_count: u16,
    space_i: u16,
    region: u32,
    /// Snapshot of "is the current filter usable" at walk start.
    filter_unusable: bool,
}

/// Multi-Generational LRU (see module docs).
#[derive(Debug)]
pub struct MgLru {
    cfg: MgLruConfig,
    costs: CostModel,
    nodes: Vec<Links>,
    meta: Vec<PageMeta>,
    /// Front = oldest generation (`min_seq`), back = youngest (`max_seq`).
    gens: VecDeque<Gen>,
    bloom: DualBloom,
    /// Insertions that went into the *current* filter while it was "next".
    current_filter_fill: u64,
    tiers: TierBalancer,
    rng: SmallRng,
    needs_aging: bool,
    walk: Option<WalkState>,
    stats: PolicyStats,
}

impl MgLru {
    /// Creates the policy for a system of `total_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`MgLruConfig`]).
    pub fn new(total_pages: u32, cfg: MgLruConfig, costs: CostModel) -> Self {
        cfg.validate();
        let mut gens = VecDeque::new();
        gens.push_back(Gen::new(0));
        gens.push_back(Gen::new(1));
        let (kp, ki, kd) = cfg.pid_gains;
        MgLru {
            cfg,
            costs,
            nodes: vec![Links::default(); total_pages as usize],
            meta: vec![PageMeta::default(); total_pages as usize],
            gens,
            bloom: DualBloom::new(cfg.bloom_shift),
            current_filter_fill: 0,
            tiers: TierBalancer::new(kp, ki, kd),
            rng: SmallRng::seed_from_u64(cfg.seed),
            needs_aging: true,
            walk: None,
            stats: PolicyStats::default(),
        }
    }

    /// Oldest live generation sequence number.
    pub fn min_seq(&self) -> u64 {
        self.gens.front().expect("at least MIN_NR_GENS gens").seq
    }

    /// Youngest generation sequence number.
    pub fn max_seq(&self) -> u64 {
        self.gens.back().expect("at least MIN_NR_GENS gens").seq
    }

    /// Number of live generations.
    pub fn nr_gens(&self) -> usize {
        self.gens.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &MgLruConfig {
        &self.cfg
    }

    fn gen_index(&self, seq: u64) -> usize {
        debug_assert!(seq >= self.min_seq() && seq <= self.max_seq());
        (seq - self.min_seq()) as usize
    }

    fn detach(&mut self, key: PageKey) {
        let meta = self.meta[key as usize];
        if meta.pos == NONE_SEQ {
            return;
        }
        let idx = self.gen_index(meta.pos);
        let gen = &mut self.gens[idx];
        if meta.is_file {
            gen.file[meta.tier as usize].remove(&mut self.nodes, key);
        } else {
            gen.anon.remove(&mut self.nodes, key);
        }
        self.meta[key as usize].seq = NONE_SEQ;
        self.meta[key as usize].pos = NONE_SEQ;
    }

    /// Moves a page to the head of a generation's appropriate list.
    fn attach(&mut self, key: PageKey, seq: u64) {
        debug_assert_eq!(self.meta[key as usize].pos, NONE_SEQ);
        let idx = self.gen_index(seq);
        let meta = &mut self.meta[key as usize];
        meta.seq = seq;
        meta.pos = seq;
        let tier = meta.tier as usize;
        let is_file = meta.is_file;
        let gen = &mut self.gens[idx];
        if is_file {
            gen.file[tier].push_front(&mut self.nodes, key);
        } else {
            gen.anon.push_front(&mut self.nodes, key);
        }
    }

    /// Lazily promotes an accessed page to the youngest generation: only
    /// the generation tag changes (`folio_update_gen`); the page stays on
    /// its current list until the eviction scan re-sorts it. This is the
    /// kernel's actual aging behaviour — cheap for the walk, but every
    /// lazily promoted page later consumes eviction-scan budget.
    fn promote_to_youngest(&mut self, key: PageKey) -> bool {
        let max_seq = self.gens.back().expect("gens").seq;
        let meta = &mut self.meta[key as usize];
        if meta.seq == NONE_SEQ || meta.seq == max_seq {
            return false;
        }
        meta.seq = max_seq;
        meta.refs = 0;
        self.stats.promotions += 1;
        true
    }

    /// Starts a new aging walk: creates the next youngest generation when
    /// under the generation cap and positions the walk cursor.
    fn start_walk(&mut self, mem: &mut dyn MemView) {
        debug_assert!(self.walk.is_none(), "walk already in progress");
        if (self.gens.len() as u32) < self.cfg.max_gens {
            let next = self.max_seq() + 1;
            self.gens.push_back(Gen::new(next));
        }
        self.walk = Some(WalkState {
            space_count: mem.space_count(),
            space_i: 0,
            region: 0,
            // When the current filter is empty (bootstrap or an all-cold
            // previous walk) the kernel walks everything; mirror that.
            filter_unusable: self.current_filter_fill == 0,
        });
    }

    /// Advances the in-flight walk by up to `budget_ns` of scan cost.
    /// Returns `(cost, finished)`.
    fn walk_step(&mut self, mem: &mut dyn MemView, budget_ns: Nanos) -> (Nanos, bool) {
        let mut cost: Nanos = 0;
        loop {
            if cost >= budget_ns {
                return (cost, false);
            }
            // Pull the next (space, region) pair off the cursor.
            let (space, region, filter_unusable) = {
                let Some(ws) = self.walk.as_mut() else {
                    return (cost, true);
                };
                loop {
                    if ws.space_i >= ws.space_count {
                        break;
                    }
                    if ws.region >= mem.region_count(AsId(ws.space_i)) {
                        ws.space_i += 1;
                        ws.region = 0;
                        continue;
                    }
                    break;
                }
                if ws.space_i >= ws.space_count {
                    // Walk complete: rotate the bloom filters and publish
                    // the new generation state.
                    self.walk = None;
                    self.current_filter_fill = self.bloom.next_insertions();
                    self.bloom.flip();
                    self.stats.aging_passes += 1;
                    self.needs_aging = false;
                    return (cost, true);
                }
                let space = AsId(ws.space_i);
                let region = ws.region;
                ws.region += 1;
                (space, region, ws.filter_unusable)
            };

            cost += self.costs.region_check_ns;
            let scan = match self.cfg.scan_mode {
                ScanMode::All => true,
                ScanMode::None => false,
                ScanMode::Rand(p) => self.rng.random_bool(p),
                ScanMode::Bloom => filter_unusable || self.bloom.test_current(space, region),
            };
            if !scan {
                self.stats.regions_skipped += 1;
                continue;
            }
            if mem.region_present_count(space, region) == 0 {
                // The walk sees an empty PMD and skips the whole region at
                // upper-level cost.
                self.stats.regions_skipped += 1;
                continue;
            }
            self.stats.regions_walked += 1;
            // Harvest the whole region's accessed bits as 8 words, then
            // visit only the set bits in ascending vpn order — the same
            // visits, promotions, and *simulated* cost as a per-PTE walk
            // (`examined` counts every PTE the scan covers), with host
            // work proportional to the hot pages only.
            let mut words = [0u64; WORDS_PER_REGION];
            let examined = mem.scan_region(space, region, &mut words);
            cost += examined as u64 * self.costs.pte_scan_ns;
            self.stats.pte_scans += examined as u64;
            let mut accessed_in_region: u32 = 0;
            let region_base = region * PTES_PER_REGION as u32;
            for (w, &word) in words.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let vpn = region_base + w as u32 * PTES_PER_WORD as u32 + bits.trailing_zeros();
                    bits &= bits - 1;
                    accessed_in_region += 1;
                    let key = mem.key_at(space, vpn);
                    if self.promote_to_youngest(key) {
                        cost += self.costs.list_op_ns;
                    }
                }
            }
            let threshold =
                (self.cfg.insert_threshold_per_line * LINES_PER_REGION as f64).ceil() as u32;
            if accessed_in_region >= threshold.max(1) {
                self.bloom.insert_next(space, region);
            }
        }
    }

    /// One full aging pass, run to completion synchronously (the
    /// `try_to_inc_max_seq` direct-reclaim path, also used by tests). If a
    /// background walk is in flight, it is finished first.
    pub fn age_once(&mut self, mem: &mut dyn MemView) -> Nanos {
        if self.walk.is_none() {
            self.start_walk(mem);
        }
        let mut total: Nanos = 0;
        loop {
            let (cost, done) = self.walk_step(mem, Nanos::MAX);
            total += cost;
            if done {
                return total;
            }
        }
    }

    /// Pops empty oldest generations (advancing `min_seq`) while more than
    /// the minimum remain.
    fn advance_min_seq(&mut self) {
        while self.gens.len() > MIN_NR_GENS && self.gens.front().is_some_and(Gen::is_empty) {
            self.gens.pop_front();
        }
    }

    /// Picks the next eviction candidate from the oldest generation's
    /// lists: unprotected file tiers first (low tiers first), then anon.
    /// The candidate is physically unlinked; its logical generation tag is
    /// preserved so the caller can detect lazy promotions.
    fn next_candidate(&mut self) -> Option<(PageKey, bool, u8)> {
        let gen = self.gens.front_mut()?;
        for tier in 0..MAX_TIERS {
            if let Some(key) = gen.file[tier].pop_back(&mut self.nodes) {
                self.meta[key as usize].pos = NONE_SEQ;
                return Some((key, true, tier as u8));
            }
        }
        if let Some(key) = gen.anon.pop_back(&mut self.nodes) {
            self.meta[key as usize].pos = NONE_SEQ;
            return Some((key, false, 0));
        }
        None
    }
}

impl Policy for MgLru {
    fn name(&self) -> String {
        let mode = match self.cfg.scan_mode {
            ScanMode::Bloom => String::new(),
            ScanMode::All => "-scan-all".to_owned(),
            ScanMode::None => "-scan-none".to_owned(),
            ScanMode::Rand(_) => "-scan-rand".to_owned(),
        };
        let gens = if self.cfg.max_gens != 4 {
            format!("-gen{}", self.cfg.max_gens.ilog2())
        } else {
            String::new()
        };
        format!("mglru{mode}{gens}")
    }

    fn on_page_resident(&mut self, key: PageKey, refault: bool, mem: &mut dyn MemView) {
        let info = mem.page_info(key);
        if refault {
            let tier = self.meta[key as usize].evicted_tier;
            self.tiers.note_refault(tier as usize);
        }
        let meta = &mut self.meta[key as usize];
        debug_assert_eq!(meta.seq, NONE_SEQ, "page resident twice");
        meta.is_file = info.file_backed;
        meta.refs = 0;
        meta.tier = 0;
        // Anonymous pages (and refaulted pages, which were just demanded)
        // start young; file pages read in start near the old end so
        // streaming data ages out quickly (§III-D).
        let seq = if info.file_backed {
            let second_oldest = self.gens.get(1).map_or(self.min_seq(), |g| g.seq);
            second_oldest
        } else {
            self.max_seq()
        };
        self.attach(key, seq);
    }

    fn on_page_evicted(&mut self, key: PageKey, _mem: &mut dyn MemView) {
        // Victims are detached during selection; nothing to unlink.
        debug_assert_eq!(self.meta[key as usize].seq, NONE_SEQ);
    }

    fn forget(&mut self, key: PageKey) {
        // `detach` is tolerant of untracked pages and resets seq/pos.
        self.detach(key);
        self.meta[key as usize].refs = 0;
        self.meta[key as usize].tier = 0;
    }

    fn on_fd_access(&mut self, key: PageKey, _mem: &mut dyn MemView) {
        let meta = self.meta[key as usize];
        if !meta.is_file || meta.seq == NONE_SEQ {
            return;
        }
        let refs = meta.refs.saturating_add(1).min(0x3F);
        // tier = floor(log2(refs + 1)), capped: 0 refs -> tier 0,
        // 1 -> 1, 3 -> 2, 7 -> 3 (the kernel's order_base_2 rule).
        let tier = (u8::BITS - (refs + 1).leading_zeros() - 1).min(MAX_TIERS as u32 - 1) as u8;
        let seq = meta.seq;
        if tier != meta.tier {
            // Promote by tier *within* the generation, never to the
            // youngest generation (the paper's §III-D).
            self.detach(key);
            self.meta[key as usize].tier = tier;
            self.meta[key as usize].refs = refs;
            self.attach(key, seq);
        } else {
            self.meta[key as usize].refs = refs;
        }
    }

    fn reclaim(&mut self, want: u32, mem: &mut dyn MemView) -> ReclaimOutcome {
        let mut out = ReclaimOutcome::default();
        let scan_cap = (want as u64 * 16).max(128);
        let mut sync_ages = 0;

        'outer: while (out.victims.len() as u32) < want {
            self.advance_min_seq();
            if self.gens.front().is_some_and(Gen::is_empty) {
                // All pages live in the youngest MIN_NR_GENS generations:
                // eviction cannot proceed without aging. Direct reclaim
                // ages synchronously (try_to_inc_max_seq), paying the full
                // walk cost on this thread.
                if sync_ages >= 3 {
                    break;
                }
                sync_ages += 1;
                out.cpu_ns += self.age_once(mem);
                self.advance_min_seq();
                if self.gens.front().is_some_and(Gen::is_empty) {
                    // Aging promoted nothing downward (it never does) and
                    // the old generations are still empty: nothing to do.
                    break;
                }
                continue;
            }

            while (out.victims.len() as u32) < want {
                if out.scanned >= scan_cap {
                    break 'outer;
                }
                let oldest_seq = self.min_seq();
                let Some((key, is_file, tier)) = self.next_candidate() else {
                    break; // oldest gen drained; advance min_seq
                };
                out.scanned += 1;

                if self.meta[key as usize].seq != oldest_seq {
                    // Lazily promoted by the aging walk: re-sort the page
                    // onto its logical generation. This consumes eviction
                    // scan budget without producing a victim — the cost
                    // heavy scanning shifts onto the reclaim path.
                    let target = self.meta[key as usize].seq;
                    self.meta[key as usize].seq = NONE_SEQ;
                    self.attach(key, target);
                    self.stats.resorted += 1;
                    out.cpu_ns += self.costs.list_op_ns;
                    continue;
                }

                if is_file && self.tiers.is_protected(tier as usize) {
                    // Protected tier: move one generation younger instead
                    // of evicting; tier is kept.
                    let target = self.gens.get(1).map_or(self.max_seq(), |g| g.seq);
                    self.meta[key as usize].tier = tier;
                    self.attach(key, target);
                    self.stats.tier_protected += 1;
                    out.cpu_ns += self.costs.list_op_ns;
                    continue;
                }

                // The eviction scan walks the rmap to probe the PTE.
                out.cpu_ns += self.costs.rmap_walk_ns;
                self.stats.rmap_walks += 1;
                if mem.rmap_test_clear_accessed(key) {
                    // Referenced at eviction time: protect by ONE
                    // generation (`folio_inc_gen`), not to the youngest —
                    // only the aging walk grants full rejuvenation. Then
                    // exploit spatial locality: scan the surrounding PTE
                    // cache line and feed the hot region into the next
                    // bloom filter (§III-C).
                    let protect_seq = self.gens.get(1).map_or(self.max_seq(), |g| g.seq);
                    self.meta[key as usize].tier = tier;
                    self.attach(key, protect_seq);
                    self.meta[key as usize].refs = 0;
                    out.promoted += 1;
                    self.stats.promotions += 1;
                    out.cpu_ns += self.costs.list_op_ns;
                    if self.cfg.spatial_scan {
                        let info = mem.page_info(key);
                        let line = pagesim_mem::line_of(info.vpn);
                        let (mask, examined) = mem.scan_line_mask(info.as_id, line);
                        out.cpu_ns += examined as u64 * self.costs.pte_scan_ns;
                        self.stats.pte_scans += examined as u64;
                        let line_base = line * PTES_PER_LINE as u32;
                        let mut bits = mask;
                        while bits != 0 {
                            let vpn = line_base + bits.trailing_zeros();
                            bits &= bits - 1;
                            let neighbor = mem.key_at(info.as_id, vpn);
                            if neighbor != key && self.promote_to_youngest(neighbor) {
                                out.cpu_ns += self.costs.list_op_ns;
                                out.promoted += 1;
                            }
                        }
                        self.bloom
                            .insert_next(info.as_id, pagesim_mem::region_of(info.vpn));
                    }
                } else {
                    let eff_tier = if is_file { tier } else { 0 };
                    self.tiers.note_eviction(eff_tier as usize);
                    self.meta[key as usize].evicted_tier = eff_tier;
                    self.meta[key as usize].seq = NONE_SEQ;
                    out.victims.push(key);
                    out.cpu_ns += self.costs.evict_fixed_ns;
                    self.stats.evictions += 1;
                }
            }
        }

        // Ask for background aging when the old-generation supply runs
        // low — roughly once per generation turnover, like the kernel,
        // rather than continuously.
        let oldest_supply = self.gens.front().map_or(0, Gen::total);
        if self.gens.len() <= MIN_NR_GENS || oldest_supply < want.max(8) {
            self.needs_aging = true;
        }
        self.tiers.rebalance();
        out
    }

    fn wants_background(&self, _mem: &dyn MemView) -> bool {
        self.needs_aging || self.walk.is_some()
    }

    fn background_work(&mut self, budget_ns: Nanos, mem: &mut dyn MemView) -> BgOutcome {
        if self.walk.is_none() {
            if !self.needs_aging {
                return BgOutcome::default();
            }
            self.start_walk(mem);
        }
        let (cpu_ns, done) = self.walk_step(mem, budget_ns);
        BgOutcome {
            cpu_ns,
            more: !done,
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn occupancy(&self) -> Vec<(u64, u64)> {
        self.gens
            .iter()
            .map(|g| (g.seq, g.total() as u64))
            .collect()
    }

    // Mirrors `/sys/kernel/debug/lru_gen`: one line per generation with
    // its age (in generations, youngest = 0) and per-list sizes, followed
    // by the tier controller's refault windows. Integers only.
    fn introspect(&self, out: &mut String) {
        use std::fmt::Write as _;
        let max_seq = self.max_seq();
        let _ = writeln!(
            out,
            "policy {} min_seq {} max_seq {} nr_gens {}",
            self.name(),
            self.min_seq(),
            max_seq,
            self.nr_gens()
        );
        for g in &self.gens {
            let _ = write!(
                out,
                " gen {} age {} anon {} file",
                g.seq,
                max_seq - g.seq,
                g.anon.len()
            );
            for tier in &g.file {
                let _ = write!(out, " {}", tier.len());
            }
            out.push('\n');
        }
        let _ = writeln!(out, " tiers protect_from {}", self.tiers.protect_from());
        for t in 0..MAX_TIERS {
            let (evicted, refaulted) = self.tiers.window(t);
            let _ = writeln!(out, " tier {t} evicted {evicted} refaulted {refaulted}");
        }
    }

    #[cfg(feature = "sanitize")]
    fn check_invariants(&self) -> Option<u64> {
        let min_seq = self.min_seq();
        let max_seq = self.max_seq();
        assert!(
            (MIN_NR_GENS..=self.cfg.max_gens as usize).contains(&self.gens.len()),
            "sanitize: gen-population: {} generations outside [{MIN_NR_GENS}, {}]",
            self.gens.len(),
            self.cfg.max_gens
        );
        let mut listed = vec![false; self.nodes.len()];
        let mut total: u64 = 0;
        for (i, gen) in self.gens.iter().enumerate() {
            assert_eq!(
                gen.seq,
                min_seq + i as u64,
                "sanitize: gen-population: gen index {i} has seq {} (min_seq {min_seq})",
                gen.seq
            );
            let mut walk = |list: &PageList, is_file: bool, tier: u8| -> u64 {
                let mut count: u32 = 0;
                for key in list.iter_from_back(&self.nodes) {
                    let meta = &self.meta[key as usize];
                    assert!(
                        !std::mem::replace(&mut listed[key as usize], true),
                        "sanitize: gen-population: page {key} on two lists"
                    );
                    assert_eq!(
                        meta.pos, gen.seq,
                        "sanitize: gen-population: page {key} on gen {} but pos tag {}",
                        gen.seq, meta.pos
                    );
                    assert_eq!(
                        meta.is_file, is_file,
                        "sanitize: gen-population: page {key} on the wrong kind of list"
                    );
                    if is_file {
                        assert_eq!(
                            meta.tier, tier,
                            "sanitize: gen-population: page {key} on tier {tier} list but tier tag {}",
                            meta.tier
                        );
                    }
                    assert!(
                        meta.seq >= meta.pos && meta.seq <= max_seq,
                        "sanitize: gen-population: page {key} logical seq {} outside [{}, {max_seq}]",
                        meta.seq,
                        meta.pos
                    );
                    count += 1;
                }
                assert_eq!(
                    count,
                    list.len(),
                    "sanitize: gen-population: list claims {} pages, walk found {count}",
                    list.len()
                );
                count as u64
            };
            total += walk(&gen.anon, false, 0);
            for (t, list) in gen.file.iter().enumerate() {
                total += walk(list, true, t as u8);
            }
        }
        for (key, node) in self.nodes.iter().enumerate() {
            assert_eq!(
                node.attached(),
                listed[key],
                "sanitize: gen-population: page {key} attached flag disagrees with list membership"
            );
            if !node.attached() {
                let meta = &self.meta[key];
                assert!(
                    meta.pos == NONE_SEQ && meta.seq == NONE_SEQ,
                    "sanitize: gen-population: detached page {key} keeps seq {} / pos {}",
                    meta.seq,
                    meta.pos
                );
            }
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memview::tests_support::FakeMem;

    fn setup(pages: u32, resident: u32, cfg: MgLruConfig) -> (MgLru, FakeMem) {
        let mut mem = FakeMem::new(pages);
        let mut lru = MgLru::new(pages, cfg, CostModel::default());
        for k in 0..resident {
            mem.set_resident(k, true);
            lru.on_page_resident(k, false, &mut mem);
        }
        (lru, mem)
    }

    #[test]
    fn starts_with_min_gens() {
        let (lru, _) = setup(64, 0, MgLruConfig::kernel_default());
        assert_eq!(lru.nr_gens(), MIN_NR_GENS);
        assert_eq!(lru.min_seq(), 0);
        assert_eq!(lru.max_seq(), 1);
    }

    #[test]
    fn occupancy_labels_generations_by_seq() {
        let (lru, _) = setup(64, 8, MgLruConfig::kernel_default());
        let occ = lru.occupancy();
        assert_eq!(occ.len(), lru.nr_gens());
        assert_eq!(occ.iter().map(|&(_, n)| n).sum::<u64>(), 8);
        // Oldest first, sequence numbers ascending.
        assert!(occ.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn introspect_dumps_generations_and_tiers() {
        let (mut lru, mut mem) = setup(64, 8, MgLruConfig::kernel_default());
        lru.age_once(&mut mem);
        let mut dump = String::new();
        lru.introspect(&mut dump);
        assert!(
            dump.starts_with("policy mglru min_seq 0 max_seq 2 nr_gens 3\n"),
            "{dump}"
        );
        // One line per generation, youngest has age 0, oldest the largest.
        assert!(dump.contains(" gen 0 age 2 anon "), "{dump}");
        assert!(dump.contains(" gen 2 age 0 anon "), "{dump}");
        assert!(dump.contains(" tiers protect_from 4\n"), "{dump}");
        for t in 0..MAX_TIERS {
            assert!(dump.contains(&format!(" tier {t} evicted ")), "{dump}");
        }
        // Pure reporting: a second dump is identical.
        let mut again = String::new();
        lru.introspect(&mut again);
        assert_eq!(dump, again);
    }

    #[test]
    fn aging_creates_generations_up_to_max() {
        let (mut lru, mut mem) = setup(64, 8, MgLruConfig::kernel_default());
        lru.age_once(&mut mem);
        lru.age_once(&mut mem);
        assert_eq!(lru.nr_gens(), 4);
        let before = lru.max_seq();
        lru.age_once(&mut mem); // capped at max_gens = 4
        assert_eq!(lru.nr_gens(), 4);
        assert_eq!(lru.max_seq(), before, "no new gen beyond the cap");
    }

    #[test]
    fn gen14_always_creates_generations() {
        let (mut lru, mut mem) = setup(64, 8, MgLruConfig::gen14());
        for _ in 0..10 {
            lru.age_once(&mut mem);
        }
        assert_eq!(lru.max_seq(), 11);
    }

    #[test]
    fn cold_pages_are_evicted_hot_pages_promoted() {
        let (mut lru, mut mem) = setup(64, 16, MgLruConfig::scan_none());
        // ages pages into older gens
        lru.age_once(&mut mem);
        lru.age_once(&mut mem);
        // Pages 0..4 are hot.
        for k in 0..4 {
            mem.set_accessed(k, true);
        }
        let out = lru.reclaim(8, &mut mem);
        assert!(!out.victims.is_empty());
        for k in 0..4u32 {
            assert!(!out.victims.contains(&k), "hot page {k} evicted");
        }
        assert!(out.promoted >= 1);
        assert!(out.cpu_ns > 0);
    }

    #[test]
    fn eviction_spatial_scan_promotes_neighbors() {
        let mut cfg = MgLruConfig::scan_none();
        cfg.spatial_scan = true;
        let (mut lru, mut mem) = setup(64, 16, cfg);
        lru.age_once(&mut mem);
        lru.age_once(&mut mem);
        // All of cache line 0 (pages 0..8) is hot.
        for k in 0..8 {
            mem.set_accessed(k, true);
        }
        let out = lru.reclaim(4, &mut mem);
        // rmap probe finds one page hot; the line scan promotes its 7
        // neighbours without 7 more rmap walks.
        assert!(out.promoted >= 8, "promoted {}", out.promoted);
        assert!(mem.lines_scanned >= 1);
        for k in 0..8u32 {
            assert!(!out.victims.contains(&k));
        }
    }

    #[test]
    fn spatial_scan_off_costs_more_rmap_walks() {
        let mut cfg = MgLruConfig::scan_none();
        cfg.spatial_scan = false;
        let (mut lru, mut mem) = setup(64, 16, cfg);
        lru.age_once(&mut mem);
        lru.age_once(&mut mem);
        for k in 0..8 {
            mem.set_accessed(k, true);
        }
        lru.reclaim(4, &mut mem);
        assert_eq!(mem.lines_scanned, 0);
    }

    #[test]
    fn scan_all_walks_every_region() {
        let (mut lru, mut mem) = setup(2048, 2048, MgLruConfig::scan_all());
        lru.age_once(&mut mem);
        assert_eq!(lru.stats().regions_walked, 4);
        assert_eq!(lru.stats().regions_skipped, 0);
        assert_eq!(lru.stats().pte_scans, 2048);
    }

    #[test]
    fn scan_none_walks_nothing() {
        let (mut lru, mut mem) = setup(2048, 2048, MgLruConfig::scan_none());
        lru.age_once(&mut mem);
        assert_eq!(lru.stats().regions_walked, 0);
        assert_eq!(lru.stats().pte_scans, 0);
    }

    #[test]
    fn scan_rand_is_probabilistic_but_deterministic() {
        let run = |seed| {
            let (mut lru, mut mem) = setup(512 * 64, 0, MgLruConfig::scan_rand(seed));
            // make all regions non-empty so present-count skip doesn't hide
            // the mode decision
            for r in 0..64u32 {
                mem.set_resident(r * 512, true);
                lru.on_page_resident(r * 512, false, &mut mem);
            }
            lru.age_once(&mut mem);
            (lru.stats().regions_walked, lru.stats().regions_skipped)
        };
        let (w1, s1) = run(7);
        let (w2, s2) = run(7);
        assert_eq!((w1, s1), (w2, s2), "same seed, same decisions");
        assert!(w1 > 10 && s1 > 10, "p=0.5 over 64 regions: w={w1} s={s1}");
    }

    #[test]
    fn bloom_mode_skips_cold_regions_after_warmup() {
        let pages = 512 * 8;
        let (mut lru, mut mem) = setup(pages, pages, MgLruConfig::kernel_default());
        // Warmup walk: filter empty -> scans everything.
        // Only region 0 is hot (every line has an accessed PTE).
        for k in 0..512 {
            mem.set_accessed(k, true);
        }
        lru.age_once(&mut mem);
        let walked_first = lru.stats().regions_walked;
        assert_eq!(walked_first, 8, "bootstrap scans all regions");
        // Second walk: only region 0 passes the filter.
        for k in 0..512 {
            mem.set_accessed(k, true);
        }
        lru.age_once(&mut mem);
        assert_eq!(lru.stats().regions_walked, walked_first + 1);
        assert_eq!(lru.stats().regions_skipped, 7);
    }

    #[test]
    fn aging_promotes_accessed_pages_to_new_youngest() {
        let (mut lru, mut mem) = setup(64, 16, MgLruConfig::gen14());
        mem.set_accessed(5, true);
        lru.age_once(&mut mem);
        // page 5 should now be in the youngest generation: a reclaim of
        // everything must evict it last. Evict 15 pages:
        let out = lru.reclaim(15, &mut mem);
        assert_eq!(out.victims.len(), 15);
        assert!(!out.victims.contains(&5));
    }

    #[test]
    fn sync_aging_kicks_in_when_gens_exhausted() {
        let (mut lru, mut mem) = setup(64, 16, MgLruConfig::kernel_default());
        // No background aging has run; all pages are in gen max_seq.
        let out = lru.reclaim(4, &mut mem);
        assert!(!out.victims.is_empty(), "sync aging must unblock eviction");
        assert!(lru.stats().aging_passes >= 1);
    }

    #[test]
    fn refault_notes_tier() {
        let (mut lru, mut mem) = setup(64, 16, MgLruConfig::scan_none());
        lru.age_once(&mut mem);
        lru.age_once(&mut mem);
        let out = lru.reclaim(4, &mut mem);
        let victim = out.victims[0];
        mem.set_resident(victim, false);
        lru.on_page_evicted(victim, &mut mem);
        // refault it
        mem.set_resident(victim, true);
        lru.on_page_resident(victim, true, &mut mem);
        // no panic + page back in youngest gen
        let out2 = lru.reclaim(16, &mut mem);
        assert!(!out2.victims.contains(&victim) || out2.victims.len() >= 12);
    }

    #[test]
    fn fd_access_bumps_tier_not_generation() {
        let mut mem = FakeMem::new(64);
        mem.set_file_backed(3, true);
        mem.set_resident(3, true);
        let mut lru = MgLru::new(64, MgLruConfig::kernel_default(), CostModel::default());
        lru.on_page_resident(3, false, &mut mem);
        let gen_before = lru.meta[3].seq;
        lru.on_fd_access(3, &mut mem);
        assert_eq!(lru.meta[3].tier, 1);
        assert_eq!(lru.meta[3].seq, gen_before, "tier bump stays in gen");
        lru.on_fd_access(3, &mut mem);
        lru.on_fd_access(3, &mut mem);
        assert_eq!(lru.meta[3].tier, 2); // refs=3 -> log2(4)=2
        for _ in 0..10 {
            lru.on_fd_access(3, &mut mem);
        }
        assert_eq!(lru.meta[3].tier, 3, "tier caps at MAX_TIERS-1");
    }

    #[test]
    fn names_reflect_configuration() {
        let mk = |cfg| MgLru::new(4, cfg, CostModel::default()).name();
        assert_eq!(mk(MgLruConfig::kernel_default()), "mglru");
        assert_eq!(mk(MgLruConfig::scan_all()), "mglru-scan-all");
        assert_eq!(mk(MgLruConfig::scan_none()), "mglru-scan-none");
        assert_eq!(mk(MgLruConfig::scan_rand(1)), "mglru-scan-rand");
        assert_eq!(mk(MgLruConfig::gen14()), "mglru-gen14");
    }

    #[test]
    fn reclaim_scan_is_bounded() {
        // Everything hot: reclaim must terminate via the scan cap.
        let (mut lru, mut mem) = setup(4096, 4096, MgLruConfig::scan_none());
        lru.age_once(&mut mem);
        lru.age_once(&mut mem);
        for k in 0..4096 {
            mem.set_accessed(k, true);
        }
        let out = lru.reclaim(32, &mut mem);
        assert!(out.scanned <= 32 * 16 + 1);
    }

    #[test]
    fn wants_background_after_pressure() {
        let (mut lru, mut mem) = setup(64, 16, MgLruConfig::kernel_default());
        lru.reclaim(8, &mut mem);
        assert!(lru.wants_background(&mem));
        let bg = lru.background_work(u64::MAX, &mut mem);
        assert!(bg.cpu_ns > 0);
        assert!(!bg.more);
        assert!(!lru.wants_background(&mem));
    }

    #[test]
    fn background_walk_is_incremental_under_small_budget() {
        let (mut lru, mut mem) = setup(512 * 8, 512 * 8, MgLruConfig::scan_all());
        lru.reclaim(8, &mut mem); // sets needs_aging
        assert!(lru.wants_background(&mem));
        // A tiny budget forces multiple steps before the pass completes.
        let mut steps = 0;
        loop {
            let bg = lru.background_work(1_000, &mut mem);
            steps += 1;
            if !bg.more {
                break;
            }
            assert!(steps < 10_000, "walk never completes");
        }
        assert!(steps > 1, "walk finished in one tiny-budget step");
    }
}
