//! The scan-cost model.

use pagesim_engine::Nanos;

/// CPU costs of the memory-management primitives policies execute.
///
/// These relative costs are the causal mechanism behind most of the
/// paper's findings: Clock pays [`rmap_walk_ns`](Self::rmap_walk_ns) (a
/// pointer chase through the reverse map) per accessed-bit probe, while
/// MG-LRU's linear walks pay [`pte_scan_ns`](Self::pte_scan_ns) per PTE —
/// more than an order of magnitude cheaper per entry — at the risk of
/// scanning entries that didn't need scanning (the `Scan-All` pathology).
///
/// Defaults are calibrated to DRAM-era microarchitecture: a dependent
/// pointer chase costs a few hundred ns (rmap: folio → anon_vma → vma →
/// page table), while streaming over a 64-byte PTE cache line costs a few
/// ns per entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Reverse-map walk + PTE probe for one page (pointer chasing).
    pub rmap_walk_ns: Nanos,
    /// One PTE examined during a linear page-table scan.
    pub pte_scan_ns: Nanos,
    /// Checking one PMD region against the bloom filter (or the scan-mode
    /// decision) during an aging walk.
    pub region_check_ns: Nanos,
    /// Moving a page between LRU lists / generations (O(1) but not free).
    pub list_op_ns: Nanos,
    /// Fixed software overhead of selecting one victim (unmap, TLB
    /// shootdown request, swap-slot bookkeeping).
    pub evict_fixed_ns: Nanos,
}

impl CostModel {
    /// Calibrated defaults (see struct docs).
    pub const fn default_model() -> CostModel {
        CostModel {
            rmap_walk_ns: 350,
            pte_scan_ns: 6,
            region_check_ns: 60,
            list_op_ns: 25,
            evict_fixed_ns: 1_200,
        }
    }

    /// Scales the *footprint-proportional* scan costs by a
    /// page-compression factor.
    ///
    /// The simulator shrinks multi-GB footprints to tens of thousands of
    /// pages so runs finish in seconds. Fault and eviction counts are
    /// calibrated 1:1 against the paper's measured event counts, so
    /// per-event costs (rmap walks, list moves, evictions) must stay
    /// unscaled. What the shrink silently deflates is the cost of walking
    /// the *whole* page table — each simulated leaf entry stands for
    /// `factor` real entries — so only the linear-walk primitives
    /// (`pte_scan_ns`, `region_check_ns`) are multiplied. This restores
    /// the paper's scan-overhead-to-fault-cost balance (its central
    /// tension, §VI-B) without distorting Clock's per-eviction rmap cost.
    pub const fn with_page_compression(self, factor: u64) -> CostModel {
        CostModel {
            rmap_walk_ns: self.rmap_walk_ns,
            pte_scan_ns: self.pte_scan_ns * factor,
            region_check_ns: self.region_check_ns * factor,
            list_op_ns: self.list_op_ns,
            evict_fixed_ns: self.evict_fixed_ns,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::default_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmap_dwarfs_linear_scan() {
        let c = CostModel::default();
        // The whole MG-LRU premise: a pointer chase costs far more than a
        // linearly scanned PTE.
        assert!(c.rmap_walk_ns > 20 * c.pte_scan_ns);
    }

    #[test]
    fn default_trait_matches_const() {
        assert_eq!(CostModel::default(), CostModel::default_model());
    }
}
