//! The classic Clock (active/inactive list) replacement policy.

use pagesim_mem::PageKey;

use crate::cost::CostModel;
use crate::list::{Links, PageList};
use crate::memview::MemView;
use crate::{BgOutcome, Policy, PolicyStats, ReclaimOutcome};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Residence {
    None,
    Active,
    Inactive,
}

/// Linux's pre-MG-LRU page replacement: two lists approximating LRU.
///
/// * The **active list** is meant to hold the working set; the **inactive
///   list** holds eviction candidates.
/// * When the lists are unbalanced, reclaim scans the active tail: pages
///   with the accessed bit set rotate to the active head, others demote to
///   the inactive head.
/// * Eviction scans the inactive tail: accessed pages get a "second
///   chance" (promotion back to active), others are reclaimed.
///
/// Every accessed-bit probe goes through the reverse map
/// ([`MemView::rmap_test_clear_accessed`]) — a pointer chase per page.
/// That per-page cost, with no spatial locality to exploit, is the
/// overhead MG-LRU's linear walks remove, and it is charged faithfully
/// here via [`CostModel::rmap_walk_ns`].
#[derive(Debug)]
pub struct ClockLru {
    costs: CostModel,
    nodes: Vec<Links>,
    state: Vec<Residence>,
    /// "Referenced" software bit: first fd-access marks, second activates
    /// (mark_page_accessed semantics).
    referenced: Vec<bool>,
    active: PageList,
    inactive: PageList,
    stats: PolicyStats,
}

impl ClockLru {
    /// Creates the policy for a system of `total_pages` pages.
    pub fn new(total_pages: u32, costs: CostModel) -> Self {
        ClockLru {
            costs,
            nodes: vec![Links::default(); total_pages as usize],
            state: vec![Residence::None; total_pages as usize],
            referenced: vec![false; total_pages as usize],
            active: PageList::new(),
            inactive: PageList::new(),
            stats: PolicyStats::default(),
        }
    }

    /// Pages currently on the active list.
    pub fn active_len(&self) -> u32 {
        self.active.len()
    }

    /// Pages currently on the inactive list.
    pub fn inactive_len(&self) -> u32 {
        self.inactive.len()
    }

    fn detach(&mut self, key: PageKey) {
        match self.state[key as usize] {
            Residence::Active => self.active.remove(&mut self.nodes, key),
            Residence::Inactive => self.inactive.remove(&mut self.nodes, key),
            Residence::None => {}
        }
        self.state[key as usize] = Residence::None;
    }

    fn move_to_active_head(&mut self, key: PageKey) {
        self.detach(key);
        self.active.push_front(&mut self.nodes, key);
        self.state[key as usize] = Residence::Active;
    }

    fn move_to_inactive_head(&mut self, key: PageKey) {
        self.detach(key);
        self.inactive.push_front(&mut self.nodes, key);
        self.state[key as usize] = Residence::Inactive;
    }
}

impl Policy for ClockLru {
    fn name(&self) -> String {
        "clock".to_owned()
    }

    fn on_page_resident(&mut self, key: PageKey, _refault: bool, mem: &mut dyn MemView) {
        // Anonymous pages start on the active list (classic kernel
        // behaviour); file pages start inactive so streaming reads age out
        // quickly.
        self.referenced[key as usize] = false;
        if mem.page_info(key).file_backed {
            self.move_to_inactive_head(key);
        } else {
            self.move_to_active_head(key);
        }
    }

    fn on_page_evicted(&mut self, key: PageKey, _mem: &mut dyn MemView) {
        // Victims were already detached during selection.
        debug_assert_eq!(self.state[key as usize], Residence::None);
    }

    fn forget(&mut self, key: PageKey) {
        self.detach(key);
        self.referenced[key as usize] = false;
    }

    fn on_fd_access(&mut self, key: PageKey, _mem: &mut dyn MemView) {
        // mark_page_accessed: inactive+referenced -> active.
        match self.state[key as usize] {
            Residence::Inactive => {
                if self.referenced[key as usize] {
                    self.move_to_active_head(key);
                    self.referenced[key as usize] = false;
                    self.stats.promotions += 1;
                } else {
                    self.referenced[key as usize] = true;
                }
            }
            Residence::Active => self.referenced[key as usize] = true,
            Residence::None => {}
        }
    }

    fn reclaim(&mut self, want: u32, mem: &mut dyn MemView) -> ReclaimOutcome {
        let mut out = ReclaimOutcome::default();

        // Phase 1: balance — demote cold active-tail pages to inactive.
        let balance_cap = (want * 2).max(32);
        let mut scanned = 0u32;
        while self.inactive.len() < self.active.len() && scanned < balance_cap {
            let Some(key) = self.active.pop_back(&mut self.nodes) else {
                break;
            };
            self.state[key as usize] = Residence::None;
            scanned += 1;
            out.scanned += 1;
            out.cpu_ns += self.costs.rmap_walk_ns + self.costs.list_op_ns;
            self.stats.rmap_walks += 1;
            if mem.rmap_test_clear_accessed(key) {
                self.move_to_active_head(key); // rotate
            } else {
                self.move_to_inactive_head(key); // demote
            }
        }

        // Phase 2: evict from the inactive tail with second chances.
        let evict_scan_cap = (want * 8).max(64);
        let mut evict_scanned = 0u32;
        while (out.victims.len() as u32) < want && evict_scanned < evict_scan_cap {
            let Some(key) = self.inactive.pop_back(&mut self.nodes) else {
                break;
            };
            self.state[key as usize] = Residence::None;
            evict_scanned += 1;
            out.scanned += 1;
            out.cpu_ns += self.costs.rmap_walk_ns;
            self.stats.rmap_walks += 1;
            if mem.rmap_test_clear_accessed(key) {
                // Second chance.
                self.move_to_active_head(key);
                out.promoted += 1;
                self.stats.promotions += 1;
                out.cpu_ns += self.costs.list_op_ns;
            } else {
                out.victims.push(key);
                out.cpu_ns += self.costs.evict_fixed_ns;
                self.stats.evictions += 1;
            }
        }
        out
    }

    fn wants_background(&self, _mem: &dyn MemView) -> bool {
        // Clock does all its scanning in reclaim context.
        false
    }

    fn background_work(&mut self, _budget_ns: u64, _mem: &mut dyn MemView) -> BgOutcome {
        BgOutcome::default()
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn occupancy(&self) -> Vec<(u64, u64)> {
        vec![
            (0, self.inactive_len() as u64),
            (1, self.active_len() as u64),
        ]
    }

    // Clock's `lru_gen`-analog dump: the hand (the inactive tail — the
    // next page the sweep examines), both list sizes, and the cumulative
    // sweep counters. Integers only.
    fn introspect(&self, out: &mut String) {
        use std::fmt::Write as _;
        let hand = self
            .inactive
            .iter_from_back(&self.nodes)
            .next()
            .map_or(-1, |k| k as i64);
        let _ = writeln!(out, "policy {} hand {}", self.name(), hand);
        let _ = writeln!(
            out,
            " active {} inactive {}",
            self.active_len(),
            self.inactive_len()
        );
        let _ = writeln!(
            out,
            " sweep rmap_walks {} promotions {} evictions {}",
            self.stats.rmap_walks, self.stats.promotions, self.stats.evictions
        );
    }

    #[cfg(feature = "sanitize")]
    fn check_invariants(&self) -> Option<u64> {
        let mut listed = vec![false; self.nodes.len()];
        let mut total: u64 = 0;
        for (list, which) in [
            (&self.active, Residence::Active),
            (&self.inactive, Residence::Inactive),
        ] {
            let mut count: u32 = 0;
            for key in list.iter_from_back(&self.nodes) {
                assert!(
                    !std::mem::replace(&mut listed[key as usize], true),
                    "sanitize: clock-list: page {key} on two lists"
                );
                assert_eq!(
                    self.state[key as usize], which,
                    "sanitize: clock-list: page {key} on the {which:?} list with state {:?}",
                    self.state[key as usize]
                );
                count += 1;
            }
            assert_eq!(
                count,
                list.len(),
                "sanitize: clock-list: list claims {} pages, walk found {count}",
                list.len()
            );
            total += count as u64;
        }
        for (key, node) in self.nodes.iter().enumerate() {
            assert_eq!(
                node.attached(),
                listed[key],
                "sanitize: clock-list: page {key} attached flag disagrees with list membership"
            );
            if !node.attached() {
                assert_eq!(
                    self.state[key],
                    Residence::None,
                    "sanitize: clock-list: detached page {key} keeps state {:?}",
                    self.state[key]
                );
            }
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memview::tests_support::FakeMem;

    fn setup(pages: u32, resident: &[PageKey]) -> (ClockLru, FakeMem) {
        let mut mem = FakeMem::new(pages);
        let mut clock = ClockLru::new(pages, CostModel::default());
        for &k in resident {
            mem.set_resident(k, true);
            clock.on_page_resident(k, false, &mut mem);
        }
        (clock, mem)
    }

    #[test]
    fn new_anon_pages_go_active() {
        let (clock, _mem) = setup(8, &[0, 1, 2]);
        assert_eq!(clock.active_len(), 3);
        assert_eq!(clock.inactive_len(), 0);
    }

    #[test]
    fn occupancy_reports_both_lists() {
        let (clock, _mem) = setup(8, &[0, 1, 2]);
        assert_eq!(clock.occupancy(), vec![(0, 0), (1, 3)]);
    }

    #[test]
    fn reclaim_demotes_then_evicts_cold_pages() {
        let (mut clock, mut mem) = setup(8, &[0, 1, 2, 3]);
        // Page 3 is hot.
        mem.set_accessed(3, true);
        let out = clock.reclaim(2, &mut mem);
        assert_eq!(out.victims.len(), 2);
        assert!(!out.victims.contains(&3), "hot page must survive");
        assert!(out.cpu_ns > 0);
        assert!(out.scanned >= 2);
    }

    #[test]
    fn second_chance_promotes_accessed_inactive() {
        let (mut clock, mut mem) = setup(8, &[0, 1]);
        // Force both onto inactive by reclaiming zero... instead do a
        // balance pass: reclaim(0) balances lists.
        clock.reclaim(0, &mut mem);
        // whichever is on inactive, mark accessed, then reclaim
        mem.set_accessed(0, true);
        mem.set_accessed(1, true);
        let out = clock.reclaim(1, &mut mem);
        assert!(out.victims.is_empty(), "all pages accessed: second chance");
        assert!(out.promoted > 0);
    }

    #[test]
    fn fd_access_activates_on_second_touch() {
        let mut mem = FakeMem::new(8);
        mem.set_file_backed(0, true);
        mem.set_resident(0, true);
        let mut clock = ClockLru::new(8, CostModel::default());
        clock.on_page_resident(0, false, &mut mem);
        assert_eq!(clock.inactive_len(), 1, "file pages start inactive");
        clock.on_fd_access(0, &mut mem);
        assert_eq!(clock.inactive_len(), 1, "first touch only marks");
        clock.on_fd_access(0, &mut mem);
        assert_eq!(clock.active_len(), 1, "second touch activates");
    }

    #[test]
    fn reclaim_on_empty_lists_is_safe() {
        let (mut clock, mut mem) = setup(8, &[]);
        let out = clock.reclaim(4, &mut mem);
        assert!(out.victims.is_empty());
        assert_eq!(out.cpu_ns, 0);
    }

    #[test]
    fn costs_scale_with_scanning() {
        let (mut clock, mut mem) = setup(64, &(0..64).collect::<Vec<_>>());
        let out = clock.reclaim(8, &mut mem);
        let expected_min = out.scanned * CostModel::default().rmap_walk_ns;
        assert!(out.cpu_ns >= expected_min);
    }

    #[test]
    fn no_background_work() {
        let (clock, mem) = setup(8, &[0]);
        assert!(!clock.wants_background(&mem));
    }

    #[test]
    fn introspect_dumps_hand_and_lists() {
        let (mut clock, mut mem) = setup(8, &[0, 1, 2, 3]);
        let mut dump = String::new();
        clock.introspect(&mut dump);
        assert!(dump.starts_with("policy clock hand -1\n"), "{dump}");
        assert!(dump.contains(" active 4 inactive 0\n"), "{dump}");
        // A balance pass populates the inactive list: the hand is its tail.
        clock.reclaim(0, &mut mem);
        dump.clear();
        clock.introspect(&mut dump);
        assert!(dump.contains("hand 0"), "oldest demoted page: {dump}");
        assert!(dump.contains(" sweep rmap_walks "), "{dump}");
    }
}
