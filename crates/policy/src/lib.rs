//! # pagesim-policy
//!
//! The page-replacement policies characterized by the paper, implemented
//! against an abstract kernel memory interface ([`MemView`]):
//!
//! * [`ClockLru`] — the classic Linux active/inactive-list ("Clock",
//!   "LRU second chance", "2Q") policy. Every accessed-bit probe walks the
//!   reverse map — a pointer chase — which is exactly the cost MG-LRU was
//!   designed to avoid.
//! * [`MgLru`] — Multi-Generational LRU as shipped in Linux 6.x:
//!   generation lists, an aging walk that scans leaf page tables linearly
//!   and is filtered by a [`BloomFilter`] of hot PMD regions, an eviction
//!   scan that exploits page-table spatial locality, file-page tiers, and
//!   a [`PidController`] balancing tier refault rates.
//!
//! The MG-LRU variants studied in §V-B of the paper are configuration
//! points ([`ScanMode`]): `Default` (bloom filter), `ScanAll`, `ScanNone`,
//! `ScanRand`, plus the `Gen-14` generation-count override
//! ([`MgLruConfig::max_gens`]).
//!
//! Policies do no I/O and own no page tables: they select victims, request
//! promotions, and report the CPU time their scans would cost according to
//! a [`CostModel`]. The kernel layer (`pagesim` core) charges those costs
//! to the simulated threads that incurred them — this cost routing is what
//! lets the simulator reproduce the paper's scanning-overhead findings.


pub mod bloom;
mod clock;
mod cost;
mod list;
pub mod memview;
mod mglru;
pub mod pid;

pub use clock::ClockLru;
pub use cost::CostModel;
pub use list::{Links, PageList};
pub use memview::MemView;
pub use mglru::{MgLru, MgLruConfig, ScanMode};
pub use bloom::BloomFilter;
pub use pid::PidController;

use pagesim_engine::Nanos;
use pagesim_mem::PageKey;

/// Result of a reclaim request.
#[derive(Clone, Debug, Default)]
pub struct ReclaimOutcome {
    /// Pages selected for eviction. The kernel unmaps them and performs
    /// swap-out; policies never touch devices.
    pub victims: Vec<PageKey>,
    /// CPU time the selection cost (rmap walks, PTE scans, list moves),
    /// charged to the reclaiming thread.
    pub cpu_ns: Nanos,
    /// Pages examined during the scan.
    pub scanned: u64,
    /// Pages found accessed and promoted instead of evicted.
    pub promoted: u64,
}

/// Result of one unit of background maintenance work.
#[derive(Clone, Copy, Debug, Default)]
pub struct BgOutcome {
    /// CPU time consumed, charged to the background kernel thread.
    pub cpu_ns: Nanos,
    /// Whether more background work is immediately pending.
    pub more: bool,
}

/// Aggregate policy counters for reports and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// PTEs examined through linear page-table scans.
    pub pte_scans: u64,
    /// Accessed-bit probes through the reverse map (pointer chases).
    pub rmap_walks: u64,
    /// Pages promoted for recency.
    pub promotions: u64,
    /// Victims selected.
    pub evictions: u64,
    /// Aging passes completed (MG-LRU only).
    pub aging_passes: u64,
    /// Lazily promoted pages the eviction scan had to re-sort
    /// (MG-LRU only): scan budget spent without finding victims.
    pub resorted: u64,
    /// PMD regions skipped thanks to the bloom filter / scan mode.
    pub regions_skipped: u64,
    /// PMD regions actually walked.
    pub regions_walked: u64,
    /// File pages spared from eviction by tier protection.
    pub tier_protected: u64,
}

/// A page-replacement policy, driven by the simulated kernel.
///
/// Implementations must be deterministic given their configuration (any
/// internal randomness must come from a caller-provided seed).
pub trait Policy {
    /// Short name for reports ("clock", "mglru", "mglru-scan-none", ...).
    fn name(&self) -> String;

    /// A page became resident. `refault` is true when the page had been
    /// evicted before (swap-in rather than first touch).
    fn on_page_resident(&mut self, key: PageKey, refault: bool, mem: &mut dyn MemView);

    /// The kernel finished evicting `key` (it was returned as a victim).
    fn on_page_evicted(&mut self, key: PageKey, mem: &mut dyn MemView);

    /// Removes `key` from the policy's tracking outside the reclaim path
    /// (OOM kill, task exit). Unlike [`on_page_evicted`](Policy::on_page_evicted),
    /// the page may still be on a policy list; a no-op if it is not tracked.
    fn forget(&mut self, key: PageKey);

    /// A file-descriptor access to a resident file-backed page (buffered
    /// I/O does not set PTE accessed bits; MG-LRU's tiers exist for this).
    fn on_fd_access(&mut self, key: PageKey, mem: &mut dyn MemView);

    /// Selects up to `want` eviction victims.
    fn reclaim(&mut self, want: u32, mem: &mut dyn MemView) -> ReclaimOutcome;

    /// Whether the policy currently has background work (MG-LRU aging).
    fn wants_background(&self, mem: &dyn MemView) -> bool;

    /// Performs up to `budget_ns` of background work. Long aging walks
    /// make incremental progress across calls, so their accessed-bit
    /// clears interleave with application execution and eviction — the
    /// timing structure behind the paper's Scan-All straggler analysis.
    fn background_work(&mut self, budget_ns: Nanos, mem: &mut dyn MemView) -> BgOutcome;

    /// Counters.
    fn stats(&self) -> PolicyStats;

    /// Instantaneous list occupancy as `(label, pages)` pairs, oldest
    /// list first, for telemetry sampling. MG-LRU reports one entry per
    /// live generation labeled by its sequence number; Clock reports
    /// `(0, inactive)` and `(1, active)`. The default is empty (no
    /// occupancy story to tell).
    fn occupancy(&self) -> Vec<(u64, u64)> {
        Vec::new()
    }

    /// Appends a `/sys/kernel/debug/lru_gen`-style introspection dump to
    /// `out`: one line per internal structure, integers only (no floats,
    /// so reports diff bit-identically across hosts). MG-LRU dumps
    /// per-generation sequence numbers, ages, and sizes plus per-tier
    /// refault windows; Clock dumps its hand position and sweep stats.
    /// Reporting surface only — never called on the simulation's hot
    /// path, and implementations must not mutate policy state. The
    /// default writes nothing (no internals to show).
    fn introspect(&self, out: &mut String) {
        let _ = out;
    }

    /// DEBUG_VM-style structural self-check (the `sanitize` feature).
    /// Returns the number of pages the policy currently tracks so the
    /// kernel can cross-check it against resident PTEs, or `None` when the
    /// policy performs no check.
    ///
    /// # Panics
    ///
    /// Implementations panic with a `sanitize: <invariant>:` message on
    /// any inconsistency.
    #[cfg(feature = "sanitize")]
    fn check_invariants(&self) -> Option<u64> {
        None
    }
}
