//! A stable, process-independent hash for configurations.
//!
//! The on-disk cell cache addresses results by a hash of the fully-resolved
//! experiment configuration, so the hash must be identical across runs,
//! platforms and compiler versions — `std::hash::Hash` (SipHash with a
//! random key, and layout-dependent derives) cannot be used. This module
//! implements FNV-1a over an explicit, field-by-field encoding: every
//! semantically meaningful field is written through a typed method, with a
//! domain tag per write so that adjacent fields cannot alias (e.g. an
//! `Option::None` followed by a `0` hashes differently from `Some(0)`
//! followed by nothing).

/// FNV-1a accumulator with typed, tagged writes.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// A fresh accumulator.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    fn byte(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    fn tagged(&mut self, tag: u8, bytes: &[u8]) {
        self.byte(tag);
        for &b in bytes {
            self.byte(b);
        }
    }

    /// Writes a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.tagged(1, &v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.tagged(2, &v.to_le_bytes());
    }

    /// Writes a `usize` (hashed as `u64` so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.tagged(3, &(v as u64).to_le_bytes());
    }

    /// Writes an `f64` by IEEE bit pattern (`-0.0` and `0.0` differ; any
    /// NaN payload differs from any number — configs should not hold NaN).
    pub fn write_f64(&mut self, v: f64) {
        self.tagged(4, &v.to_bits().to_le_bytes());
    }

    /// Writes a `bool`.
    pub fn write_bool(&mut self, v: bool) {
        self.tagged(5, &[v as u8]);
    }

    /// Writes a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.byte(6);
        self.write_u64(s.len() as u64);
        for &b in s.as_bytes() {
            self.byte(b);
        }
    }

    /// Writes an `Option` discriminant, then the value if present.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.byte(7),
            Some(x) => {
                self.byte(8);
                self.write_u64(x);
            }
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StableHasher::new();
        let mut b = StableHasher::new();
        for h in [&mut a, &mut b] {
            h.write_u64(42);
            h.write_str("cell");
            h.write_f64(0.5);
            h.write_bool(true);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn field_order_and_type_matter() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StableHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = StableHasher::new();
        c.write_u64(1);
        let mut d = StableHasher::new();
        d.write_u32(1);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn none_does_not_alias_zero() {
        let mut a = StableHasher::new();
        a.write_opt_u64(None);
        a.write_u64(0);
        let mut b = StableHasher::new();
        b.write_opt_u64(Some(0));
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn strings_are_length_prefixed() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
