//! Per-figure experiment drivers.
//!
//! Each `figN` function regenerates the corresponding figure of the paper:
//! it runs (or reuses) the experiment cells the figure needs, computes the
//! same normalized series the paper plots, and renders a plain-text table.
//! The structured results are public so integration tests can assert on
//! the reproduced *shapes* (who wins, spreads, correlations).
//!
//! Figures share experiment cells (Fig. 1 and Fig. 2 plot the same runs);
//! [`Bench`] caches each `(workload, policy, swap, ratio)` cell so a full
//! `fig1..fig12` sweep runs every cell exactly once.

mod faults;
mod figures;

pub use faults::*;
pub use figures::*;

use std::collections::HashMap;
use std::sync::Arc;

use pagesim_workloads::buffered::{BufferedIoConfig, BufferedIoWorkload};
use pagesim_workloads::pagerank::{PageRankConfig, PageRankWorkload};
use pagesim_workloads::tpch::{TpchConfig, TpchWorkload};
use pagesim_workloads::ycsb::{YcsbConfig, YcsbMix, YcsbWorkload};
use pagesim_workloads::Workload;

use crate::config::{FaultConfig, PolicyChoice, SwapChoice, SystemConfig};
use crate::metrics::{Experiment, TrialSet};

/// Sweep scale: trials per cell and workload footprint factor.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Trials per experiment cell (the paper runs 25).
    pub trials: u32,
    /// Footprint multiplier on the workload defaults.
    pub footprint: f64,
    /// Master seed; trial seeds derive from it.
    pub seed: u64,
}

impl Scale {
    /// Fast smoke scale for tests and CI.
    pub fn smoke() -> Scale {
        Scale {
            trials: 3,
            footprint: 0.25,
            seed: 0xC0FFEE,
        }
    }

    /// Default laptop scale.
    pub fn default_scale() -> Scale {
        Scale {
            trials: 10,
            footprint: 0.5,
            seed: 0xC0FFEE,
        }
    }

    /// Paper scale: 25 trials, full footprints.
    pub fn paper() -> Scale {
        Scale {
            trials: 25,
            footprint: 1.0,
            seed: 0xC0FFEE,
        }
    }
}

/// The five workloads of the paper's methodology (§IV).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Wl {
    /// Spark-SQL TPC-H analog.
    Tpch,
    /// GAP PageRank analog.
    PageRank,
    /// YCSB-A on the KV store (50/50 read/update).
    YcsbA,
    /// YCSB-B (95/5).
    YcsbB,
    /// YCSB-C (100/0).
    YcsbC,
}

impl Wl {
    /// All five, in the paper's plotting order.
    pub fn all() -> [Wl; 5] {
        [Wl::Tpch, Wl::PageRank, Wl::YcsbA, Wl::YcsbB, Wl::YcsbC]
    }

    /// Whether this is a YCSB (latency-oriented) workload.
    pub fn is_ycsb(self) -> bool {
        matches!(self, Wl::YcsbA | Wl::YcsbB | Wl::YcsbC)
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Wl::Tpch => "tpch",
            Wl::PageRank => "pagerank",
            Wl::YcsbA => "ycsb-a",
            Wl::YcsbB => "ycsb-b",
            Wl::YcsbC => "ycsb-c",
        }
    }
}

type CellKey = (Wl, &'static str, SwapChoice, u32);

/// Workload instances plus a cache of completed experiment cells.
pub struct Bench {
    scale: Scale,
    tpch: TpchWorkload,
    pagerank: PageRankWorkload,
    ycsb_a: YcsbWorkload,
    ycsb_b: YcsbWorkload,
    ycsb_c: YcsbWorkload,
    buffered: BufferedIoWorkload,
    cache: parking_lot::Mutex<HashMap<CellKey, Arc<TrialSet>>>,
}

impl Bench {
    /// Builds all workloads at the given scale.
    pub fn new(scale: Scale) -> Bench {
        let f = scale.footprint;
        let ycsb = |mix| {
            let mut cfg = YcsbConfig::with_mix(mix);
            cfg.items = ((cfg.items as f64 * f) as u32).max(1_000);
            cfg.requests = ((cfg.requests as f64 * f) as u64).max(10_000);
            YcsbWorkload::new(cfg, 0xD00D)
        };
        Bench {
            scale,
            tpch: TpchWorkload::new(TpchConfig::default().scaled(f)),
            pagerank: PageRankWorkload::new(PageRankConfig::default().scaled(f), 0xD00D),
            ycsb_a: ycsb(YcsbMix::A),
            ycsb_b: ycsb(YcsbMix::B),
            ycsb_c: ycsb(YcsbMix::C),
            buffered: BufferedIoWorkload::new(BufferedIoConfig::default()),
            cache: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// The sweep scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The buffered-I/O workload (tier/PID ablations).
    pub fn buffered(&self) -> &BufferedIoWorkload {
        &self.buffered
    }

    /// Footprint of a workload in pages.
    pub fn footprint(&self, wl: Wl) -> u32 {
        match wl {
            Wl::Tpch => self.tpch.footprint_pages(),
            Wl::PageRank => self.pagerank.footprint_pages(),
            Wl::YcsbA => self.ycsb_a.footprint_pages(),
            Wl::YcsbB => self.ycsb_b.footprint_pages(),
            Wl::YcsbC => self.ycsb_c.footprint_pages(),
        }
    }

    /// Runs (or fetches from cache) one experiment cell.
    pub fn cell(
        &self,
        wl: Wl,
        policy: PolicyChoice,
        swap: SwapChoice,
        ratio: f64,
    ) -> Arc<TrialSet> {
        let key: CellKey = (wl, policy.label(), swap, (ratio * 100.0) as u32);
        if let Some(hit) = self.cache.lock().get(&key) {
            return Arc::clone(hit);
        }
        let config = SystemConfig::new(policy, swap).capacity_ratio(ratio);
        let exp = Experiment::new(config);
        let seed = self.scale.seed;
        let trials = self.scale.trials;
        let set = match wl {
            Wl::Tpch => exp.run_trials(&self.tpch, seed, trials),
            Wl::PageRank => exp.run_trials(&self.pagerank, seed, trials),
            Wl::YcsbA => exp.run_trials(&self.ycsb_a, seed, trials),
            Wl::YcsbB => exp.run_trials(&self.ycsb_b, seed, trials),
            Wl::YcsbC => exp.run_trials(&self.ycsb_c, seed, trials),
        };
        let set = Arc::new(set);
        self.cache.lock().insert(key, Arc::clone(&set));
        set
    }

    /// Runs one cell with a fault model attached. Fault cells are not
    /// cached: each belongs to exactly one experiment, and keying the
    /// shared cache by fault plan would buy nothing.
    pub fn fault_cell(
        &self,
        wl: Wl,
        policy: PolicyChoice,
        swap: SwapChoice,
        ratio: f64,
        faults: FaultConfig,
    ) -> TrialSet {
        let config = SystemConfig::new(policy, swap)
            .capacity_ratio(ratio)
            .faults(faults);
        let exp = Experiment::new(config);
        let seed = self.scale.seed;
        let trials = self.scale.trials;
        match wl {
            Wl::Tpch => exp.run_trials(&self.tpch, seed, trials),
            Wl::PageRank => exp.run_trials(&self.pagerank, seed, trials),
            Wl::YcsbA => exp.run_trials(&self.ycsb_a, seed, trials),
            Wl::YcsbB => exp.run_trials(&self.ycsb_b, seed, trials),
            Wl::YcsbC => exp.run_trials(&self.ycsb_c, seed, trials),
        }
    }

    /// The paper's primary performance metric for a cell: mean runtime for
    /// batch workloads, mean request latency for YCSB (Fig. 1 note).
    pub fn mean_perf(&self, wl: Wl, set: &TrialSet) -> f64 {
        if wl.is_ycsb() {
            pagesim_stats::Summary::of(&set.mean_request_latencies()).mean
        } else {
            set.runtime_summary().mean
        }
    }
}
