//! Per-figure experiment drivers.
//!
//! Each `figN` function regenerates the corresponding figure of the paper:
//! it runs (or reuses) the experiment cells the figure needs, computes the
//! same normalized series the paper plots, and renders a plain-text table.
//! The structured results are public so integration tests can assert on
//! the reproduced *shapes* (who wins, spreads, correlations).
//!
//! Figures share experiment cells (Fig. 1 and Fig. 2 plot the same runs);
//! [`Bench`] caches each cell under its *content key* — the workload plus
//! the stable hash of its fully-resolved [`SystemConfig`] — so a full
//! `fig1..fig12` sweep runs every cell exactly once, fault cells included.
//! [`figure_cells`] enumerates each figure's grid as [`CellQuery`] values
//! so an external executor (the bench crate's sweep) can precompute cells
//! trial-by-trial ([`CellSpec`], [`Bench::run_trial`]) and install them
//! with [`Bench::install_cell`] before the drivers render.

mod faults;
mod figures;

pub use faults::*;
pub use figures::*;

// Ordered containers only (pagesim-lint rule L1): the cell cache is never
// iterated today, but a `BTreeMap` keeps any future walk deterministic.
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pagesim_engine::rng::trial_seed;
use pagesim_engine::Nanos;
use pagesim_workloads::buffered::{BufferedIoConfig, BufferedIoWorkload};
use pagesim_workloads::pagerank::{PageRankConfig, PageRankWorkload};
use pagesim_workloads::tpch::{TpchConfig, TpchWorkload};
use pagesim_workloads::ycsb::{YcsbConfig, YcsbMix, YcsbWorkload};
use pagesim_workloads::Workload;

use crate::config::{FaultConfig, PolicyChoice, SwapChoice, SystemConfig};
use crate::metrics::{Experiment, RunMetrics, TrialSet};
use crate::stablehash::StableHasher;

/// Sweep scale: trials per cell and workload footprint factor.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Trials per experiment cell (the paper runs 25).
    pub trials: u32,
    /// Footprint multiplier on the workload defaults.
    pub footprint: f64,
    /// Master seed; trial seeds derive from it.
    pub seed: u64,
    /// Overrides [`SystemConfig::page_compression`] for every cell run at
    /// this scale. `None` keeps each config's own calibrated default; the
    /// paper-native tier sets it near 1 because its simulated page counts
    /// approach the paper's real ones, so each page stands for few.
    pub page_compression: Option<u64>,
}

impl Scale {
    /// Fast smoke scale for tests and CI.
    pub fn smoke() -> Scale {
        Scale {
            trials: 3,
            footprint: 0.25,
            seed: 0xC0FFEE,
            page_compression: None,
        }
    }

    /// Default laptop scale.
    pub fn default_scale() -> Scale {
        Scale {
            trials: 10,
            footprint: 0.5,
            seed: 0xC0FFEE,
            page_compression: None,
        }
    }

    /// Paper scale: 25 trials, full footprints.
    pub fn paper() -> Scale {
        Scale {
            trials: 25,
            footprint: 1.0,
            seed: 0xC0FFEE,
            page_compression: None,
        }
    }

    /// Paper-native footprint tier: workloads inflated 64x over the paper
    /// scale (TPC-H crosses a million simulated pages), with the
    /// page-compression factor dropped from 200 to 3 so each simulated
    /// page stands for roughly `200/64` real ones and the
    /// scan-cost-to-fault-cost balance stays calibrated. Two trials:
    /// this tier exists to exercise the word-level scan paths at native
    /// page counts, not to converge figure statistics.
    pub fn paper_native() -> Scale {
        Scale {
            trials: 2,
            footprint: 64.0,
            seed: 0xC0FFEE,
            page_compression: Some(3),
        }
    }
}

/// The five workloads of the paper's methodology (§IV).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Wl {
    /// Spark-SQL TPC-H analog.
    Tpch,
    /// GAP PageRank analog.
    PageRank,
    /// YCSB-A on the KV store (50/50 read/update).
    YcsbA,
    /// YCSB-B (95/5).
    YcsbB,
    /// YCSB-C (100/0).
    YcsbC,
}

impl Wl {
    /// All five, in the paper's plotting order.
    pub fn all() -> [Wl; 5] {
        [Wl::Tpch, Wl::PageRank, Wl::YcsbA, Wl::YcsbB, Wl::YcsbC]
    }

    /// Whether this is a YCSB (latency-oriented) workload.
    pub fn is_ycsb(self) -> bool {
        matches!(self, Wl::YcsbA | Wl::YcsbB | Wl::YcsbC)
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Wl::Tpch => "tpch",
            Wl::PageRank => "pagerank",
            Wl::YcsbA => "ycsb-a",
            Wl::YcsbB => "ycsb-b",
            Wl::YcsbC => "ycsb-c",
        }
    }
}

/// One experiment cell: everything needed to build its [`SystemConfig`],
/// independent of trial count. `faults: FaultConfig::none()` is a healthy
/// cell; figures and the fault study enumerate through the same type, so
/// both share the cell cache and the sweep executor.
#[derive(Clone, Debug)]
pub struct CellQuery {
    /// Workload driving the cell.
    pub wl: Wl,
    /// Replacement policy under test.
    pub policy: PolicyChoice,
    /// Swap medium.
    pub swap: SwapChoice,
    /// Memory capacity-to-footprint ratio.
    pub ratio: f64,
    /// Fault-injection plan (`FaultConfig::none()` for healthy cells).
    pub faults: FaultConfig,
}

impl CellQuery {
    /// A healthy (no fault injection) cell.
    pub fn healthy(wl: Wl, policy: PolicyChoice, swap: SwapChoice, ratio: f64) -> CellQuery {
        CellQuery {
            wl,
            policy,
            swap,
            ratio,
            faults: FaultConfig::none(),
        }
    }

    /// A cell with a fault model attached.
    pub fn faulted(
        wl: Wl,
        policy: PolicyChoice,
        swap: SwapChoice,
        ratio: f64,
        faults: FaultConfig,
    ) -> CellQuery {
        CellQuery {
            wl,
            policy,
            swap,
            ratio,
            faults,
        }
    }

    /// The fully-resolved simulation config this cell runs under.
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig::new(self.policy, self.swap)
            .capacity_ratio(self.ratio)
            .faults(self.faults.clone())
    }

    /// Human-readable cell identity (for cache files and logs).
    pub fn ident(&self) -> String {
        format!(
            "{}/{}/{:?}/r{:.2}{}",
            self.wl.label(),
            self.policy.label(),
            self.swap,
            self.ratio,
            if self.faults.is_none() { "" } else { "/faulty" },
        )
    }

    /// Stable content key of the cell's configuration: workload identity
    /// plus the stable hash of the fully-resolved [`SystemConfig`]. Two
    /// queries with equal keys run byte-identical simulations (given equal
    /// seeds and footprints), so this — not the label — keys the cache.
    fn config_key(&self) -> (Wl, u64) {
        (self.wl, self.system_config().stable_hash())
    }

    /// Public form of the cell content key, used by the sweep executor to
    /// deduplicate cells across figures and by the figure layer to match a
    /// [`CellFailure`](crate::CellFailure) back to every figure that
    /// references the lost cell.
    pub fn content_key(&self) -> (Wl, u64) {
        self.config_key()
    }
}

/// One unit of sweep work: a cell plus a trial index. `trials` specs per
/// cell; each is pure and independently runnable on any worker.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// The cell this trial belongs to.
    pub query: CellQuery,
    /// Trial index within the cell (`0..scale.trials`).
    pub trial: u32,
}

type CellKey = (Wl, u64);

/// Workload instances plus a cache of completed experiment cells.
pub struct Bench {
    scale: Scale,
    tpch: TpchWorkload,
    pagerank: PageRankWorkload,
    ycsb_a: YcsbWorkload,
    ycsb_b: YcsbWorkload,
    ycsb_c: YcsbWorkload,
    buffered: BufferedIoWorkload,
    cache: parking_lot::Mutex<BTreeMap<CellKey, Arc<TrialSet>>>,
    computed: AtomicU64,
}

impl Bench {
    /// Builds all workloads at the given scale.
    pub fn new(scale: Scale) -> Bench {
        let f = scale.footprint;
        let ycsb = |mix| {
            let mut cfg = YcsbConfig::with_mix(mix);
            cfg.items = ((cfg.items as f64 * f) as u32).max(1_000);
            cfg.requests = ((cfg.requests as f64 * f) as u64).max(10_000);
            YcsbWorkload::new(cfg, 0xD00D)
        };
        Bench {
            scale,
            tpch: TpchWorkload::new(TpchConfig::default().scaled(f)),
            pagerank: PageRankWorkload::new(PageRankConfig::default().scaled(f), 0xD00D),
            ycsb_a: ycsb(YcsbMix::A),
            ycsb_b: ycsb(YcsbMix::B),
            ycsb_c: ycsb(YcsbMix::C),
            buffered: BufferedIoWorkload::new(BufferedIoConfig::default()),
            cache: parking_lot::Mutex::new(BTreeMap::new()),
            computed: AtomicU64::new(0),
        }
    }

    /// The sweep scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The [`SystemConfig`] a query actually runs under at this scale:
    /// the query's own config with the scale's page-compression override
    /// (if any) applied. Every execution path and the trial content hash
    /// go through here, so an override can never alias a cached cell run
    /// without it.
    pub fn resolve_config(&self, query: &CellQuery) -> SystemConfig {
        let mut config = query.system_config();
        if let Some(pc) = self.scale.page_compression {
            config.page_compression = pc;
        }
        config
    }

    /// The buffered-I/O workload (tier/PID ablations).
    pub fn buffered(&self) -> &BufferedIoWorkload {
        &self.buffered
    }

    /// Footprint of a workload in pages.
    pub fn footprint(&self, wl: Wl) -> u32 {
        match wl {
            Wl::Tpch => self.tpch.footprint_pages(),
            Wl::PageRank => self.pagerank.footprint_pages(),
            Wl::YcsbA => self.ycsb_a.footprint_pages(),
            Wl::YcsbB => self.ycsb_b.footprint_pages(),
            Wl::YcsbC => self.ycsb_c.footprint_pages(),
        }
    }

    /// Runs (or fetches from cache) one experiment cell.
    pub fn cell(
        &self,
        wl: Wl,
        policy: PolicyChoice,
        swap: SwapChoice,
        ratio: f64,
    ) -> Arc<TrialSet> {
        self.query(&CellQuery::healthy(wl, policy, swap, ratio))
    }

    /// Runs (or fetches from cache) one cell with a fault model attached.
    /// Fault cells share the content-keyed cache with healthy cells: the
    /// fault plan is part of the config hash, so they can never collide.
    pub fn fault_cell(
        &self,
        wl: Wl,
        policy: PolicyChoice,
        swap: SwapChoice,
        ratio: f64,
        faults: FaultConfig,
    ) -> Arc<TrialSet> {
        self.query(&CellQuery::faulted(wl, policy, swap, ratio, faults))
    }

    /// Runs (or fetches from cache) the cell described by `query`.
    pub fn query(&self, query: &CellQuery) -> Arc<TrialSet> {
        let key = query.config_key();
        if let Some(hit) = self.cache.lock().get(&key) {
            return Arc::clone(hit);
        }
        self.computed.fetch_add(1, Ordering::Relaxed);
        let exp = Experiment::new(self.resolve_config(query));
        let seed = self.scale.seed;
        let trials = self.scale.trials;
        let set = match query.wl {
            Wl::Tpch => exp.run_trials(&self.tpch, seed, trials),
            Wl::PageRank => exp.run_trials(&self.pagerank, seed, trials),
            Wl::YcsbA => exp.run_trials(&self.ycsb_a, seed, trials),
            Wl::YcsbB => exp.run_trials(&self.ycsb_b, seed, trials),
            Wl::YcsbC => exp.run_trials(&self.ycsb_c, seed, trials),
        };
        let set = Arc::new(set);
        self.cache.lock().insert(key, Arc::clone(&set));
        set
    }

    /// Runs exactly one trial of a cell — the pure unit of sweep work.
    /// Seeds derive the same way `run_trials` derives them, so a cell
    /// assembled trial-by-trial is identical to one run in a batch.
    pub fn run_trial(&self, query: &CellQuery, trial: u32) -> RunMetrics {
        self.run_trial_budgeted(query, trial, None)
    }

    /// [`Bench::run_trial`] with an optional sim-time budget, in simulated
    /// nanoseconds: the executed config's `max_sim_time` is clamped to
    /// `budget` when one is given. The guard only matters when it trips, so
    /// a run that finishes *inside* the budget is bit-identical to an
    /// unbudgeted run and may be cached under the unbudgeted content hash;
    /// a run that trips it comes back with `RunMetrics::error ==
    /// Some(SimTimeExceeded)` and truncated metrics, which the sweep
    /// executor classifies as a timeout failure rather than merging.
    pub fn run_trial_budgeted(
        &self,
        query: &CellQuery,
        trial: u32,
        budget: Option<Nanos>,
    ) -> RunMetrics {
        let mut config = self.resolve_config(query);
        if let Some(b) = budget {
            config.max_sim_time = config.max_sim_time.min(b);
        }
        let exp = Experiment::new(config);
        let seed = trial_seed(self.scale.seed, trial);
        match query.wl {
            Wl::Tpch => exp.run(&self.tpch, seed),
            Wl::PageRank => exp.run(&self.pagerank, seed),
            Wl::YcsbA => exp.run(&self.ycsb_a, seed),
            Wl::YcsbB => exp.run(&self.ycsb_b, seed),
            Wl::YcsbC => exp.run(&self.ycsb_c, seed),
        }
    }

    /// Runs one trial with telemetry attached. The returned metrics are
    /// identical to [`Bench::run_trial`] on the same `(query, trial)`; the
    /// trace carries the trial's content-addressed identity
    /// ([`Bench::trial_content_hash`]) so it can always be matched to the
    /// cached metrics it was captured alongside.
    #[cfg(feature = "trace")]
    pub fn run_trial_traced(
        &self,
        query: &CellQuery,
        trial: u32,
        trace_cfg: pagesim_trace::TraceConfig,
    ) -> (RunMetrics, pagesim_trace::TraceData) {
        let config = self.resolve_config(query);
        let exp = Experiment::new(config.clone());
        let seed = trial_seed(self.scale.seed, trial);
        let (metrics, tracer) = match query.wl {
            Wl::Tpch => exp.run_traced(&self.tpch, seed, trace_cfg),
            Wl::PageRank => exp.run_traced(&self.pagerank, seed, trace_cfg),
            Wl::YcsbA => exp.run_traced(&self.ycsb_a, seed, trace_cfg),
            Wl::YcsbB => exp.run_traced(&self.ycsb_b, seed, trace_cfg),
            Wl::YcsbC => exp.run_traced(&self.ycsb_c, seed, trace_cfg),
        };
        let meta = pagesim_trace::TraceMeta {
            ident: format!("{} trial {}", query.ident(), trial),
            content_hash: self.trial_content_hash(query, trial),
            trial,
            seed,
            cores: config.cores as u32,
            sample_interval_ns: tracer.config().sample_interval,
            policy: query.policy.label().to_owned(),
            workload: query.wl.label().to_owned(),
        };
        (metrics, tracer.into_data(meta))
    }

    /// Installs an externally-computed cell (from a sweep or a cache) so
    /// figure drivers find it instead of recomputing.
    pub fn install_cell(&self, query: &CellQuery, set: TrialSet) {
        self.cache.lock().insert(query.config_key(), Arc::new(set));
    }

    /// Whether a cell is already resident.
    pub fn has_cell(&self, query: &CellQuery) -> bool {
        self.cache.lock().contains_key(&query.config_key())
    }

    /// How many cells this bench computed itself (cache misses inside
    /// [`Bench::query`]). After a sweep pre-populated every cell a figure
    /// needs, rendering the figure must leave this at zero.
    pub fn cells_computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// The content key of one trial of `query`, independent of process,
    /// host, and enumeration order: it folds in the cache format version,
    /// the crate version, the workload identity and resolved footprint,
    /// the stable hash of the fully-resolved [`SystemConfig`], the trial
    /// count context (trial index) and the derived trial seed. Equal keys
    /// mean byte-identical [`RunMetrics`].
    pub fn trial_content_hash(&self, query: &CellQuery, trial: u32) -> u64 {
        self.trial_content_hash_versioned(query, trial, env!("CARGO_PKG_VERSION"))
    }

    /// [`Bench::trial_content_hash`] with an explicit crate-version string,
    /// so tests can prove a version bump invalidates every cached trial.
    pub fn trial_content_hash_versioned(
        &self,
        query: &CellQuery,
        trial: u32,
        version: &str,
    ) -> u64 {
        let mut h = StableHasher::new();
        h.write_u32(crate::metrics::CACHE_FORMAT_VERSION);
        h.write_str(version);
        h.write_str(query.wl.label());
        h.write_f64(self.scale.footprint);
        h.write_u32(self.footprint(query.wl));
        h.write_u64(self.resolve_config(query).stable_hash());
        h.write_u32(trial);
        h.write_u64(trial_seed(self.scale.seed, trial));
        h.finish()
    }

    /// The paper's primary performance metric for a cell: mean runtime for
    /// batch workloads, mean request latency for YCSB (Fig. 1 note).
    pub fn mean_perf(&self, wl: Wl, set: &TrialSet) -> f64 {
        if wl.is_ycsb() {
            pagesim_stats::Summary::of(&set.mean_request_latencies()).mean
        } else {
            set.runtime_summary().mean
        }
    }
}

/// Figure ids known to [`figure_cells`], in `repro -- all` order, plus the
/// fault study.
pub fn figure_ids() -> [&'static str; 13] {
    [
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "faults",
    ]
}

/// Enumerates every experiment cell the named figure consumes, mirroring
/// its driver's grid. Drivers still call [`Bench::cell`] themselves, so a
/// missed cell here only costs a lazy recompute — never a wrong figure;
/// `sweep_covers_every_figure` in the bench crate pins the equivalence.
pub fn figure_cells(fig: &str) -> Vec<CellQuery> {
    use PolicyChoice as P;
    use SwapChoice as S;
    let mut cells = Vec::new();
    match fig {
        // Fig. 1 plots Clock vs default MG-LRU for all workloads (SSD, 50%).
        "fig1" => {
            for wl in Wl::all() {
                for policy in [P::Clock, P::MgLruDefault] {
                    cells.push(CellQuery::healthy(wl, policy, S::Ssd, 0.5));
                }
            }
        }
        // Fig. 2 reuses the TPC-H/PageRank subset of Fig. 1's cells.
        "fig2" => {
            for wl in [Wl::Tpch, Wl::PageRank] {
                for policy in [P::Clock, P::MgLruDefault] {
                    cells.push(CellQuery::healthy(wl, policy, S::Ssd, 0.5));
                }
            }
        }
        // Fig. 3 tails: YCSB only (SSD, 50%).
        "fig3" => {
            for wl in [Wl::YcsbA, Wl::YcsbB, Wl::YcsbC] {
                for policy in [P::Clock, P::MgLruDefault] {
                    cells.push(CellQuery::healthy(wl, policy, S::Ssd, 0.5));
                }
            }
        }
        // Fig. 4: MG-LRU variants across all workloads (SSD, 50%).
        "fig4" => {
            for wl in Wl::all() {
                for policy in P::mglru_variants() {
                    cells.push(CellQuery::healthy(wl, policy, S::Ssd, 0.5));
                }
            }
        }
        // Fig. 5: variant joint distributions on TPC-H/PageRank.
        "fig5" => {
            for wl in [Wl::Tpch, Wl::PageRank] {
                for policy in P::mglru_variants() {
                    cells.push(CellQuery::healthy(wl, policy, S::Ssd, 0.5));
                }
            }
        }
        // Fig. 6: full paper set at tighter ratios, all workloads.
        "fig6" => {
            for ratio in [0.75, 0.9] {
                for wl in Wl::all() {
                    for policy in P::paper_set() {
                        cells.push(CellQuery::healthy(wl, policy, S::Ssd, ratio));
                    }
                }
            }
        }
        // Fig. 7: same ratios, TPC-H/PageRank only.
        "fig7" => {
            for ratio in [0.75, 0.9] {
                for wl in [Wl::Tpch, Wl::PageRank] {
                    for policy in P::paper_set() {
                        cells.push(CellQuery::healthy(wl, policy, S::Ssd, ratio));
                    }
                }
            }
        }
        // Fig. 8 tails: YCSB at 75%/90%.
        "fig8" => {
            for ratio in [0.75, 0.9] {
                for wl in [Wl::YcsbA, Wl::YcsbB, Wl::YcsbC] {
                    for policy in [P::Clock, P::MgLruDefault] {
                        cells.push(CellQuery::healthy(wl, policy, S::Ssd, ratio));
                    }
                }
            }
        }
        // Figs. 9/10 share one grid: paper set under ZRAM at 50%.
        "fig9" | "fig10" => {
            for wl in Wl::all() {
                for policy in P::paper_set() {
                    cells.push(CellQuery::healthy(wl, policy, S::Zram, 0.5));
                }
            }
        }
        // Fig. 11: SSD vs ZRAM head-to-head.
        "fig11" => {
            for wl in Wl::all() {
                for policy in [P::Clock, P::MgLruDefault] {
                    cells.push(CellQuery::healthy(wl, policy, S::Ssd, 0.5));
                    cells.push(CellQuery::healthy(wl, policy, S::Zram, 0.5));
                }
            }
        }
        // Fig. 12 tails: YCSB under ZRAM at 50%.
        "fig12" => {
            for wl in [Wl::YcsbA, Wl::YcsbB, Wl::YcsbC] {
                for policy in [P::Clock, P::MgLruDefault] {
                    cells.push(CellQuery::healthy(wl, policy, S::Zram, 0.5));
                }
            }
        }
        // Fault study: healthy and stalling-SSD cells side by side.
        "faults" => {
            for wl in [Wl::Tpch, Wl::YcsbA] {
                for policy in [P::Clock, P::MgLruDefault] {
                    cells.push(CellQuery::healthy(wl, policy, S::Ssd, 0.5));
                    cells.push(CellQuery::faulted(
                        wl,
                        policy,
                        S::Ssd,
                        0.5,
                        FaultConfig::stalling_ssd(),
                    ));
                }
            }
        }
        _ => {}
    }
    cells
}
